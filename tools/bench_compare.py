#!/usr/bin/env python3
"""Compare two benchmark result sets and report threshold regressions.

Inputs are either two ``BENCH_*.json`` files (as written by
``benchmarks/conftest.py``) or two directories/repository roots, in
which case every ``BENCH_*.json`` present in *both* is compared.  Rows
are matched by ``(module, benchmark name)``; for each match the chosen
timing statistic is compared as a ratio ``new / old``:

* ratio > ``--threshold``   → **regression** (exit code 1),
* ratio < 1 / ``--threshold`` → improvement,
* otherwise                 → unchanged (within the noise band).

Rows present on only one side are listed as added/removed but never fail
the run — engine-parametrized rows come and go as engines are added.

Usage::

    python tools/bench_compare.py BENCH_string_qa.json /tmp/new/BENCH_string_qa.json
    python tools/bench_compare.py old-checkout/ . --threshold 1.5
    python tools/bench_compare.py old/ new/ --json   # machine-readable

Dependency-free by design: CI's no-numpy job can run it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default acceptable slowdown: new may take up to 25% longer than old.
DEFAULT_THRESHOLD = 1.25

METRICS = ("median", "mean", "min", "max")


def load_rows(path: Path) -> dict[tuple[str, str], dict]:
    """``(module, row name) -> row`` for one BENCH_*.json file."""
    payload = json.loads(path.read_text())
    module = payload.get("module", path.stem)
    rows = {}
    for row in payload.get("benchmarks", []):
        name = row.get("name")
        if name:
            rows[(module, name)] = row
    return rows


def collect(source: Path) -> dict[tuple[str, str], dict]:
    """All benchmark rows under a file or directory."""
    if source.is_dir():
        rows: dict[tuple[str, str], dict] = {}
        for path in sorted(source.glob("BENCH_*.json")):
            rows.update(load_rows(path))
        return rows
    return load_rows(source)


def compare(
    old: dict[tuple[str, str], dict],
    new: dict[tuple[str, str], dict],
    metric: str = "median",
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """The comparison report: regressions, improvements, unchanged, churn."""
    regressions = []
    improvements = []
    unchanged = []
    incomparable = []
    for key in sorted(old.keys() & new.keys()):
        before = (old[key].get("stats") or {}).get(metric)
        after = (new[key].get("stats") or {}).get(metric)
        if not before or not after:
            incomparable.append({"module": key[0], "name": key[1]})
            continue
        ratio = after / before
        entry = {
            "module": key[0],
            "name": key[1],
            "old": before,
            "new": after,
            "ratio": ratio,
        }
        if ratio > threshold:
            regressions.append(entry)
        elif ratio < 1.0 / threshold:
            improvements.append(entry)
        else:
            unchanged.append(entry)
    return {
        "metric": metric,
        "threshold": threshold,
        "regressions": sorted(
            regressions, key=lambda e: e["ratio"], reverse=True
        ),
        "improvements": sorted(improvements, key=lambda e: e["ratio"]),
        "unchanged": unchanged,
        "removed": [
            {"module": m, "name": n} for m, n in sorted(old.keys() - new.keys())
        ],
        "added": [
            {"module": m, "name": n} for m, n in sorted(new.keys() - old.keys())
        ],
    }


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}µs"


def render(report: dict) -> str:
    """Human-readable regression report."""
    lines = [
        f"benchmark comparison ({report['metric']}, "
        f"threshold {report['threshold']:.2f}x)"
    ]
    for title, entries, arrow in (
        ("regressions", report["regressions"], "slower"),
        ("improvements", report["improvements"], "faster"),
    ):
        lines.append(f"{title}: {len(entries)}")
        for entry in entries:
            factor = (
                entry["ratio"]
                if arrow == "slower"
                else 1.0 / entry["ratio"]
            )
            lines.append(
                f"  {entry['module']} :: {entry['name']}  "
                f"{_format_seconds(entry['old'])} -> "
                f"{_format_seconds(entry['new'])}  ({factor:.2f}x {arrow})"
            )
    lines.append(f"unchanged: {len(report['unchanged'])}")
    if report["removed"]:
        lines.append(f"removed rows: {len(report['removed'])}")
        for entry in report["removed"]:
            lines.append(f"  {entry['module']} :: {entry['name']}")
    if report["added"]:
        lines.append(f"added rows: {len(report['added'])}")
        for entry in report["added"]:
            lines.append(f"  {entry['module']} :: {entry['name']}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files or directories of them"
    )
    parser.add_argument("old", type=Path, help="baseline file or directory")
    parser.add_argument("new", type=Path, help="candidate file or directory")
    parser.add_argument(
        "--metric",
        choices=METRICS,
        default="median",
        help="timing statistic to compare (default: median)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"new/old ratio treated as a regression "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.threshold <= 1.0:
        print("--threshold must be > 1.0", file=sys.stderr)
        return 2
    for source in (args.old, args.new):
        if not source.exists():
            print(f"no such file or directory: {source}", file=sys.stderr)
            return 2
    old, new = collect(args.old), collect(args.new)
    if not old or not new:
        print("no BENCH_*.json rows found to compare", file=sys.stderr)
        return 2
    report = compare(old, new, metric=args.metric, threshold=args.threshold)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render(report))
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
