#!/usr/bin/env python3
"""Documentation lints, run by the CI ``docs`` job.

Four checks, all dependency-free:

1. **Docstring coverage** over ``src/repro``: every module, public
   class, and public function/method should carry a docstring.  The
   floor is a ratchet — raise ``COVERAGE_FLOOR`` as coverage improves,
   never lower it.
2. **CLI sync**: every ``repro ...`` invocation inside the fenced code
   blocks of README.md and docs/SERVE.md must parse against the real
   :func:`repro.cli.build_parser`, so the documented flags can never
   drift from the implementation.
3. **Query-string sync** over every Markdown file in the repo: each
   line of an ```` ```xpath ```` / ```` ```mso ```` fence, every quoted
   ``"xpath:…"`` / ``"mso:…"`` literal, and every ``--xpath "…"`` /
   ``--mso "…"`` flag inside any fence must parse through the real
   :mod:`repro.lang` parsers — documented queries can never go stale.
4. **Serve-protocol sync**: docs/SERVE.md must document every ``op``
   and error ``kind`` the server defines
   (:data:`repro.serve.protocol.OPS` / ``ERROR_KINDS``), and every
   frame line in its ```` ```json ```` fences must be well-formed —
   a JSON object whose ``op`` / ``error.kind`` the server knows.

Exit code 0 when all pass; 1 with a report otherwise.
"""

from __future__ import annotations

import ast
import json
import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

COVERAGE_FLOOR = 0.97

#: A fenced code block; group 1 is the info string, group 2 the body.
_LANG_FENCE = re.compile(r"```([a-zA-Z-]*)\n(.*?)```", re.DOTALL)

#: A fenced code block; group 1 is the body.
_FENCE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)

#: Prefixed query-string literals and CLI query flags inside fences.
_PREFIXED = re.compile(r"""["'](xpath|mso):(.*?)["']""")
_FLAGGED = re.compile(r"""--(xpath|mso)\s+"([^"]*)"|--(xpath|mso)\s+'([^']*)'""")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _documented(node: ast.AST) -> bool:
    return ast.get_docstring(node) is not None


def docstring_coverage(root: Path) -> tuple[int, int, list[str]]:
    """(documented, total, missing) over modules/classes/functions."""
    documented = total = 0
    missing: list[str] = []

    def tally(node: ast.AST, where: str) -> None:
        nonlocal documented, total
        total += 1
        if _documented(node):
            documented += 1
        else:
            missing.append(where)

    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(REPO)
        tree = ast.parse(path.read_text())
        if path.name != "__init__.py" or tree.body:
            tally(tree, str(rel))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_public(node.name):
                tally(node, f"{rel}::{node.name}")
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(item.name):
                        tally(item, f"{rel}::{node.name}.{item.name}")
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_public(node.name):
                parents = [
                    p
                    for p in ast.walk(tree)
                    if isinstance(p, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
                    and node in ast.walk(p)
                    and p is not node
                ]
                if parents:
                    continue  # methods handled under their class; skip nested
                tally(node, f"{rel}::{node.name}")
    return documented, total, missing


def readme_cli_lines(readme: Path) -> list[str]:
    """Every ``repro ...`` command line inside the README's code fences."""
    lines: list[str] = []
    for block in _FENCE.findall(readme.read_text()):
        for line in block.splitlines():
            stripped = line.strip()
            if stripped.startswith("repro "):
                lines.append(stripped)
    return lines


def check_cli_sync(readme: Path) -> list[str]:
    """README ``repro`` invocations that the real parser rejects."""
    from repro.cli import build_parser

    problems: list[str] = []
    lines = readme_cli_lines(readme)
    if not lines:
        return [f"no `repro ...` lines found in {readme.name} code blocks"]
    for line in lines:
        argv = shlex.split(line)[1:]
        parser = build_parser()
        try:
            parser.parse_args(argv)
        except SystemExit:
            problems.append(line)
    return problems


def doc_query_strings(path: Path) -> list[tuple[str, str, str]]:
    """``(syntax, query, where)`` for every query string in one doc.

    Collected from three places: dedicated ```` ```xpath ```` /
    ```` ```mso ```` fences (one query per line, ``#`` lines skipped),
    quoted ``"xpath:…"`` / ``"mso:…"`` literals in any fence, and
    ``--xpath`` / ``--mso`` flag arguments in any fence.
    """
    found: list[tuple[str, str, str]] = []
    where = str(path.relative_to(REPO))
    for language, body in _LANG_FENCE.findall(path.read_text()):
        if language in ("xpath", "mso"):
            for line in body.splitlines():
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    found.append((language, stripped, where))
            continue
        if language in ("text", "ebnf"):
            continue  # transcripts may show deliberately malformed queries
        for syntax, query in _PREFIXED.findall(body):
            found.append((syntax, query, where))
        for match in _FLAGGED.finditer(body):
            syntax = match.group(1) or match.group(3)
            query = match.group(2) or match.group(4)
            found.append((syntax, query, where))
    return found


def check_serve_doc(path: Path) -> tuple[int, list[str]]:
    """(checked, problems): SERVE.md vs the real protocol module.

    Every op and error kind the server defines must be named (in
    backticks) somewhere in the document, and every frame line inside
    a ```` ```json ```` fence must be a JSON object the protocol could
    accept — known ``op`` on requests, known ``error.kind`` on error
    responses.
    """
    from repro.serve.protocol import ERROR_KINDS, OPS

    checked = 0
    problems: list[str] = []
    if not path.exists():
        return 0, [f"{path.name} is missing"]
    text = path.read_text()
    for name in (*OPS, *ERROR_KINDS):
        checked += 1
        if f"`{name}`" not in text:
            problems.append(f"{path.name}: op/kind `{name}` undocumented")
    for language, body in _LANG_FENCE.findall(text):
        if language != "json":
            continue
        for line in body.splitlines():
            stripped = line.strip()
            if not stripped.startswith("{"):
                continue
            checked += 1
            where = f"{path.name}: {stripped[:60]}…"
            try:
                frame = json.loads(stripped)
            except ValueError as error:
                problems.append(f"{where} — not JSON: {error}")
                continue
            if not isinstance(frame, dict):
                problems.append(f"{where} — frame is not an object")
            elif "error" in frame:
                kind = frame["error"].get("kind")
                if kind not in ERROR_KINDS:
                    problems.append(f"{where} — unknown error kind {kind!r}")
            elif "ok" not in frame and frame.get("op") not in OPS:
                problems.append(f"{where} — unknown op {frame.get('op')!r}")
    return checked, problems


def check_query_strings(root: Path) -> tuple[int, list[str]]:
    """(checked, problems) over every Markdown file in the repo."""
    from repro.lang import QuerySyntaxError, parse_mso, parse_xpath

    parsers = {"xpath": parse_xpath, "mso": parse_mso}
    checked = 0
    problems: list[str] = []
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.parts):
            continue
        for syntax, query, where in doc_query_strings(path):
            checked += 1
            try:
                parsers[syntax](query)
            except QuerySyntaxError as error:
                problems.append(f"{where}: {syntax}:{query!r} — {error}")
    return checked, problems


def main() -> int:
    """Run both checks and print a report."""
    failures = 0

    documented, total, missing = docstring_coverage(REPO / "src" / "repro")
    coverage = documented / total if total else 1.0
    print(f"docstring coverage: {documented}/{total} = {coverage:.1%} "
          f"(floor {COVERAGE_FLOOR:.0%})")
    if coverage < COVERAGE_FLOOR:
        failures += 1
        print("missing docstrings:")
        for where in missing:
            print(f"  {where}")

    for doc in (REPO / "README.md", REPO / "docs" / "SERVE.md"):
        problems = check_cli_sync(doc)
        checked = len(readme_cli_lines(doc))
        print(f"{doc.name} CLI sync: {checked - len(problems)}/{checked} "
              "invocations parse")
        if problems:
            failures += 1
            for line in problems:
                print(f"  rejected by the parser: {line}")

    checked, query_problems = check_query_strings(REPO)
    print(f"doc query-string sync: {checked - len(query_problems)}/{checked} "
          "queries parse")
    if not checked:
        failures += 1
        print("  no query strings found in any Markdown file")
    if query_problems:
        failures += 1
        for line in query_problems:
            print(f"  {line}")

    checked, serve_problems = check_serve_doc(REPO / "docs" / "SERVE.md")
    print(f"serve protocol sync: {checked - len(serve_problems)}/{checked} "
          "names and frames check out")
    if serve_problems:
        failures += 1
        for line in serve_problems:
            print(f"  {line}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
