#!/usr/bin/env python3
"""Documentation lints, run by the CI ``docs`` job.

Two checks, both dependency-free:

1. **Docstring coverage** over ``src/repro``: every module, public
   class, and public function/method should carry a docstring.  The
   floor is a ratchet — raise ``COVERAGE_FLOOR`` as coverage improves,
   never lower it.
2. **README/CLI sync**: every ``repro ...`` invocation inside the
   README's fenced code blocks must parse against the real
   :func:`repro.cli.build_parser`, so the documented flags can never
   drift from the implementation.

Exit code 0 when both pass; 1 with a report otherwise.
"""

from __future__ import annotations

import ast
import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

COVERAGE_FLOOR = 0.97

#: A fenced code block; group 1 is the body.
_FENCE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _documented(node: ast.AST) -> bool:
    return ast.get_docstring(node) is not None


def docstring_coverage(root: Path) -> tuple[int, int, list[str]]:
    """(documented, total, missing) over modules/classes/functions."""
    documented = total = 0
    missing: list[str] = []

    def tally(node: ast.AST, where: str) -> None:
        nonlocal documented, total
        total += 1
        if _documented(node):
            documented += 1
        else:
            missing.append(where)

    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(REPO)
        tree = ast.parse(path.read_text())
        if path.name != "__init__.py" or tree.body:
            tally(tree, str(rel))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_public(node.name):
                tally(node, f"{rel}::{node.name}")
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(item.name):
                        tally(item, f"{rel}::{node.name}.{item.name}")
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_public(node.name):
                parents = [
                    p
                    for p in ast.walk(tree)
                    if isinstance(p, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
                    and node in ast.walk(p)
                    and p is not node
                ]
                if parents:
                    continue  # methods handled under their class; skip nested
                tally(node, f"{rel}::{node.name}")
    return documented, total, missing


def readme_cli_lines(readme: Path) -> list[str]:
    """Every ``repro ...`` command line inside the README's code fences."""
    lines: list[str] = []
    for block in _FENCE.findall(readme.read_text()):
        for line in block.splitlines():
            stripped = line.strip()
            if stripped.startswith("repro "):
                lines.append(stripped)
    return lines


def check_cli_sync(readme: Path) -> list[str]:
    """README ``repro`` invocations that the real parser rejects."""
    from repro.cli import build_parser

    problems: list[str] = []
    lines = readme_cli_lines(readme)
    if not lines:
        return [f"no `repro ...` lines found in {readme.name} code blocks"]
    for line in lines:
        argv = shlex.split(line)[1:]
        parser = build_parser()
        try:
            parser.parse_args(argv)
        except SystemExit:
            problems.append(line)
    return problems


def main() -> int:
    """Run both checks and print a report."""
    failures = 0

    documented, total, missing = docstring_coverage(REPO / "src" / "repro")
    coverage = documented / total if total else 1.0
    print(f"docstring coverage: {documented}/{total} = {coverage:.1%} "
          f"(floor {COVERAGE_FLOOR:.0%})")
    if coverage < COVERAGE_FLOOR:
        failures += 1
        print("missing docstrings:")
        for where in missing:
            print(f"  {where}")

    problems = check_cli_sync(REPO / "README.md")
    checked = len(readme_cli_lines(REPO / "README.md"))
    print(f"README CLI sync: {checked - len(problems)}/{checked} "
          "invocations parse")
    if problems:
        failures += 1
        for line in problems:
            print(f"  rejected by the parser: {line}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
