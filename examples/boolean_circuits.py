"""The paper's worked automata: Boolean circuits (Examples 4.2, 4.4, 5.9).

Circuits are trees of AND/OR gates over 0/1 leaves.  The ranked automata
of Section 4 handle two-input gates; the unranked QA^u of Example 5.9
handles unbounded fan-in.  This example runs all three on generated
circuits and shows the two evaluation engines (cut simulation vs the
behavior functions of Lemmas 4.7/5.16) agreeing.

Run:  python examples/boolean_circuits.py
"""

from repro.ranked.behavior import evaluate_query_via_behavior as ranked_behavior
from repro.ranked.examples import (
    circuit_acceptor,
    circuit_reference_query,
    circuit_value_query,
)
from repro.trees.generators import (
    evaluate_circuit,
    random_binary_circuit,
    random_unranked_circuit,
)
from repro.unranked.behavior import (
    evaluate_query_via_behavior as unranked_behavior,
)
from repro.unranked.examples import circuit_query_automaton


def main() -> None:
    # ------------------------------------------------------------------
    # Example 4.2 — a 2DTA^r accepting the circuits that evaluate to 1.
    # ------------------------------------------------------------------
    acceptor = circuit_acceptor()
    circuit = random_binary_circuit(3, seed_or_rng=42)
    print("circuit:      ", circuit)
    print("value:        ", evaluate_circuit(circuit))
    print("2DTA^r accepts:", acceptor.accepts(circuit))

    # Watch the run: configurations are cuts (antichains) with states.
    print("\nfirst five configurations of the run:")
    for configuration in acceptor.run(circuit)[:5]:
        print("  ", configuration)

    # ------------------------------------------------------------------
    # Example 4.4 — the QA^r selecting all 1-evaluating subcircuits.
    # ------------------------------------------------------------------
    qa = circuit_value_query()
    selected = qa.evaluate(circuit)
    print("\nQA^r selects:", sorted(selected))
    assert selected == circuit_reference_query(circuit)
    assert selected == ranked_behavior(qa, circuit)  # Lemma 4.7 in action

    # ------------------------------------------------------------------
    # Example 5.9 — the unranked QA^u for unbounded fan-in.
    # ------------------------------------------------------------------
    wide = random_unranked_circuit(3, max_arity=5, seed_or_rng=7)
    unranked_qa = circuit_query_automaton()
    wide_selected = unranked_qa.evaluate(wide)
    print("\nwide circuit: ", wide)
    print("QA^u selects: ", sorted(wide_selected))
    assert wide_selected == unranked_behavior(unranked_qa, wide)  # Lemma 5.16

    # ------------------------------------------------------------------
    # Section 6 — decision procedures on these automata.
    # ------------------------------------------------------------------
    from repro.decision.closure import query_witness

    tree, path = query_witness(unranked_qa)
    print("\nsmallest selecting scenario found by the Theorem 6.3 engine:")
    print("   tree", tree, "→ selects node", path)


if __name__ == "__main__":
    main()
