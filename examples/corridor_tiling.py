"""Proposition 6.1: the EXPTIME-hardness reduction, end to end.

TWO PERSON CORRIDOR TILING: two players alternately place tiles row by
row between a fixed bottom and top row; player 1 tries to complete the
corridor.  The reduction encodes player 1's *strategies* as trees and
builds a two-way ranked tree automaton accepting exactly the winning
ones — so automaton non-emptiness decides the game.

Run:  python examples/corridor_tiling.py
"""

from repro.decision.closure import language_witness
from repro.decision.convert import ranked_to_unranked
from repro.decision.tiling import (
    TilingInstance,
    is_strategy_tree,
    strategy_tree,
    tiling_acceptor,
)

FULL = frozenset((a, b) for a in ("a", "b") for b in ("a", "b"))


def show(instance: TilingInstance, name: str) -> None:
    print(f"\n=== {name} ===")
    print("tiles:", instance.tiles, " bottom:", instance.bottom, " top:", instance.top)
    print("V:", sorted(instance.vertical), " H:", sorted(instance.horizontal)[:4], "...")

    wins = instance.player_one_wins()
    print("player 1 wins? ", wins)

    tree = strategy_tree(instance)
    if tree is not None:
        print("strategy tree (", tree.size, "nodes):", tree)
        assert is_strategy_tree(instance, tree)

    acceptor = tiling_acceptor(instance)
    print("2DTA^r acceptor states:", len(acceptor.states))
    witness = language_witness(ranked_to_unranked(acceptor))
    print("acceptor non-empty?    ", witness is not None)
    assert (witness is not None) == wins
    if witness is not None:
        assert acceptor.accepts(witness)
        print("emptiness-engine witness:", witness)


def main() -> None:
    show(
        TilingInstance(
            tiles=("a", "b"),
            horizontal=FULL,
            vertical=frozenset([("a", "b"), ("b", "a")]),
            bottom=("a",),
            top=("a",),
        ),
        "width 1: forced alternation a→b→a",
    )
    show(
        TilingInstance(
            tiles=("a", "b"),
            horizontal=FULL,
            vertical=frozenset([("a", "a"), ("b", "b"), ("a", "b")]),
            bottom=("a", "a"),
            top=("b", "b"),
        ),
        "width 2: player 2 interferes on column 2",
    )
    show(
        TilingInstance(
            tiles=("a", "b"),
            horizontal=frozenset([("a", "a")]),
            vertical=frozenset(),
            bottom=("a",),
            top=("b",),
        ),
        "unwinnable: no vertical edges at all",
    )


if __name__ == "__main__":
    main()
