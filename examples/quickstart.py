"""Quickstart: trees, MSO queries, query automata, decision procedures.

Run:  python examples/quickstart.py
"""

from repro import Tree, MSOQuery, compile_pattern
from repro.logic.syntax import And, Edge, Exists, Label, Not, Less, Var


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Trees.  Σ-trees with Dewey-path node addresses; the root is ().
    # ------------------------------------------------------------------
    # Inner nodes have ≥ 2 children: the Figure 6 SQA^u construction in
    # step 3 covers exactly this class (the paper reduces unary chains to
    # the string case separately); the MSO engines handle any tree.
    tree = Tree.parse("a(b, a(a, b), b(a, a))")
    print("tree:        ", tree)
    print("size/height: ", tree.size, "/", tree.height)
    print("labels:      ", sorted(tree.labels()))

    # ------------------------------------------------------------------
    # 2. A unary MSO query: a-labeled nodes with no earlier a-sibling
    #    (the Proposition 5.10 query).  φ(x) selects a set of nodes.
    # ------------------------------------------------------------------
    x, y = Var("x"), Var("y")
    phi = And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))
    query = MSOQuery(phi, x, ("a", "b"))
    print("\nMSO query selects:", sorted(query.evaluate(tree)))

    # The same through the naive model-checking oracle — must agree.
    oracle = MSOQuery(phi, x, ("a", "b"), engine="naive")
    assert query.evaluate(tree) == oracle.evaluate(tree)

    # ------------------------------------------------------------------
    # 3. The same query as a *strong query automaton* (Theorem 5.17):
    #    a genuine two-way machine with one stay transition per node.
    # ------------------------------------------------------------------
    from repro.unranked.mso_to_sqa import build_query_sqa

    sqa = build_query_sqa(phi, x, ["a", "b"])
    print("SQA^u states:     ", len(sqa.automaton.states))
    print("SQA^u selects:    ", sorted(sqa.evaluate(tree)))
    assert sqa.evaluate(tree) == query.evaluate(tree)

    # ------------------------------------------------------------------
    # 4. Patterns: the XPath-ish front end compiles to MSO → automata.
    # ------------------------------------------------------------------
    leaves_of_a = compile_pattern("//a[leaf]", ["a", "b"])
    print("\n//a[leaf] selects:", sorted(leaves_of_a.evaluate(tree)))

    # ------------------------------------------------------------------
    # 5. Decision procedures (Section 6): is the query satisfiable?
    #    (Run on the paper's compact Example 5.14 SQA^u — the procedure
    #    is EXPTIME in the automaton size, so feed it small machines.)
    # ------------------------------------------------------------------
    from repro.decision.closure import query_witness
    from repro.unranked.examples import first_one_sqa

    witness = query_witness(first_one_sqa())
    print("\nnon-emptiness witness:", witness[0], "selects node", witness[1])


if __name__ == "__main__":
    main()
