"""The paper's motivating scenario: querying structured documents.

Reproduces the Figures 1–4 pipeline end-to-end — parse the bibliography
XML of Figure 1, validate it against the Figure 2 DTD with a tree
automaton, and locate subtrees with pattern and MSO queries.

Run:  python examples/bibliography_queries.py
"""

from repro.core.pipeline import Document
from repro.logic.syntax import And, Descendant, Edge, Exists, Label, Var
from repro.core.query import MSOQuery
from repro.trees.dtd import BIBLIOGRAPHY_DTD, parse_dtd
from repro.trees.xml import BIBLIOGRAPHY_EXAMPLE, make_bibliography


def main() -> None:
    dtd = parse_dtd(BIBLIOGRAPHY_DTD)

    # ------------------------------------------------------------------
    # 1. Figure 1 → Figure 3: parse and abstract; validate (Figure 2).
    # ------------------------------------------------------------------
    document = Document.from_text(BIBLIOGRAPHY_EXAMPLE, dtd)
    print("document tree size:", document.tree.size)
    print("validated against the Figure 2 DTD ✓")

    # ------------------------------------------------------------------
    # 2. Pattern queries (compiled to MSO, then to tree automata).
    # ------------------------------------------------------------------
    print("\nall authors:       ", document.select("//author"))
    print("book titles:       ", document.select("/book/title"))
    print("years anywhere:    ", document.select("//year"))

    for title in document.matches("/article/title"):
        print("article title node:", title)

    # ------------------------------------------------------------------
    # 3. A hand-written MSO query: publishers of books that have at
    #    least three authors... simplified: author nodes inside books.
    # ------------------------------------------------------------------
    x, y = Var("x"), Var("y")
    phi = And(
        Label(x, "author"),
        Exists(y, And(Label(y, "book"), Edge(y, x))),
    )
    book_authors = MSOQuery(phi, x, document.alphabet)
    paths = sorted(book_authors.evaluate(document.tree))
    print("\nbook authors:      ", paths)
    for path in paths:
        element = document.element_at(path)
        print("   ", element.texts()[0])

    # ------------------------------------------------------------------
    # 4. Scale up: the same pipeline on a generated 200-entry library.
    # ------------------------------------------------------------------
    big = Document.from_text(make_bibliography(100, 100), dtd)
    titles = big.select("//title")
    print(f"\ngenerated library: {big.tree.size} nodes, {len(titles)} titles")

    # ------------------------------------------------------------------
    # 5. A malformed document is rejected with diagnostics.
    # ------------------------------------------------------------------
    from repro.core.pipeline import ValidationError

    broken = "<bibliography><book><title>No authors!</title></book></bibliography>"
    try:
        Document.from_text(broken, dtd)
    except ValidationError as error:
        print("\nrejected malformed document:", error)


if __name__ == "__main__":
    main()
