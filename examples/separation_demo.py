"""Proposition 5.10 / Example 5.14: why stay transitions are necessary.

The query *select every 1-labeled leaf with no 1-labeled left sibling*
is first-order definable, yet **no** plain QA^u computes it — when a
two-way unranked automaton assigns states downward, a child cannot know
its siblings' states.  One *stay transition* (a two-way string automaton
over the children) repairs this: Example 5.14's SQA^u computes the query.

This demo runs the paper's pigeonhole refutation against two natural
QA^u attempts, shows the collision of root-state sequences it exploits,
and then lets the SQA^u answer the whole family.

Run:  python examples/separation_demo.py
"""

from repro.unranked.examples import first_one_sqa
from repro.unranked.separation import (
    first_one_reference,
    flat_family_tree,
    impossibility_witness,
    pigeonhole_pair,
    root_state_sequence,
)

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.unranked.test_separation import (  # noqa: E402
    naive_attempt_select_all_ones,
    positional_attempt,
)


def main() -> None:
    width = 8

    print("The witness family t_i (root with", width, "leaves):")
    for zeros in (0, 2, 5):
        print(f"  t_{zeros} =", flat_family_tree(zeros, width))

    # ------------------------------------------------------------------
    # 1. Every stay-free attempt fails somewhere on the family.
    # ------------------------------------------------------------------
    for name, attempt in [
        ("select-all-ones", naive_attempt_select_all_ones),
        ("positional-window", positional_attempt),
    ]:
        qa = attempt()
        tree, produced, expected = impossibility_witness(qa, width)
        print(f"\nQA^u attempt {name!r} fails on {tree}:")
        print("   produced:", sorted(produced))
        print("   expected:", sorted(expected))

        pair = pigeonhole_pair(qa, width)
        if pair:
            j, j2 = pair
            print(
                f"   pigeonhole: t_{j} and t_{j2} share the root sequence",
                root_state_sequence(qa.automaton, flat_family_tree(j, width)),
            )

    # ------------------------------------------------------------------
    # 2. The Example 5.14 SQA^u answers every family member.
    # ------------------------------------------------------------------
    sqa = first_one_sqa()
    print("\nExample 5.14 SQA^u (one stay transition per node):")
    for zeros in range(width + 1):
        tree = flat_family_tree(zeros, width)
        assert sqa.evaluate(tree) == first_one_reference(tree)
    print(f"   correct on all {width + 1} family members ✓")

    tree = flat_family_tree(3, width)
    print(f"   e.g. on {tree}: selects {sorted(sqa.evaluate(tree))}")


if __name__ == "__main__":
    main()
