"""Experiment L5.2: NBTA^u non-emptiness is PTIME.

Workload: random NBTA^u with a growing number of vertical states (the
horizontal languages are random letterwise NFAs).  Measured: the
reachability fixpoint — polynomial growth, in contrast to the EXPTIME
procedures of bench_nonemptiness.py — once per engine: the default
frontier sets vs the ``numpy`` successor-mask kernel (skipped when
numpy is absent).
"""

import random

import pytest

from repro.perf import npkernel
from repro.strings.nfa import NFA
from repro.unranked.nbta import UnrankedTreeAutomaton

SIZES = [4, 8, 16]

ENGINES = [
    pytest.param(None, id="bitset"),
    pytest.param(
        "numpy",
        id="numpy",
        marks=pytest.mark.skipif(
            not npkernel.available(), reason="numpy not installed"
        ),
    ),
]


def random_nbta(states_count: int, seed: int) -> UnrankedTreeAutomaton:
    rng = random.Random(seed)
    states = [f"q{i}" for i in range(states_count)]
    labels = ["a", "b"]
    horizontal = {}
    for state in states:
        for label in labels:
            if rng.random() < 0.4:
                continue
            # Random letterwise NFA over the vertical states.
            allowed = frozenset(q for q in states if rng.random() < 0.5)
            accept_empty = rng.random() < 0.4
            transitions = {}
            for q in allowed:
                transitions[(0, q)] = frozenset({1})
                transitions[(1, q)] = frozenset({1})
            accepting = {1} | ({0} if accept_empty else set())
            horizontal[(state, label)] = NFA.build(
                {0, 1}, states, transitions, {0}, accepting
            )
    accepting = frozenset(q for q in states if rng.random() < 0.3)
    return UnrankedTreeAutomaton(
        frozenset(states), frozenset(labels), accepting, horizontal
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("size", SIZES)
def test_emptiness_fixpoint(benchmark, size, engine):
    nbta = random_nbta(size, size)
    benchmark.extra_info["engine"] = engine or "bitset"
    benchmark(nbta.is_empty, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("size", SIZES)
def test_witness_extraction(benchmark, size, engine):
    nbta = random_nbta(size, size + 1)
    benchmark.extra_info["engine"] = engine or "bitset"
    witness = benchmark(nbta.witness, engine=engine)
    if witness is not None:
        assert nbta.accepts(witness)
