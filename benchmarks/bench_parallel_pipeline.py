"""Experiment P1: sharded corpus execution (jobs=1 vs jobs=N).

Workload: a corpus of bibliography documents served by one precompiled
``//author`` query through persistent :class:`ParallelExecutor` pools —
the pools are spun up and warmed *before* measurement, so the rows time
steady-state ``map`` calls (chunk dispatch, worker evaluation, and the
submission-order merge), not process spawning.

The ``jobs`` parametrization is the scaling curve recorded in
``BENCH_parallel_pipeline.json``; ``test_scaling_curve`` additionally
stamps one wall-clock measurement per worker count (and the machine's
CPU count — scaling beyond the physical core count is not expected) into
``extra_info``, and every parallel result is asserted byte-identical to
the serial one before it may be timed.

``test_transport_setup_cost`` rows time the *cold* path per transport —
spawn workers, ship the query, map one small corpus — contrasting the
pickle channel against the shared-memory segment (spec-in-segment, and
the dense numpy program when numpy is installed).
"""

import os
import random
import time

import pytest

from repro.core.patterns import compile_pattern
from repro.core.pipeline import Corpus
from repro.perf import npkernel
from repro.perf.parallel import ParallelExecutor
from repro.strings.examples import multi_sweep_query_automaton
from repro.trees.xml import make_bibliography

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
DOCUMENTS = 6 if SMOKE else 24
ENTRIES = 2 if SMOKE else 12
JOBS_CURVE = [1, 2] if SMOKE else [1, 2, 4]
SETUP_JOBS = 2
SETUP_PASSES = 2 if SMOKE else 6

_needs_numpy = pytest.mark.skipif(
    not npkernel.available(), reason="numpy not installed"
)
TRANSPORTS = [
    pytest.param(("pickle", None), id="pickle"),
    pytest.param(("pickle", "numpy"), id="pickle-numpy", marks=_needs_numpy),
    pytest.param(("shared_memory", None), id="shm-spec"),
    pytest.param(
        ("shared_memory", "numpy"), id="shm-program", marks=_needs_numpy
    ),
]


@pytest.fixture(scope="module")
def corpus():
    return Corpus.from_texts(
        make_bibliography(ENTRIES, ENTRIES + offset)
        for offset in range(DOCUMENTS)
    )


@pytest.fixture(scope="module")
def trees(corpus):
    return [document.tree for document in corpus]


@pytest.fixture(scope="module")
def query(corpus):
    return compile_pattern("//author", corpus.alphabet)


@pytest.fixture(scope="module", params=JOBS_CURVE)
def warm_executor(request, query, trees):
    """One persistent executor per worker count, warmed before timing."""
    with ParallelExecutor(query, jobs=request.param) as executor:
        executor.map(trees)  # spawn + initialize workers off the clock
        yield request.param, executor


@pytest.fixture(scope="module")
def serial_results(query, trees):
    with ParallelExecutor(query, jobs=1) as executor:
        return executor.map(trees)


def test_map_scaling(benchmark, warm_executor, trees, serial_results):
    """The curve row: one warm ``map`` per worker count."""
    jobs, executor = warm_executor
    assert executor.map(trees) == serial_results  # byte-identical, pre-timing
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["documents"] = len(trees)
    benchmark.extra_info["total_nodes"] = sum(tree.size for tree in trees)
    benchmark.extra_info["serial_equivalent"] = True
    if jobs == 1:
        results = benchmark(executor.map, trees)
    else:
        results = benchmark.pedantic(
            executor.map, args=(trees,), rounds=3 if SMOKE else 5, iterations=1
        )
    assert results == serial_results


def test_scaling_curve(benchmark, query, trees, serial_results):
    """One wall-clock sample per worker count, in a single row's extra_info."""
    wall_seconds = {}
    for jobs in JOBS_CURVE:
        with ParallelExecutor(query, jobs=jobs) as executor:
            first = executor.map(trees)  # warm the pool off the clock
            assert first == serial_results
            start = time.perf_counter()
            executor.map(trees)
            wall_seconds[str(jobs)] = time.perf_counter() - start
    benchmark.extra_info["wall_seconds_by_jobs"] = wall_seconds
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["documents"] = len(trees)
    serial = wall_seconds["1"]
    benchmark.extra_info["speedup_by_jobs"] = {
        jobs: serial / seconds if seconds else None
        for jobs, seconds in wall_seconds.items()
    }
    with ParallelExecutor(query, jobs=1) as executor:
        assert benchmark(executor.map, trees) == serial_results


@pytest.mark.parametrize("transport_engine", TRANSPORTS)
def test_transport_setup_cost(benchmark, transport_engine):
    """Cold start per transport: spawn, ship the query, map one corpus.

    Wall clock is dominated by process spawn (identical across
    transports), so the transport-specific numbers land in
    ``extra_info``: ``worker_init_ms`` (the ``parallel.worker_init_ns``
    gauge — time a worker spent receiving the query and building or
    attaching its engine) and ``worker_closure_steps`` /
    ``worker_rebuilds`` (behavior-closure work the workers performed
    themselves — the pickle transport makes *every* worker re-derive
    the closure, the shared-memory program transport ships it
    pre-computed and the workers do none).
    """
    from repro import obs

    transport, engine = transport_engine
    qa = multi_sweep_query_automaton(SETUP_PASSES)
    rng = random.Random(0x5E7)
    words = [
        "".join(rng.choice("01") for _ in range(32)) for _ in range(8)
    ]
    expected = [qa.evaluate(word) for word in words]

    def cold_run():
        with ParallelExecutor(
            qa, jobs=SETUP_JOBS, transport=transport, engine=engine
        ) as executor:
            return executor.map(words)

    assert cold_run() == expected  # warm the parent-side export cache
    with obs.collecting() as stats:
        assert cold_run() == expected
    report = stats.report()
    counters = report["counters"]
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["engine"] = engine or "default"
    benchmark.extra_info["jobs"] = SETUP_JOBS
    benchmark.extra_info["documents"] = len(words)
    benchmark.extra_info["automaton_states"] = len(qa.automaton.states)
    benchmark.extra_info["worker_init_ms"] = (
        report["gauges"]["parallel.worker_init_ns"] / 1e6
    )
    benchmark.extra_info["worker_closure_steps"] = counters.get(
        "npkernel.closure_steps", 0
    )
    benchmark.extra_info["worker_rebuilds"] = counters.get(
        "npkernel.rebuilds", 0
    )
    results = benchmark.pedantic(
        cold_run, rounds=2 if SMOKE else 3, iterations=1
    )
    assert results == expected


def test_corpus_select_parallel(benchmark, corpus, serial_results):
    """The pipeline-level entry point: ``Corpus.select(..., jobs=N)``."""
    jobs = max(JOBS_CURVE)
    benchmark.extra_info["jobs"] = jobs
    results = benchmark.pedantic(
        corpus.select,
        args=("//author",),
        kwargs={"jobs": jobs},
        rounds=2 if SMOKE else 3,
        iterations=1,
    )
    assert results == [sorted(paths) for paths in serial_results]
