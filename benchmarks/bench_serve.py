"""Experiment S1: the always-on server vs the one-shot CLI.

Four rows over the 3201-node ``make_bibliography(160, 160)`` workload:

* ``cold_cli`` — one full ``python -m repro.cli query`` subprocess per
  round: interpreter start, parse, compile, evaluate. What every
  request pays without a resident server.
* ``warm_server`` — sequential requests over one TCP connection to an
  in-process :class:`~repro.serve.server.QueryServer`; compile caches,
  engine registries and the document stay warm, so a round is one
  NDJSON round-trip plus an incremental (memo-hot) selection.
  ``extra_info`` records client-observed p50/p99 and sustained qps.
* ``edit_reselect`` — one single-subtree ``replace_subtree`` edit plus
  the incremental reselect through the :class:`DocumentStore` memos
  (Theorem 3.9: types below the edit are reused verbatim).
* ``full_reencode`` — the same edit answered the one-shot way: a full
  two-sweep ``Document.select`` with no incremental state.

Unlike its pytest-benchmark siblings this module is a standalone script
(CI runs ``python benchmarks/bench_serve.py --quick``): the server
rows need an event loop and a subprocess, which fit awkwardly in a
fixture. It emits the same ``BENCH_serve.json`` shape — ``module``,
``summary`` (with ``counters`` from a recording :mod:`repro.obs` sink
and a ``serve`` block holding the acceptance numbers), and one
``benchmarks`` row per scenario with min/max/mean/stddev/median/rounds
stats in seconds.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core.pipeline import Document  # noqa: E402
from repro.serve import DocumentStore, QueryServer  # noqa: E402
from repro.serve.protocol import encode_frame  # noqa: E402
from repro.trees.xml import make_bibliography, parse_document  # noqa: E402

QUERY = "//author"
FRAGMENT = (
    "<book><author>Fresh</author><title>Edit</title>"
    "<publisher>P</publisher><year>1999</year></book>"
)


def _row(name: str, samples: list[float], extra: dict) -> dict:
    """One benchmark row in the shape the other ``BENCH_*.json`` use."""
    return {
        "group": None,
        "name": name,
        "params": None,
        "extra_info": extra,
        "stats": {
            "min": min(samples),
            "max": max(samples),
            "mean": statistics.fmean(samples),
            "stddev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
            "median": statistics.median(samples),
            "rounds": len(samples),
        },
    }


def _percentile(samples: list[float], q: float) -> float:
    return obs.percentile(samples, q)


def bench_cold_cli(text: str, rounds: int) -> list[float]:
    """Wall time of one-shot CLI queries, one subprocess per round."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    samples = []
    with tempfile.NamedTemporaryFile(
        "w", suffix=".xml", delete=False
    ) as handle:
        handle.write(text)
        path = handle.name
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.cli", "query", path, QUERY],
                env=env,
                check=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            samples.append(time.perf_counter() - start)
    finally:
        os.unlink(path)
    return samples


async def _warm_requests(
    server: QueryServer, host: str, port: int, rounds: int
) -> list[float]:
    reader, writer = await asyncio.open_connection(host, port)
    samples = []
    try:
        for index in range(rounds):
            frame = {"id": index, "op": "query", "doc": "bib", "query": QUERY}
            start = time.perf_counter()
            writer.write(encode_frame(frame))
            await writer.drain()
            response = json.loads(await reader.readline())
            samples.append(time.perf_counter() - start)
            assert response["ok"], response
    finally:
        writer.close()
        await writer.wait_closed()
    return samples


def bench_warm_server(
    text: str, rounds: int
) -> tuple[list[float], float, QueryServer]:
    """Client-observed latencies over one warm TCP connection, plus qps."""
    server = QueryServer(DocumentStore())
    server.store.load("bib", text)

    async def main() -> tuple[list[float], float]:
        host, port = await server.start_tcp()
        await _warm_requests(server, host, port, 3)  # warm off the clock
        start = time.perf_counter()
        samples = await _warm_requests(server, host, port, rounds)
        elapsed = time.perf_counter() - start
        await server.handle_frame({"op": "shutdown"})
        await server.wait_closed()
        return samples, rounds / elapsed

    samples, qps = asyncio.run(main())
    return samples, qps, server


def bench_edit_reselect(text: str, rounds: int) -> list[float]:
    """A single-subtree edit plus the incremental (memo-hot) reselect."""
    store = DocumentStore()
    store.load("bib", text)
    store.select("bib", QUERY)  # the initial full derivation, off the clock
    fragment = parse_document(FRAGMENT)
    samples = []
    for index in range(rounds):
        path = (index % len(store.document("bib").element.content),)
        start = time.perf_counter()
        store.replace_subtree("bib", path, fragment)
        result = store.select("bib", QUERY)
        samples.append(time.perf_counter() - start)
        assert result
    return samples


def bench_full_reencode(text: str, rounds: int) -> list[float]:
    """The same edit answered with a from-scratch two-sweep select."""
    document = Document.from_text(text)
    fragment = parse_document(FRAGMENT)
    document.select(QUERY)  # warm the pattern/engine caches, not the types
    samples = []
    for index in range(rounds):
        path = (index % len(document.element.content),)
        start = time.perf_counter()
        document = document.with_replaced(path, fragment)
        result = Document.from_element(document.element).select(QUERY)
        samples.append(time.perf_counter() - start)
        assert result
    return samples


def run(quick: bool, out: Path) -> dict:
    text = make_bibliography(160, 160)
    nodes = Document.from_text(text).tree.size
    cli_rounds = 2 if quick else 5
    warm_rounds = 30 if quick else 300
    edit_rounds = 10 if quick else 60

    stats = obs.Stats()
    with obs.collecting(stats):
        warm, qps, server = bench_warm_server(text, warm_rounds)
        edit = bench_edit_reselect(text, edit_rounds)
        full = bench_full_reencode(text, edit_rounds)
    # The subprocess rows can't record into an in-process sink; keep
    # them outside so ``summary.counters`` describes in-process work.
    cold = bench_cold_cli(text, cli_rounds)

    warm_p99 = _percentile(warm, 99)
    cold_p99 = _percentile(cold, 99)
    rows = [
        _row(
            "cold_cli",
            cold,
            {"nodes": nodes, "p99_ms": cold_p99 * 1e3, "subprocess": True},
        ),
        _row(
            "warm_server",
            warm,
            {
                "nodes": nodes,
                "p50_ms": _percentile(warm, 50) * 1e3,
                "p99_ms": warm_p99 * 1e3,
                "qps": qps,
                "server_requests": server.lifetime.counters.get(
                    "serve.requests", 0
                ),
            },
        ),
        _row(
            "edit_reselect",
            edit,
            {"nodes": nodes, "engine": "table", "incremental": True},
        ),
        _row(
            "full_reencode",
            full,
            {"nodes": nodes, "engine": "table", "incremental": False},
        ),
    ]
    report = {
        "module": "bench_serve",
        "summary": {
            "benchmarks": len(rows),
            "engine": "table",
            "mean": statistics.fmean(r["stats"]["mean"] for r in rows),
            "median": statistics.median(
                r["stats"]["median"] for r in rows
            ),
            "counters": dict(sorted(stats.counters.items())),
            "serve": {
                "nodes": nodes,
                "sustained_qps": qps,
                "warm_p99_ms": warm_p99 * 1e3,
                "cold_cli_p99_ms": cold_p99 * 1e3,
                "cold_over_warm_p99": cold_p99 / warm_p99,
                "edit_reselect_ms": statistics.median(edit) * 1e3,
                "full_reencode_ms": statistics.median(full) * 1e3,
                "full_over_incremental": (
                    statistics.median(full) / statistics.median(edit)
                ),
            },
        },
        "benchmarks": rows,
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes: fewer rounds, same rows and JSON shape",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_serve.json",
        help="output path (default: BENCH_serve.json at the repo root)",
    )
    args = parser.parse_args(argv)
    report = run(args.quick, args.out)
    serve = report["summary"]["serve"]
    print(
        f"warm p99 {serve['warm_p99_ms']:.3f} ms · "
        f"cold CLI p99 {serve['cold_cli_p99_ms']:.1f} ms "
        f"({serve['cold_over_warm_p99']:.0f}x) · "
        f"edit+reselect {serve['edit_reselect_ms']:.3f} ms vs "
        f"full {serve['full_reencode_ms']:.3f} ms "
        f"({serve['full_over_incremental']:.1f}x) · "
        f"{serve['sustained_qps']:.0f} qps → {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
