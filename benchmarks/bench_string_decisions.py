"""Experiment §6 (strings): decision problems for QA^string.

Workload: the paper's worked string automata.  Measured: building the
query-graph NFA (the Theorem 3.9 guess-and-check, exponential in |S|) and
the DFA-algebra decisions on top of it.
"""

import pytest

from repro.decision.strings import (
    selection_language,
    string_containment_counterexample,
    string_queries_equivalent,
    string_query_witness,
)
from repro.strings.examples import (
    endpoints_if_contains,
    odd_ones_query_automaton,
    sweep_right_dfa_as_qa,
)


def test_selection_language_construction(benchmark):
    qa = odd_ones_query_automaton()
    dfa = benchmark(selection_language, qa, ["0", "1"])
    assert dfa.states


def test_selection_language_two_way_query(benchmark):
    qa = endpoints_if_contains("01", "1")
    dfa = benchmark(selection_language, qa, ["0", "1"])
    assert dfa.states


def test_nonemptiness(benchmark):
    qa = odd_ones_query_automaton()
    result = benchmark(string_query_witness, qa, ["0", "1"])
    assert result is not None


def test_containment(benchmark):
    endpoints = endpoints_if_contains("01", "1")
    all_ones = sweep_right_dfa_as_qa("01", ["1"])
    result = benchmark(
        string_containment_counterexample, endpoints, all_ones, ["0", "1"]
    )
    assert result is not None


def test_equivalence(benchmark):
    qa = odd_ones_query_automaton()
    assert benchmark(string_queries_equivalent, qa, qa, ["0", "1"])
