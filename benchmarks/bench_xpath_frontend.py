"""Experiment: the query-string frontend (`repro.lang`).

Workload: representative XPath and MSO query strings over the Figures
1–4 bibliography alphabet.  Measured: the pure frontend (tokenize +
parse + lower, no automaton work), a cold end-to-end compile (pattern
LRU and compile cache cleared each round), the warm dispatch a repeated
query string takes (one LRU probe), and the frontend's overhead
relative to evaluating a hand-built ``logic.syntax`` query — the cost
of the string syntax once caches are warm.

``REPRO_BENCH_SMOKE=1`` shrinks the document and round counts; each
row's ``extra_info`` records the syntax and query.
"""

import os

import pytest

from repro.core.pipeline import Document, pattern_cache_clear
from repro.core.query import MSOQuery
from repro.lang import compile_query_string, parse_mso_query, parse_xpath
from repro.lang.xpath import lower_xpath
from repro.logic.syntax import Label, Var
from repro.perf.compile import compile_cache_clear
from repro.trees.xml import make_bibliography

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENTRIES = 4 if SMOKE else 40
ROUNDS = 2 if SMOKE else 5

XPATH_QUERIES = [
    "//author",
    "//book[author and year]/title",
    "//title/following-sibling::publisher",
]
MSO_QUERIES = [
    "lab_author(x)",
    "lab_book(x) & exists y. (child(x, y) & lab_year(y))",
    "leaf(x) & !lab_author(x)",
]


@pytest.fixture(scope="module")
def document():
    return Document.from_text(make_bibliography(ENTRIES, ENTRIES))


def _clear_caches():
    pattern_cache_clear()
    compile_cache_clear()


@pytest.mark.parametrize("source", XPATH_QUERIES)
def test_parse_and_lower_xpath(benchmark, source):
    """The pure frontend: tokenize, parse, lower — no automaton work."""
    benchmark.extra_info["syntax"] = "xpath"
    benchmark.extra_info["query"] = source
    alphabet = ("bibliography", "book", "author", "title", "year")

    formula, var = benchmark(
        lambda: lower_xpath(parse_xpath(source), alphabet)
    )
    assert formula.free_vars() == frozenset({var})


@pytest.mark.parametrize("source", MSO_QUERIES)
def test_parse_mso(benchmark, source):
    """The MSO frontend: tokenize, parse, type-check the free variable."""
    benchmark.extra_info["syntax"] = "mso"
    benchmark.extra_info["query"] = source
    formula, var = benchmark(parse_mso_query, source)
    assert formula.free_vars() == frozenset({var})


@pytest.mark.parametrize(
    "source", ["xpath://author", "mso:lab_author(x)", "//author"]
)
def test_compile_cold(benchmark, document, source):
    """String → formula → automaton with every cache cleared."""
    benchmark.extra_info["query"] = source
    query = benchmark.pedantic(
        lambda: compile_query_string(source, document.alphabet).compiled(),
        setup=_clear_caches,
        rounds=ROUNDS,
    )
    assert query is not None


@pytest.mark.parametrize("source", ["xpath://author", "mso:lab_author(x)"])
def test_select_warm(benchmark, document, source):
    """A repeated query string: one pattern-LRU probe, then evaluation."""
    benchmark.extra_info["query"] = source
    document.select(source)  # prime the LRU and the compile cache
    selected = benchmark(document.select, source)
    assert selected == document.select("//author")


def test_select_handbuilt_baseline(benchmark, document):
    """The same selection from a prebuilt query — the frontend's floor."""
    x = Var("x")
    query = MSOQuery(Label(x, "author"), x, document.alphabet)
    document.select(query)
    benchmark.extra_info["query"] = "<handbuilt Label(x, 'author')>"
    selected = benchmark(document.select, query)
    assert selected == document.select("//author")
