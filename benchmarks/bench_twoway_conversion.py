"""Experiment P6.2: two-way → one-way conversion and its size blowup.

Workload: the Example 3.4 machine and random 2DFAs of growing state
count (derived from Hopcroft–Ullman combinations — genuinely two-way).
Measured: conversion time; the produced one-way state count is recorded
via an assertion envelope matching the exponential Proposition 6.2 bound.
"""

import random

import pytest

from repro.strings.examples import endpoints_if_contains, odd_ones_query_automaton
from repro.strings.hopcroft_ullman import hopcroft_ullman_gsqa
from repro.strings.shepherdson import to_one_way_dfa

from tests.conftest import random_total_dfa


def test_convert_example_3_4(benchmark):
    two_way = odd_ones_query_automaton().automaton
    one_way = benchmark(to_one_way_dfa, two_way)
    assert one_way.states


def test_convert_remark_3_3(benchmark):
    two_way = endpoints_if_contains("ab", "a").automaton
    one_way = benchmark(to_one_way_dfa, two_way)
    assert one_way.states


@pytest.mark.parametrize("states", [2, 3])
def test_convert_hopcroft_ullman_machines(benchmark, states):
    """Convert genuinely two-way machines of growing size."""
    rng = random.Random(states)
    combined = hopcroft_ullman_gsqa(
        random_total_dfa(rng, max_states=states),
        random_total_dfa(rng, max_states=states),
    )
    two_way = combined.automaton
    one_way = benchmark(to_one_way_dfa, two_way)
    n = len(two_way.states)
    # Proposition 6.2's envelope (very generous): exponential, no worse.
    assert len(one_way.states) <= ((2 * n + 2) ** n) * (n + 3) * 4
