"""Experiments T2.5 / T5.4: the Büchi and Doner–Thatcher–Wright compilers.

Workload: MSO formulas of growing quantifier structure.  Measured: compile
time (the nonelementary-in-depth blowup shows as sharply super-linear
growth per added negation/quantifier alternation) and evaluation time of
the compiled automata (linear per input).  Every row compiles *cold* —
the content-addressed compile cache is cleared before each round, so the
numbers record construction cost (with per-connective minimization), not
cache hits; `bench_compile_cache.py` measures the cache itself.
"""

import pytest

from repro.logic.compile_strings import compile_query, compile_sentence
from repro.logic.compile_trees import compile_tree_query, compile_tree_sentence
from repro.perf.compile import compile_cache_clear
from repro.logic.syntax import (
    And,
    Edge,
    Exists,
    Forall,
    Implies,
    Label,
    Less,
    Not,
    Var,
)

x, y, z = Var("x"), Var("y"), Var("z")


def string_formula(depth: int):
    """Nested alternation: ∃x a(x), ∃x∀y (a(x) ∧ (y<x → b(y))), ..."""
    if depth == 1:
        return Exists(x, Label(x, "a"))
    if depth == 2:
        return Exists(x, Forall(y, And(Label(x, "a"), Implies(Less(y, x), Label(y, "b")))))
    return Exists(
        x,
        Forall(
            y,
            Exists(
                z,
                And(
                    Label(x, "a"),
                    Implies(Less(y, x), Or_(Label(y, "b"), And(Less(y, z), Label(z, "a")))),
                ),
            ),
        ),
    )


def Or_(a, b):
    from repro.logic.syntax import Or

    return Or(a, b)


def _cold(benchmark, target, *args):
    """Benchmark ``target(*args)`` with the compile cache cleared per round."""
    return benchmark.pedantic(
        target, args=args, setup=compile_cache_clear, rounds=5
    )


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_string_sentence_compilation(benchmark, depth):
    phi = string_formula(depth)
    dfa = _cold(benchmark, compile_sentence, phi, ["a", "b"])
    assert dfa.states


def test_string_query_compilation(benchmark):
    phi = And(Label(x, "a"), Not(Exists(y, And(Less(x, y), Label(y, "a")))))
    dfa = _cold(benchmark, compile_query, phi, x, ["a", "b"])
    assert dfa.states


def tree_formula(depth: int):
    if depth == 1:
        return Exists(x, Label(x, "a"))
    return Exists(x, Forall(y, Implies(Edge(x, y), Label(y, "b"))))


@pytest.mark.parametrize("depth", [1, 2])
def test_tree_sentence_compilation(benchmark, depth):
    phi = tree_formula(depth)
    nbta = _cold(benchmark, compile_tree_sentence, phi, ["a", "b"])
    assert nbta.states


def test_tree_query_compilation(benchmark):
    phi = Exists(y, And(Edge(x, y), Label(y, "a")))
    automaton = _cold(benchmark, compile_tree_query, phi, x, ["a", "b"])
    assert automaton.states
