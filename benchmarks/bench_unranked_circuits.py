"""Experiment E5.9: the unranked circuit QA^u.

Workload: AND/OR circuits with unbounded fan-in, growing depth and width.
Measured: query evaluation by cut simulation (``naive``), by the
uncached Lemma 5.16 behavior evaluation (``uncached``), and by the
cached engines — the interned-dict ``table`` engine and the vectorized
``numpy`` tree kernel of :mod:`repro.perf.nptrees` (rows skip when
numpy is missing).
"""

import os

import pytest

from repro.perf.nptrees import available as numpy_available
from repro.perf.trees import fast_evaluate_unranked
from repro.trees.generators import random_unranked_circuit
from repro.unranked.behavior import evaluate_query_via_behavior
from repro.unranked.examples import circuit_query_automaton, circuit_reference_query

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SHAPES = [(2, 2), (3, 3)] if SMOKE else [(3, 3), (4, 3), (4, 5)]
ENGINES = ["table", "numpy"]


@pytest.mark.parametrize("depth,arity", SHAPES)
def test_simulation(benchmark, depth, arity):
    qa = circuit_query_automaton()
    tree = random_unranked_circuit(depth, arity, depth * 10 + arity)
    benchmark.extra_info["engine"] = "naive"
    selected = benchmark(qa.evaluate, tree)
    assert selected == circuit_reference_query(tree)


@pytest.mark.parametrize("depth,arity", SHAPES)
def test_behavior_evaluation(benchmark, depth, arity):
    qa = circuit_query_automaton()
    tree = random_unranked_circuit(depth, arity, depth * 10 + arity)
    benchmark.extra_info["engine"] = "uncached"
    selected = benchmark(evaluate_query_via_behavior, qa, tree)
    assert selected == circuit_reference_query(tree)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("depth,arity", SHAPES)
def test_fast_evaluation(benchmark, depth, arity, engine):
    """The cached engines behind ``fast_evaluate_unranked``."""
    if engine == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    qa = circuit_query_automaton()
    tree = random_unranked_circuit(depth, arity, depth * 10 + arity)
    benchmark.extra_info["engine"] = engine
    selected = benchmark(fast_evaluate_unranked, qa, tree, engine)
    assert selected == circuit_reference_query(tree)
