"""Experiment E5.9: the unranked circuit QA^u.

Workload: AND/OR circuits with unbounded fan-in, growing depth and width.
Measured: query evaluation by cut simulation and by the Lemma 5.16
behavior evaluation.
"""

import pytest

from repro.trees.generators import random_unranked_circuit
from repro.unranked.behavior import evaluate_query_via_behavior
from repro.unranked.examples import circuit_query_automaton, circuit_reference_query

SHAPES = [(3, 3), (4, 3), (4, 5)]  # (depth, max fan-in)


@pytest.mark.parametrize("depth,arity", SHAPES)
def test_simulation(benchmark, depth, arity):
    qa = circuit_query_automaton()
    tree = random_unranked_circuit(depth, arity, depth * 10 + arity)
    selected = benchmark(qa.evaluate, tree)
    assert selected == circuit_reference_query(tree)


@pytest.mark.parametrize("depth,arity", SHAPES)
def test_behavior_evaluation(benchmark, depth, arity):
    qa = circuit_query_automaton()
    tree = random_unranked_circuit(depth, arity, depth * 10 + arity)
    selected = benchmark(evaluate_query_via_behavior, qa, tree)
    assert selected == circuit_reference_query(tree)
