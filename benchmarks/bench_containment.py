"""Experiment T6.4: containment and equivalence of query automata.

Workload: the circuit QA^u against its gates-only restriction (a strict
containment each way) and the Example 5.14 SQA^u against itself.
Measured: the joint-closure product scan — the two-automaton analogue of
the T6.3 cost.

Each workload runs under both closure engines — the bitset-packed
worklist engine (the default) and the naive whole-closure rescan kept as
the differential oracle — so one measuring run records the speedup.
``REPRO_BENCH_SMOKE=1`` drops the slow naive rows.
"""

import os

import pytest

from repro.decision.closure import (
    are_equivalent,
    containment_counterexample,
    is_contained,
)
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.twoway import UnrankedQueryAutomaton

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENGINES = ["packed"] if SMOKE else ["packed", "naive"]


def _gates_only():
    full = circuit_query_automaton()
    return UnrankedQueryAutomaton(
        full.automaton, frozenset(p for p in full.selecting if p[0] != "u")
    )


def _note_engine(benchmark, engine: str) -> None:
    benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ENGINES)
def test_containment_holds(benchmark, engine):
    _note_engine(benchmark, engine)
    result = benchmark(
        is_contained, _gates_only(), circuit_query_automaton(), engine=engine
    )
    assert result


@pytest.mark.parametrize("engine", ENGINES)
def test_containment_counterexample(benchmark, engine):
    _note_engine(benchmark, engine)
    result = benchmark(
        containment_counterexample,
        circuit_query_automaton(),
        _gates_only(),
        engine=engine,
    )
    assert result is not None


@pytest.mark.parametrize("engine", ENGINES)
def test_equivalence_of_sqa_with_itself(benchmark, engine):
    sqa = first_one_sqa()
    _note_engine(benchmark, engine)
    result = benchmark(are_equivalent, sqa, sqa, engine=engine)
    assert result
