"""Experiment T6.4: containment and equivalence of query automata.

Workload: the circuit QA^u against its gates-only restriction (a strict
containment each way) and the Example 5.14 SQA^u against itself.
Measured: the joint-closure product scan — the two-automaton analogue of
the T6.3 cost.
"""

import pytest

from repro.decision.closure import (
    are_equivalent,
    containment_counterexample,
    is_contained,
)
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.twoway import UnrankedQueryAutomaton


def _gates_only():
    full = circuit_query_automaton()
    return UnrankedQueryAutomaton(
        full.automaton, frozenset(p for p in full.selecting if p[0] != "u")
    )


def test_containment_holds(benchmark):
    result = benchmark(is_contained, _gates_only(), circuit_query_automaton())
    assert result


def test_containment_counterexample(benchmark):
    result = benchmark(
        containment_counterexample, circuit_query_automaton(), _gates_only()
    )
    assert result is not None


def test_equivalence_of_sqa_with_itself(benchmark):
    sqa = first_one_sqa()
    result = benchmark(are_equivalent, sqa, sqa)
    assert result
