"""Experiment F1–F4: the Figures 1–4 pipeline (XML → tree → DTD check).

Workload: bibliography documents of growing size (the Figure 1 shape).
Measured: parse+abstract time and tree-automaton validation time; both
should scale linearly in document size.
"""

import pytest

from repro.trees.dtd import BIBLIOGRAPHY_DTD, parse_dtd
from repro.trees.xml import make_bibliography, parse_to_tree

SIZES = [10, 40, 160]


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(BIBLIOGRAPHY_DTD)


@pytest.mark.parametrize("entries", SIZES)
def test_parse_and_abstract(benchmark, entries):
    text = make_bibliography(entries, entries)
    tree = benchmark(parse_to_tree, text)
    assert tree.label == "bibliography"
    assert tree.arity == 2 * entries


@pytest.mark.parametrize("entries", SIZES)
def test_validate_against_figure2_dtd(benchmark, dtd, entries):
    tree = parse_to_tree(make_bibliography(entries, entries))
    automaton = dtd.to_tree_automaton()
    result = benchmark(automaton.accepts, tree)
    assert result


def test_full_pipeline_with_query(benchmark, dtd):
    """Parse, validate, and select all authors (the intro's use case)."""
    from repro.core.pipeline import Document

    text = make_bibliography(20, 20)

    def pipeline():
        document = Document.from_text(text, dtd)
        return document.select("//author")

    authors = benchmark(pipeline)
    assert len(authors) == 20 * 2 + 20
