"""Experiment F1–F4: the Figures 1–4 pipeline (XML → tree → DTD check).

Workload: bibliography documents of growing size (the Figure 1 shape).
Measured: parse+abstract time, tree-automaton validation time, and the
query stage under two regimes:

* *uncached* — recompile the pattern and re-run the two-pass algorithm
  from scratch on every call (the pre-cache behavior of
  ``Document.select``);
* *cached fast* — the :mod:`repro.perf` route: the pattern compiles once
  per (pattern, alphabet), and per-node sweeps are memoized by hashed
  subtree type, which bibliography trees (many identical ``book``
  subtrees) reward heavily.  ``batch_select`` amortizes across documents.

The cached rows are engine-parametrized: ``table`` is the interned-dict
default, ``numpy`` the vectorized tree kernel of
:mod:`repro.perf.nptrees` (rows skip when numpy is missing).
"""

import os

import pytest

from repro.core.patterns import compile_pattern
from repro.core.pipeline import Document, batch_select
from repro.perf.nptrees import available as numpy_available
from repro.trees.dtd import BIBLIOGRAPHY_DTD, parse_dtd
from repro.trees.xml import make_bibliography, parse_to_tree
from repro.unranked.dbta import evaluate_marked_query

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = [2, 4] if SMOKE else [10, 40, 160]
ENGINES = ["table", "numpy"]


def _require(engine):
    if engine == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(BIBLIOGRAPHY_DTD)


@pytest.mark.parametrize("entries", SIZES)
def test_parse_and_abstract(benchmark, entries):
    text = make_bibliography(entries, entries)
    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["document_chars"] = len(text)
    tree = benchmark(parse_to_tree, text)
    assert tree.label == "bibliography"
    assert tree.arity == 2 * entries


@pytest.mark.parametrize("entries", SIZES)
def test_validate_against_figure2_dtd(benchmark, dtd, entries):
    tree = parse_to_tree(make_bibliography(entries, entries))
    automaton = dtd.to_tree_automaton()
    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["tree_size"] = tree.size
    result = benchmark(automaton.accepts, tree)
    assert result


@pytest.mark.parametrize("entries", SIZES)
def test_query_uncached_per_call(benchmark, entries):
    """Pre-cache regime: recompile + two-pass from scratch, every call."""
    document = Document.from_text(make_bibliography(entries, entries))
    expected = len(document.select("//author"))

    def uncached():
        query = compile_pattern("//author", document.alphabet)
        return evaluate_marked_query(
            query.compiled(), document.tree, lambda label, bit: (label, bit)
        )

    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["tree_size"] = document.tree.size
    benchmark.extra_info["engine"] = "naive"
    selected = benchmark(uncached)
    assert len(selected) == expected


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("entries", SIZES)
def test_query_cached_fast(benchmark, entries, engine):
    """The cached route ``Document.select`` now takes."""
    _require(engine)
    document = Document.from_text(make_bibliography(entries, entries))
    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["tree_size"] = document.tree.size
    benchmark.extra_info["engine"] = engine
    selected = benchmark(document.select, "//author", engine)
    query = compile_pattern("//author", document.alphabet)
    assert selected == sorted(query.evaluate(document.tree))


@pytest.mark.parametrize("engine", ENGINES)
def test_full_pipeline_with_query(benchmark, dtd, engine):
    """Parse, validate, and select all authors (the intro's use case)."""
    _require(engine)
    entries = 4 if SMOKE else 20
    text = make_bibliography(entries, entries)

    def pipeline():
        document = Document.from_text(text, dtd)
        return document.select("//author", engine=engine)

    benchmark.extra_info["entries"] = entries
    benchmark.extra_info["engine"] = engine
    authors = benchmark(pipeline)
    assert len(authors) == entries * 2 + entries


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_select_many_documents(benchmark, dtd, engine):
    """One cached engine over a corpus of similar documents."""
    _require(engine)
    count = 3 if SMOKE else 25
    entries = 2 if SMOKE else 8
    documents = [
        Document.from_text(make_bibliography(entries, entries + offset), dtd)
        for offset in range(count)
    ]
    benchmark.extra_info["documents"] = count
    benchmark.extra_info["entries_each"] = entries
    benchmark.extra_info["engine"] = engine
    results = benchmark(batch_select, documents, "//author", engine=engine)
    assert len(results) == count
    assert all(result == document.select("//author")
               for result, document in zip(results, documents))
