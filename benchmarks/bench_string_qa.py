"""Experiment E3.4/E3.6: string query automata and GSQAs.

Workload: random bit-strings of growing length.  Measured, on the Example
3.4 machine and on a multi-sweep machine making ``PASSES`` full head
reversals:

(a) direct two-way simulation (cost grows with the number of sweeps),
(b) the per-call Theorem 3.9 behavior evaluation, and
(c) the :mod:`repro.perf` fast path — the same two passes, but over
    interned behavior tables shared across positions and calls — once
    per evaluation engine (``table`` dict sweeps vs the ``numpy``
    vectorized kernel; the numpy rows skip when numpy is absent).

The multi-sweep naive/fast pair is the headline contrast: simulation does
``(2·PASSES+1)·n`` head moves while the fast path stays two passes.
"""

import os
import random

import pytest

from repro.perf import batch_evaluate, fast_evaluate, fast_transduce, npkernel
from repro.strings.behavior import evaluate_query_via_behavior
from repro.strings.examples import (
    multi_sweep_query_automaton,
    odd_ones_gsqa,
    odd_ones_query_automaton,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
LENGTHS = [8, 16] if SMOKE else [100, 400, 1600]
PASSES = 2 if SMOKE else 8
BATCH = 4 if SMOKE else 64

ENGINES = [
    pytest.param("table", id="table"),
    pytest.param(
        "numpy",
        id="numpy",
        marks=pytest.mark.skipif(
            not npkernel.available(), reason="numpy not installed"
        ),
    ),
]


def _word(length: int) -> list[str]:
    rng = random.Random(length)
    return [rng.choice("01") for _ in range(length)]


def _note_sizes(benchmark, automaton, length: int) -> None:
    benchmark.extra_info["word_length"] = length
    benchmark.extra_info["automaton_states"] = len(automaton.states)
    benchmark.extra_info["automaton_size"] = automaton.size


@pytest.mark.parametrize("length", LENGTHS)
def test_direct_simulation(benchmark, length):
    qa = odd_ones_query_automaton()
    word = _word(length)
    _note_sizes(benchmark, qa.automaton, length)
    selected = benchmark(qa.evaluate, word)
    assert all(word[i - 1] == "1" for i in selected)


@pytest.mark.parametrize("length", LENGTHS)
def test_behavior_evaluation(benchmark, length):
    qa = odd_ones_query_automaton()
    word = _word(length)
    _note_sizes(benchmark, qa.automaton, length)
    selected = benchmark(evaluate_query_via_behavior, qa, word)
    assert selected == qa.evaluate(word)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("length", LENGTHS)
def test_fast_evaluation(benchmark, length, engine):
    qa = odd_ones_query_automaton()
    word = _word(length)
    _note_sizes(benchmark, qa.automaton, length)
    benchmark.extra_info["engine"] = engine
    selected = benchmark(fast_evaluate, qa, word, engine=engine)
    assert selected == qa.evaluate(word)


@pytest.mark.parametrize("length", LENGTHS)
def test_multi_sweep_direct_simulation(benchmark, length):
    qa = multi_sweep_query_automaton(PASSES)
    word = _word(length)
    _note_sizes(benchmark, qa.automaton, length)
    benchmark.extra_info["passes"] = PASSES
    selected = benchmark(qa.evaluate, word)
    assert all(word[i - 1] == "1" for i in selected)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("length", LENGTHS)
def test_multi_sweep_fast_evaluation(benchmark, length, engine):
    qa = multi_sweep_query_automaton(PASSES)
    word = _word(length)
    _note_sizes(benchmark, qa.automaton, length)
    benchmark.extra_info["passes"] = PASSES
    benchmark.extra_info["engine"] = engine
    selected = benchmark(fast_evaluate, qa, word, engine=engine)
    assert selected == qa.evaluate(word)


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_evaluation(benchmark, engine):
    """One engine, BATCH words: the numpy path runs one flat ragged scan."""
    qa = multi_sweep_query_automaton(PASSES)
    words = [_word(length) for length in range(64, 64 + BATCH)]
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["batch_size"] = BATCH
    benchmark.extra_info["passes"] = PASSES
    selected = benchmark(batch_evaluate, qa, words, engine=engine)
    assert selected == [qa.evaluate(word) for word in words]


@pytest.mark.parametrize("length", LENGTHS)
def test_gsqa_transduction(benchmark, length):
    gsqa = odd_ones_gsqa()
    word = _word(length)
    _note_sizes(benchmark, gsqa.automaton, length)
    outputs = benchmark(gsqa.transduce, word)
    assert len(outputs) == length


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("length", LENGTHS)
def test_gsqa_fast_transduction(benchmark, length, engine):
    gsqa = odd_ones_gsqa()
    word = _word(length)
    _note_sizes(benchmark, gsqa.automaton, length)
    benchmark.extra_info["engine"] = engine
    outputs = benchmark(fast_transduce, gsqa, word, engine=engine)
    assert outputs == gsqa.transduce(word)
