"""Experiment E3.4/E3.6: string query automata and GSQAs.

Workload: random bit-strings of growing length.  Measured: the Example
3.4 QA^string under (a) direct two-way simulation and (b) the linear-time
Theorem 3.9 behavior evaluation — both linear, with (b)'s advantage
growing with the number of head reversals.
"""

import random

import pytest

from repro.strings.behavior import evaluate_query_via_behavior
from repro.strings.examples import odd_ones_gsqa, odd_ones_query_automaton

LENGTHS = [100, 400, 1600]


def _word(length: int) -> list[str]:
    rng = random.Random(length)
    return [rng.choice("01") for _ in range(length)]


@pytest.mark.parametrize("length", LENGTHS)
def test_direct_simulation(benchmark, length):
    qa = odd_ones_query_automaton()
    word = _word(length)
    selected = benchmark(qa.evaluate, word)
    assert all(word[i - 1] == "1" for i in selected)


@pytest.mark.parametrize("length", LENGTHS)
def test_behavior_evaluation(benchmark, length):
    qa = odd_ones_query_automaton()
    word = _word(length)
    selected = benchmark(evaluate_query_via_behavior, qa, word)
    assert selected == qa.evaluate(word)


@pytest.mark.parametrize("length", LENGTHS)
def test_gsqa_transduction(benchmark, length):
    gsqa = odd_ones_gsqa()
    word = _word(length)
    outputs = benchmark(gsqa.transduce, word)
    assert len(outputs) == length
