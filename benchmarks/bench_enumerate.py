"""Experiment E1: constant-delay enumeration vs materializing select.

Rows over ``make_bibliography(K, K)`` bibliographies (the large-answer
``//author`` workload — one answer per entry):

* ``ttfa_stream`` — time-to-first-answer of a warm
  ``DocumentStore.select_iter`` cursor: the per-document type memo makes
  the preprocessing sweep an O(1) root identity hit, so the first answer
  costs only its jump chain from the root.
* ``ttfa_select`` — the same first answer obtained the one-shot way:
  ``Document.select`` materializes (and sorts) the full answer list
  before anything can be read.
* ``delay_small`` / ``delay_large`` — full drains at K and 10·K;
  ``extra_info.max_delay_us`` records the worst inter-answer gap
  (excluding the first answer, which is TTFA).  Constant delay means
  the worst gap stays flat as the document grows 10×.
* ``drain_stream`` / ``drain_select`` — full-drain wall time and
  (in ``extra_info``) tracemalloc peak bytes: the cursor holds a DFS
  stack, never the answer list.

Like ``bench_serve.py`` this is a standalone script (CI runs
``python benchmarks/bench_enumerate.py --quick``) emitting the shared
``BENCH_*.json`` shape; ``summary.enumerate`` holds the acceptance
numbers (``ttfa_speedup`` ≥ 10, ``delay_ratio`` ≤ 2).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
import tracemalloc
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core.pipeline import Document  # noqa: E402
from repro.serve import DocumentStore  # noqa: E402
from repro.trees.xml import make_bibliography  # noqa: E402

QUERY = "//author"


def _row(name: str, samples: list[float], extra: dict) -> dict:
    """One benchmark row in the shape the other ``BENCH_*.json`` use."""
    return {
        "group": None,
        "name": name,
        "params": None,
        "extra_info": extra,
        "stats": {
            "min": min(samples),
            "max": max(samples),
            "mean": statistics.fmean(samples),
            "stddev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
            "median": statistics.median(samples),
            "rounds": len(samples),
        },
    }


def _warm_store(text: str) -> DocumentStore:
    """A store with hot type memos and productivity flags for QUERY."""
    store = DocumentStore()
    store.load("bib", text)
    store.select("bib", QUERY)
    for _ in store.select_iter("bib", QUERY):
        pass
    return store


def bench_ttfa(
    store: DocumentStore, document: Document, rounds: int
) -> tuple[list[float], list[float]]:
    """Per-round (stream first answer, materialized select) timings."""
    stream, select = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        cursor = store.select_iter("bib", QUERY)
        first = next(cursor)
        stream.append(time.perf_counter() - start)
        cursor.close()
        start = time.perf_counter()
        answers = document.select(QUERY)
        select.append(time.perf_counter() - start)
        assert answers[0] == first
    return stream, select


def bench_max_delay(size: int, rounds: int) -> tuple[list[float], int]:
    """Per-round p99 inter-answer gaps on a warm full drain.

    p99 rather than the raw max: a drain with 10× more answers gets 10×
    more chances to catch an unrelated scheduler spike, so comparing
    maxima across sizes systematically penalizes the larger document.
    """
    store = _warm_store(make_bibliography(size, size))
    worsts = []
    answers = 0
    for _ in range(rounds):
        cursor = store.select_iter("bib", QUERY)
        next(cursor)  # TTFA is its own row; delays start after it
        answers = 1
        previous = time.perf_counter()
        gaps = []
        for _ in cursor:
            now = time.perf_counter()
            gaps.append(now - previous)
            previous = now
            answers += 1
        worsts.append(obs.percentile(gaps, 99))
    return worsts, answers


def bench_drain(
    store: DocumentStore, document: Document, rounds: int
) -> tuple[list[float], list[float], int, int]:
    """Full-drain timings plus tracemalloc peaks for both paths."""
    stream, select = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        count = sum(1 for _ in store.select_iter("bib", QUERY))
        stream.append(time.perf_counter() - start)
        start = time.perf_counter()
        answers = document.select(QUERY)
        select.append(time.perf_counter() - start)
        assert count == len(answers)
    tracemalloc.start()
    for _ in store.select_iter("bib", QUERY):
        pass
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    document.select(QUERY)
    _, select_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return stream, select, stream_peak, select_peak


def run(quick: bool, out: Path) -> dict:
    # --quick keeps the full workload size (rows stay comparable to the
    # committed baseline in tools/bench_compare.py) and trims rounds.
    size = 1500
    rounds = 5 if quick else 25
    delay_rounds = 3 if quick else 5
    text = make_bibliography(size, size)
    document = Document.from_text(text)
    document.select(QUERY)  # warm the pattern/compile caches
    nodes = document.tree.size

    stats = obs.Stats()
    with obs.collecting(stats):
        store = _warm_store(text)
        ttfa_stream, ttfa_select = bench_ttfa(store, document, rounds)
        small_delays, small_answers = bench_max_delay(
            size // 10, delay_rounds
        )
        large_delays, large_answers = bench_max_delay(size, delay_rounds)
        drain_stream, drain_select, stream_peak, select_peak = bench_drain(
            store, document, rounds
        )

    ttfa_speedup = statistics.median(ttfa_select) / statistics.median(
        ttfa_stream
    )
    # min-of-maxes: each round's worst gap includes scheduler noise, so
    # the smallest observed worst case is the intrinsic delay bound.
    small_delay = min(small_delays)
    large_delay = min(large_delays)
    rows = [
        _row(
            "ttfa_stream",
            ttfa_stream,
            {"nodes": nodes, "warm_memo": True, "engine": "table"},
        ),
        _row(
            "ttfa_select",
            ttfa_select,
            {"nodes": nodes, "materializes": True, "engine": "table"},
        ),
        _row(
            "delay_small",
            small_delays,
            {
                "nodes": nodes // 10,
                "answers": small_answers,
                "max_delay_us": small_delay * 1e6,
            },
        ),
        _row(
            "delay_large",
            large_delays,
            {
                "nodes": nodes,
                "answers": large_answers,
                "max_delay_us": large_delay * 1e6,
            },
        ),
        _row(
            "drain_stream",
            drain_stream,
            {"nodes": nodes, "peak_bytes": stream_peak},
        ),
        _row(
            "drain_select",
            drain_select,
            {"nodes": nodes, "peak_bytes": select_peak},
        ),
    ]
    report = {
        "module": "bench_enumerate",
        "summary": {
            "benchmarks": len(rows),
            "engine": "table",
            "mean": statistics.fmean(r["stats"]["mean"] for r in rows),
            "median": statistics.median(r["stats"]["median"] for r in rows),
            "counters": dict(sorted(stats.counters.items())),
            "enumerate": {
                "nodes": nodes,
                "query": QUERY,
                "ttfa_stream_ms": statistics.median(ttfa_stream) * 1e3,
                "ttfa_select_ms": statistics.median(ttfa_select) * 1e3,
                "ttfa_speedup": ttfa_speedup,
                "max_delay_small_us": small_delay * 1e6,
                "max_delay_large_us": large_delay * 1e6,
                "delay_ratio": large_delay / small_delay,
                "stream_peak_bytes": stream_peak,
                "select_peak_bytes": select_peak,
                "peak_memory_ratio": select_peak / max(stream_peak, 1),
            },
        },
        "benchmarks": rows,
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller documents and fewer rounds (the CI gate)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=ROOT / "BENCH_enumerate.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    report = run(args.quick, args.out)
    summary = report["summary"]["enumerate"]
    print(json.dumps(summary, indent=2))
    ok = summary["ttfa_speedup"] >= 10 and summary["delay_ratio"] <= 2
    print(
        f"ttfa_speedup={summary['ttfa_speedup']:.1f} "
        f"delay_ratio={summary['delay_ratio']:.2f} "
        f"-> {'OK' if ok else 'BELOW TARGET'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
