"""Experiment §5.3: unbounded stay transitions (linear-space simulation).

Workload: depth-1 trees with leaf word aⁿbⁿ.  Measured: the G2DTA^u run —
``n`` stay transitions, each a full GSQA pass over ``2n`` children, so
quadratic overall; the point is that *no constant stay budget suffices*,
which is why Definition 5.12 restricts SQA^u to one stay per node.
"""

import pytest

from repro.trees.tree import Tree
from repro.unranked.turing import anbn_acceptor, anbn_reference


def leaf_word_tree(n: int) -> Tree:
    return Tree("r", [Tree(symbol) for symbol in "a" * n + "b" * n])


@pytest.mark.parametrize("n", [4, 8, 16])
def test_crossing_off_run(benchmark, n):
    acceptor = anbn_acceptor()
    tree = leaf_word_tree(n)
    accepted = benchmark(acceptor.accepts, tree)
    assert accepted


@pytest.mark.parametrize("n", [4, 8])
def test_rejection_is_detected(benchmark, n):
    acceptor = anbn_acceptor()
    tree = Tree("r", [Tree(s) for s in "a" * n + "b" * (n - 1)])
    accepted = benchmark(acceptor.accepts, tree)
    assert not accepted
