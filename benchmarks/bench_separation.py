"""Experiment P5.10 / E5.14: the QA^u vs SQA^u separation, measured.

Workload: the flat witness family ``t_i`` of Proposition 5.10 at growing
widths.  Measured: (a) the SQA^u of Example 5.14 answering the family
correctly (its one stay transition costs a single GSQA pass per node);
(b) how quickly the pigeonhole refutation finds a failing family member
for a plain QA^u attempt.
"""

import pytest

from repro.unranked.examples import first_one_sqa
from repro.unranked.separation import (
    first_one_reference,
    flat_family_tree,
    impossibility_witness,
)

from tests.unranked.test_separation import (
    naive_attempt_select_all_ones,
    positional_attempt,
)

WIDTHS = [8, 32, 128]


@pytest.mark.parametrize("width", WIDTHS)
def test_sqa_answers_the_family(benchmark, width):
    sqa = first_one_sqa()
    tree = flat_family_tree(width // 2, width)

    selected = benchmark(sqa.evaluate, tree)
    assert selected == first_one_reference(tree)


@pytest.mark.parametrize(
    "attempt", [naive_attempt_select_all_ones, positional_attempt],
    ids=["select-all-ones", "positional-window"],
)
def test_refuting_a_qa_attempt(benchmark, attempt):
    qa = attempt()
    witness = benchmark(impossibility_witness, qa, 10)
    assert witness is not None
