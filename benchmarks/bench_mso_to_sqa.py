"""Experiment Fig. 6 / T5.17: MSO → SQA^u and its evaluation cost.

Workload: wide unranked trees (inner arity ≥ 2); query "a-nodes with no
earlier a-sibling" (the Proposition 5.10 query, now over any tree).
Measured: construction cost of the Theorem 5.17 automaton (the stay GSQA
is a Lemma 3.10 instance — the expensive part) both cold (compile cache
cleared per round) and warm (content-addressed cache hit), and per-tree
evaluation by the Figure 6 algorithm vs the constructed SQA^u's genuine
run.
"""

import random

import pytest

from repro.logic.compile_trees import compile_tree_query
from repro.logic.syntax import And, Exists, Label, Less, Not, Var
from repro.perf.compile import compile_cache_clear
from repro.trees.tree import Tree
from repro.unranked.mso_to_sqa import build_query_sqa, figure6_evaluate

x, y = Var("x"), Var("y")
PHI = And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))


def wide_tree(depth: int, arity: int, seed: int) -> Tree:
    rng = random.Random(seed)

    def build(d: int) -> Tree:
        label = rng.choice("ab")
        if d == 0:
            return Tree(label)
        return Tree(label, [build(d - 1) for _ in range(arity)])

    return build(depth)


def test_construction_cost(benchmark):
    """Cold construction: the compile cache is cleared before every round."""
    sqa = benchmark.pedantic(
        build_query_sqa,
        args=(PHI, x, ["a", "b"]),
        setup=compile_cache_clear,
        rounds=3,
    )
    assert sqa is not None


def test_construction_cost_warm(benchmark):
    """Warm construction: every round after priming is a cache hit."""
    compile_cache_clear()
    build_query_sqa(PHI, x, ["a", "b"])
    sqa = benchmark(build_query_sqa, PHI, x, ["a", "b"])
    assert sqa is not None


@pytest.mark.parametrize("depth,arity", [(2, 3), (3, 3), (3, 4)])
def test_figure6_algorithm(benchmark, depth, arity):
    d = compile_tree_query(PHI, x, ["a", "b"])
    tree = wide_tree(depth, arity, depth + arity)
    benchmark(figure6_evaluate, d, tree)


@pytest.mark.parametrize("depth,arity", [(2, 3), (3, 3)])
def test_constructed_sqa_run(benchmark, depth, arity):
    sqa = build_query_sqa(PHI, x, ["a", "b"])
    d = compile_tree_query(PHI, x, ["a", "b"])
    tree = wide_tree(depth, arity, depth + arity)
    selected = benchmark(sqa.evaluate, tree)
    assert selected == figure6_evaluate(d, tree)
