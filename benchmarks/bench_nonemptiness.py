"""Experiment T6.3: query non-emptiness (the EXPTIME procedure).

Workload: the worked query automata of the paper (Example 5.9's QA^u,
Example 5.14's SQA^u with its stay transition, Example 4.4's QA^r via the
ranked embedding).  Measured: witness search time — contrast with the
PTIME growth of bench_nbta_emptiness.py; the SQA^u case pays extra for
the annotation-NFA (Proposition 6.2) machinery.
"""

import pytest

from repro.decision.closure import language_witness, query_witness
from repro.decision.convert import ranked_query_to_unranked
from repro.ranked.examples import circuit_value_query
from repro.unranked.examples import circuit_query_automaton, first_one_sqa


def test_language_nonemptiness_circuit(benchmark):
    qa = circuit_query_automaton()
    witness = benchmark(language_witness, qa.automaton)
    assert witness is not None


def test_query_nonemptiness_circuit_qa_u(benchmark):
    qa = circuit_query_automaton()
    result = benchmark(query_witness, qa)
    assert result is not None


def test_query_nonemptiness_sqa_u_with_stay(benchmark):
    sqa = first_one_sqa()
    result = benchmark(query_witness, sqa)
    assert result is not None


def test_query_nonemptiness_ranked_embedding(benchmark):
    qa = ranked_query_to_unranked(circuit_value_query())
    result = benchmark(query_witness, qa)
    assert result is not None
