"""Experiment T6.3: query non-emptiness (the EXPTIME procedure).

Workload: the worked query automata of the paper (Example 5.9's QA^u,
Example 5.14's SQA^u with its stay transition, Example 4.4's QA^r via the
ranked embedding).  Measured: witness search time — contrast with the
PTIME growth of bench_nbta_emptiness.py; the SQA^u case pays extra for
the annotation-NFA (Proposition 6.2) machinery.

Each workload runs under both closure engines — the bitset-packed
worklist engine (the default) and the naive whole-closure rescan kept as
the differential oracle — so one measuring run records the speedup.
``REPRO_BENCH_SMOKE=1`` drops the slow naive rows.
"""

import os

import pytest

from repro.decision.closure import language_witness, query_witness
from repro.decision.convert import ranked_query_to_unranked
from repro.ranked.examples import circuit_value_query
from repro.unranked.examples import circuit_query_automaton, first_one_sqa

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENGINES = ["packed"] if SMOKE else ["packed", "naive"]


def _note_engine(benchmark, engine: str) -> None:
    benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ENGINES)
def test_language_nonemptiness_circuit(benchmark, engine):
    qa = circuit_query_automaton()
    _note_engine(benchmark, engine)
    witness = benchmark(language_witness, qa.automaton, engine=engine)
    assert witness is not None


@pytest.mark.parametrize("engine", ENGINES)
def test_query_nonemptiness_circuit_qa_u(benchmark, engine):
    qa = circuit_query_automaton()
    _note_engine(benchmark, engine)
    result = benchmark(query_witness, qa, engine=engine)
    assert result is not None


@pytest.mark.parametrize("engine", ENGINES)
def test_query_nonemptiness_sqa_u_with_stay(benchmark, engine):
    sqa = first_one_sqa()
    _note_engine(benchmark, engine)
    result = benchmark(query_witness, sqa, engine=engine)
    assert result is not None


@pytest.mark.parametrize("engine", ENGINES)
def test_query_nonemptiness_ranked_embedding(benchmark, engine):
    qa = ranked_query_to_unranked(circuit_value_query())
    _note_engine(benchmark, engine)
    result = benchmark(query_witness, qa, engine=engine)
    assert result is not None
