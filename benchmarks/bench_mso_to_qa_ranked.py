"""Experiment Fig. 5 / T4.8: MSO → QA^r and its evaluation cost.

Workload: full binary trees of growing height; query "nodes with an
a-labeled child".  Measured: (a) one-time construction cost of the
Theorem 4.8 automaton; (b) per-tree evaluation — naive MSO semantics
(exponential-ish in the quantifiers, the baseline), the two-phase
Figure 5 algorithm, and the constructed QA^r's own run.  Expected shape:
naive loses by orders of magnitude as trees grow; the two automaton
routes stay linear.
"""

import pytest

from repro.logic.compile_trees import compile_tree_query
from repro.logic.semantics import tree_query
from repro.logic.syntax import And, Edge, Exists, Label, Var
from repro.ranked.mso_to_qa import QueryAutomatonBuilder, build_query_qar, two_phase_evaluate
from repro.trees.generators import complete_binary_tree
from repro.trees.tree import Tree

x, y = Var("x"), Var("y")
PHI = Exists(y, And(Edge(x, y), Label(y, "a")))


def _tree(height: int) -> Tree:
    import random

    rng = random.Random(height)

    def build(h: int) -> Tree:
        label = rng.choice("ab")
        if h == 0:
            return Tree(label)
        return Tree(label, [build(h - 1), build(h - 1)])

    return build(height)


def test_construction_cost(benchmark):
    benchmark(build_query_qar, PHI, x, ["a", "b"])


def test_naive_mso_baseline(benchmark):
    tree = _tree(2)  # naive semantics cannot go higher in reasonable time
    benchmark(tree_query, tree, PHI, x)


@pytest.mark.parametrize("height", [3, 5, 7])
def test_two_phase_figure5(benchmark, height):
    d = compile_tree_query(PHI, x, ["a", "b"])
    tree = _tree(height)
    benchmark(two_phase_evaluate, d, tree)


@pytest.mark.parametrize("height", [3, 5, 7])
def test_constructed_qar_run(benchmark, height):
    qa = build_query_qar(PHI, x, ["a", "b"])
    d = compile_tree_query(PHI, x, ["a", "b"])
    tree = _tree(height)
    selected = benchmark(qa.evaluate, tree)
    assert selected == two_phase_evaluate(d, tree)
