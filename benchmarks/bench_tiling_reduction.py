"""Experiment P6.1: the corridor-tiling reduction (EXPTIME-hardness).

Workload: tiling instances of growing corridor width.  Measured: game
solving (the attractor fixpoint — exponential in width), strategy-tree
extraction, acceptor construction, and the full chain
(instance → 2DTA^r → emptiness ⟺ winner).
"""

import pytest

from repro.decision.closure import language_witness
from repro.decision.convert import ranked_to_unranked
from repro.decision.tiling import TilingInstance, strategy_tree, tiling_acceptor

FULL2 = frozenset([(a, b) for a in ("a", "b") for b in ("a", "b")])


def instance(width: int) -> TilingInstance:
    return TilingInstance(
        tiles=("a", "b"),
        horizontal=FULL2,
        vertical=frozenset([("a", "b"), ("b", "a")]),
        bottom=tuple("a" for _ in range(width)),
        top=tuple("a" for _ in range(width)),
    )


@pytest.mark.parametrize("width", [1, 2, 3])
def test_game_solver(benchmark, width):
    inst = instance(width)
    result = benchmark(inst.player_one_wins)
    assert result  # alternate a/b rows reach the top


@pytest.mark.parametrize("width", [1, 2])
def test_strategy_tree_extraction(benchmark, width):
    inst = instance(width)
    tree = benchmark(strategy_tree, inst)
    assert tree is not None


@pytest.mark.parametrize("width", [1, 2])
def test_acceptor_construction(benchmark, width):
    inst = instance(width)
    acceptor = benchmark(tiling_acceptor, inst)
    assert acceptor.states


def test_reduction_end_to_end(benchmark):
    inst = instance(1)

    def chain():
        acceptor = tiling_acceptor(inst)
        return language_witness(ranked_to_unranked(acceptor))

    witness = benchmark(chain)
    assert (witness is not None) == inst.player_one_wins()
