"""Experiments E4.2 / E4.4: ranked Boolean-circuit automata.

Workload: full binary AND/OR circuits of growing height.  Measured:
acceptance (Example 4.2) and query evaluation (Example 4.4) under direct
cut simulation vs the Lemma 4.7 behavior evaluation — the ablation the
DESIGN.md calls out (both linear; behavior evaluation avoids replaying
the cut dynamics).
"""

import pytest

from repro.ranked.behavior import evaluate_query_via_behavior
from repro.ranked.examples import circuit_acceptor, circuit_value_query
from repro.trees.generators import evaluate_circuit, random_binary_circuit

HEIGHTS = [4, 6, 8]


@pytest.mark.parametrize("height", HEIGHTS)
def test_acceptance_example_4_2(benchmark, height):
    acceptor = circuit_acceptor()
    tree = random_binary_circuit(height, height)
    accepted = benchmark(acceptor.accepts, tree)
    assert accepted == (evaluate_circuit(tree) == 1)


@pytest.mark.parametrize("height", HEIGHTS)
def test_query_simulation_example_4_4(benchmark, height):
    qa = circuit_value_query()
    tree = random_binary_circuit(height, height)
    benchmark(qa.evaluate, tree)


@pytest.mark.parametrize("height", HEIGHTS)
def test_query_behavior_evaluation(benchmark, height):
    qa = circuit_value_query()
    tree = random_binary_circuit(height, height)
    selected = benchmark(evaluate_query_via_behavior, qa, tree)
    assert selected == qa.evaluate(tree)
