"""Experiment: the compilation optimizer (minimization + compile cache).

Workload: the Proposition 5.10 query formula and a quantifier-alternating
string sentence, compiled through every stage of the optimizer.
Measured: the naive construction vs the per-connective-minimized one
(``engine=``), a cold compile (content-addressed cache cleared each
round) vs a warm one (memory hit), and a simulated cold *process* that
reloads the artifact from an on-disk cache directory.

Each row's ``extra_info`` records the variant; the module summary's
``counters`` block shows the ``compile.*`` and ``minimize.*`` activity
(see the ``DESIGN.md`` glossary).  ``REPRO_BENCH_SMOKE=1`` drops the
slow naive rows.
"""

import os

import pytest

from repro.logic.compile_strings import compile_sentence
from repro.logic.compile_trees import compile_tree_query
from repro.logic.syntax import (
    And,
    Exists,
    Forall,
    Implies,
    Label,
    Less,
    Not,
    Var,
)
from repro.perf.compile import CACHE, compile_cache_clear

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
ENGINES = ["optimized"] if SMOKE else ["optimized", "naive"]

x, y = Var("x"), Var("y")

#: The Proposition 5.10 query: a-nodes with no earlier a-sibling.
TREE_PHI = And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))

#: A quantifier-alternating string sentence (one alternation deep).
STRING_PHI = Exists(
    x, Forall(y, And(Label(x, "a"), Implies(Less(y, x), Label(y, "b"))))
)


@pytest.mark.parametrize("engine", ENGINES)
def test_string_sentence_engines(benchmark, engine):
    """Naive vs optimized Büchi compilation of the string sentence."""
    benchmark.extra_info["engine"] = engine
    dfa = benchmark.pedantic(
        compile_sentence,
        args=(STRING_PHI, ["a", "b"]),
        kwargs={"engine": engine},
        setup=compile_cache_clear,
        rounds=3,
    )
    assert dfa.states


@pytest.mark.parametrize("engine", ENGINES)
def test_tree_query_engines(benchmark, engine):
    """Naive vs optimized DTW compilation of the Prop. 5.10 query."""
    benchmark.extra_info["engine"] = engine
    automaton = benchmark.pedantic(
        compile_tree_query,
        args=(TREE_PHI, x, ["a", "b"]),
        kwargs={"engine": engine},
        setup=compile_cache_clear,
        rounds=3,
    )
    assert automaton.states


def test_tree_query_warm_memory(benchmark):
    """A warm compile is one digest lookup in the in-memory cache."""
    benchmark.extra_info["variant"] = "warm-memory"
    compile_cache_clear()
    compile_tree_query(TREE_PHI, x, ["a", "b"])
    automaton = benchmark(compile_tree_query, TREE_PHI, x, ["a", "b"])
    assert automaton.states


def test_tree_query_warm_disk(benchmark, tmp_path):
    """A cold process pointed at an artifact directory loads from disk."""
    benchmark.extra_info["variant"] = "warm-disk"
    previous = CACHE.directory
    CACHE.set_directory(tmp_path)
    try:
        compile_cache_clear()
        compile_tree_query(TREE_PHI, x, ["a", "b"])  # writes the artifact

        def cold_memory():
            CACHE.clear()  # keep the directory: simulates a fresh process

        automaton = benchmark.pedantic(
            compile_tree_query,
            args=(TREE_PHI, x, ["a", "b"]),
            setup=cold_memory,
            rounds=3,
        )
        assert automaton.states
    finally:
        CACHE.directory = previous
