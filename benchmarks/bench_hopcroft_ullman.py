"""Experiment L3.10: the Hopcroft–Ullman combination.

Workload: random total DFA pairs (forward/backward) and random words.
Measured: (a) construction cost vs DFA size — the γ-set machinery is the
exponential part (Prop 6.2's bound); (b) transduction cost vs word length
against the trivial two-pass oracle, both by direct simulation and
through the cached :mod:`repro.perf` behavior tables.
"""

import os
import random

import pytest

from repro.perf import fast_transduce
from repro.strings.hopcroft_ullman import (
    hopcroft_ullman_gsqa,
    reference_pairs,
    reversed_hopcroft_ullman_gsqa,
)

from tests.conftest import random_total_dfa

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
STATE_COUNTS = [2] if SMOKE else [2, 3, 4]
LENGTHS = [8, 16] if SMOKE else [50, 200, 800]


def _pair(states: int, seed: int):
    rng = random.Random(seed)
    return (
        random_total_dfa(rng, max_states=states),
        random_total_dfa(rng, max_states=states),
    )


@pytest.mark.parametrize("states", STATE_COUNTS)
def test_construction_cost(benchmark, states):
    forward, backward = _pair(states, states)
    benchmark.extra_info["max_dfa_states"] = states
    combined = benchmark(hopcroft_ullman_gsqa, forward, backward)
    benchmark.extra_info["combined_states"] = len(combined.automaton.states)
    # Report the state blowup alongside the timing.
    assert len(combined.automaton.states) >= len(forward.states)


@pytest.mark.parametrize("states", STATE_COUNTS)
def test_mirrored_construction_cost(benchmark, states):
    forward, backward = _pair(states, states)
    benchmark.extra_info["max_dfa_states"] = states
    combined = benchmark(reversed_hopcroft_ullman_gsqa, forward, backward)
    benchmark.extra_info["combined_states"] = len(combined.automaton.states)
    assert len(combined.automaton.states) >= len(backward.states)


@pytest.mark.parametrize("length", LENGTHS)
def test_transduction_vs_two_pass(benchmark, length):
    forward, backward = _pair(3, 7)
    combined = hopcroft_ullman_gsqa(forward, backward)
    rng = random.Random(length)
    word = [rng.choice("ab") for _ in range(length)]
    benchmark.extra_info["word_length"] = length
    benchmark.extra_info["combined_states"] = len(combined.automaton.states)
    outputs = benchmark(combined.transduce, word)
    assert outputs == reference_pairs(forward, backward, word)


@pytest.mark.parametrize("length", LENGTHS)
def test_fast_transduction(benchmark, length):
    forward, backward = _pair(3, 7)
    combined = hopcroft_ullman_gsqa(forward, backward)
    rng = random.Random(length)
    word = [rng.choice("ab") for _ in range(length)]
    benchmark.extra_info["word_length"] = length
    benchmark.extra_info["combined_states"] = len(combined.automaton.states)
    outputs = benchmark(fast_transduce, combined, word)
    assert outputs == reference_pairs(forward, backward, word)
