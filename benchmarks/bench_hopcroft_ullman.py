"""Experiment L3.10: the Hopcroft–Ullman combination.

Workload: random total DFA pairs (forward/backward) and random words.
Measured: (a) construction cost vs DFA size — the γ-set machinery is the
exponential part (Prop 6.2's bound); (b) transduction cost vs word length
against the trivial two-pass oracle.
"""

import random

import pytest

from repro.strings.hopcroft_ullman import (
    hopcroft_ullman_gsqa,
    reference_pairs,
    reversed_hopcroft_ullman_gsqa,
)

from tests.conftest import random_total_dfa


def _pair(states: int, seed: int):
    rng = random.Random(seed)
    return (
        random_total_dfa(rng, max_states=states),
        random_total_dfa(rng, max_states=states),
    )


@pytest.mark.parametrize("states", [2, 3, 4])
def test_construction_cost(benchmark, states):
    forward, backward = _pair(states, states)
    combined = benchmark(hopcroft_ullman_gsqa, forward, backward)
    # Report the state blowup alongside the timing.
    assert len(combined.automaton.states) >= len(forward.states)


@pytest.mark.parametrize("states", [2, 3, 4])
def test_mirrored_construction_cost(benchmark, states):
    forward, backward = _pair(states, states)
    combined = benchmark(reversed_hopcroft_ullman_gsqa, forward, backward)
    assert len(combined.automaton.states) >= len(backward.states)


@pytest.mark.parametrize("length", [50, 200, 800])
def test_transduction_vs_two_pass(benchmark, length):
    forward, backward = _pair(3, 7)
    combined = hopcroft_ullman_gsqa(forward, backward)
    rng = random.Random(length)
    word = [rng.choice("ab") for _ in range(length)]
    outputs = benchmark(combined.transduce, word)
    assert outputs == reference_pairs(forward, backward, word)
