"""Shared workload builders for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment of the per-experiment
index in ``DESIGN.md`` (figures, worked examples, and complexity claims of
the paper).  ``pytest benchmarks/ --benchmark-only`` runs them all;
absolute numbers are machine-dependent, but the *shapes* (who wins, how
costs grow) are the reproduction targets recorded in ``EXPERIMENTS.md``.

Machine-readable results: after a measuring run, every benchmark module
``bench_<name>.py`` gets a ``BENCH_<name>.json`` at the repository root —
a top-level ``summary`` block (per-module mean/median over the row
means/medians, aggregated through :class:`repro.obs.Stats`, plus the
module's engine counters) and one row per benchmark with the timing
stats and each row's ``extra_info`` (input sizes, automaton sizes).
Runs with ``--benchmark-disable`` (e.g. CI smoke) produce no files.

Every test in this directory runs under a per-module recording
:mod:`repro.obs` sink, so the ``summary.counters`` block shows what the
engines actually did (sweeps, interning hits, closure scans, prunes) —
the glossary in ``DESIGN.md`` defines each name.

Setting ``REPRO_BENCH_SMOKE=1`` makes every module shrink its workloads
to trivial sizes — used by CI to exercise the benchmark code paths
without paying measurement time.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs

#: Per-module recording sinks, keyed by the stripped module name
#: (``bench_strings`` → ``strings``); populated by the autouse fixture
#: and drained into ``summary.counters`` at session finish.
_MODULE_STATS: dict[str, obs.Stats] = {}


def _module_key(path: str) -> str:
    module = Path(path).stem
    return module[len("bench_"):] if module.startswith("bench_") else module


def _engines(rows: list[dict]) -> str:
    """The ``summary.engine`` field: which engines the rows measured.

    Rows annotate themselves via ``extra_info["engine"]``; unannotated
    rows count as ``"default"``.  A uniform module reports the single
    engine name, a mixed one the sorted ``+``-join (``"numpy+table"``).
    """
    names = {
        (row.get("extra_info") or {}).get("engine") or "default"
        for row in rows
    }
    return "+".join(sorted(names))


def _summary(name: str, rows: list[dict]) -> dict:
    """Per-module aggregate, computed through an ``obs.Stats`` instance.

    ``mean``/``median`` keep their historical meaning (mean of row means,
    median of row medians); ``counters`` adds the module's accumulated
    engine counters from the recording sink the tests ran under, and
    ``engine`` records which evaluation engines the rows exercised.
    """
    stats = obs.Stats()
    for row in rows:
        if row["stats"]["mean"]:
            stats.observe("bench.mean", row["stats"]["mean"])
        if row["stats"]["median"]:
            stats.observe("bench.median", row["stats"]["median"])
    means = stats.sample_stats("bench.mean")
    medians = stats.sample_stats("bench.median")
    collected = _MODULE_STATS.get(name)
    return {
        "benchmarks": len(rows),
        "engine": _engines(rows),
        "mean": means["mean"] if means["count"] else None,
        "median": medians["median"] if medians["count"] else None,
        "counters": dict(sorted(collected.counters.items())) if collected else {},
    }


def pytest_configure(config):
    config.addinivalue_line("markers", "scaling: growth-curve measurements")


@pytest.fixture(autouse=True)
def _collect_engine_stats(request):
    """Accumulate obs counters per benchmark module for the summary block."""
    stats = _MODULE_STATS.setdefault(
        _module_key(str(request.path)), obs.Stats()
    )
    previous = obs.set_sink(stats)
    try:
        yield
    finally:
        obs.set_sink(previous)


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_<module>.json`` files for every measured benchmark."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in benchmarks:
        try:
            row = bench.as_dict(include_data=False)
        except Exception:  # pragma: no cover - stats missing (interrupted run)
            continue
        name = _module_key(bench.fullname.split("::", 1)[0])
        by_module.setdefault(name, []).append(
            {
                "name": row.get("name"),
                "group": row.get("group"),
                "params": row.get("params"),
                "extra_info": row.get("extra_info"),
                "stats": {
                    key: row.get("stats", {}).get(key)
                    for key in ("min", "max", "mean", "stddev", "median", "rounds")
                },
            }
        )
    root = Path(str(session.config.rootpath))
    for name, rows in sorted(by_module.items()):
        payload = {
            "module": f"benchmarks/bench_{name}.py",
            "summary": _summary(name, rows),
            "benchmarks": rows,
        }
        (root / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n"
        )
