"""Shared workload builders for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment of the per-experiment
index in ``DESIGN.md`` (figures, worked examples, and complexity claims of
the paper).  ``pytest benchmarks/ --benchmark-only`` runs them all;
absolute numbers are machine-dependent, but the *shapes* (who wins, how
costs grow) are the reproduction targets recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "scaling: growth-curve measurements")
