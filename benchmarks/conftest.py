"""Shared workload builders for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment of the per-experiment
index in ``DESIGN.md`` (figures, worked examples, and complexity claims of
the paper).  ``pytest benchmarks/ --benchmark-only`` runs them all;
absolute numbers are machine-dependent, but the *shapes* (who wins, how
costs grow) are the reproduction targets recorded in ``EXPERIMENTS.md``.

Machine-readable results: after a measuring run, every benchmark module
``bench_<name>.py`` gets a ``BENCH_<name>.json`` at the repository root —
a top-level ``summary`` block (per-module mean/median over the row
means/medians) plus one row per benchmark with the timing stats and each
row's ``extra_info`` (input sizes, automaton sizes).  Runs with
``--benchmark-disable`` (e.g. CI smoke) produce no files.

Setting ``REPRO_BENCH_SMOKE=1`` makes every module shrink its workloads
to trivial sizes — used by CI to exercise the benchmark code paths
without paying measurement time.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path


def _summary(rows: list[dict]) -> dict:
    """Per-module aggregate: mean of row means, median of row medians."""
    means = [row["stats"]["mean"] for row in rows if row["stats"]["mean"]]
    medians = [row["stats"]["median"] for row in rows if row["stats"]["median"]]
    return {
        "benchmarks": len(rows),
        "mean": statistics.fmean(means) if means else None,
        "median": statistics.median(medians) if medians else None,
    }


def pytest_configure(config):
    config.addinivalue_line("markers", "scaling: growth-curve measurements")


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_<module>.json`` files for every measured benchmark."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in benchmarks:
        try:
            row = bench.as_dict(include_data=False)
        except Exception:  # pragma: no cover - stats missing (interrupted run)
            continue
        module = Path(bench.fullname.split("::", 1)[0]).stem
        name = module[len("bench_"):] if module.startswith("bench_") else module
        by_module.setdefault(name, []).append(
            {
                "name": row.get("name"),
                "group": row.get("group"),
                "params": row.get("params"),
                "extra_info": row.get("extra_info"),
                "stats": {
                    key: row.get("stats", {}).get(key)
                    for key in ("min", "max", "mean", "stddev", "median", "rounds")
                },
            }
        )
    root = Path(str(session.config.rootpath))
    for name, rows in sorted(by_module.items()):
        payload = {
            "module": f"benchmarks/bench_{name}.py",
            "summary": _summary(rows),
            "benchmarks": rows,
        }
        (root / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n"
        )
