"""Büchi's theorem, executable: MSO on strings → finite automata (Thm 2.5).

The compiler uses the standard *extended alphabet* construction that the
paper's type-theoretic proof is equivalent to: a formula with free
variables ``v_1..v_k`` (first- or second-order) is compiled over the
alphabet ``Σ × {0,1}^k``, where bit ``j`` of a letter says whether the
position belongs to the interpretation of ``v_j``.  First-order tracks
must carry exactly one ``1`` (*validity*); every compiled automaton
enforces validity of all first-order tracks in scope, which makes
complementation sound.

* :func:`compile_sentence` — a sentence φ to a DFA with ``L = {w : w ⊨ φ}``.
* :func:`compile_query` — a unary formula φ(x) to a DFA over the *marked*
  alphabet ``Σ × {0,1}`` accepting exactly the words with one marked
  position ``i`` such that ``w ⊨ φ[i]``.  This is the same marking device
  the paper uses in the Theorem 6.3/6.4 reductions.
* :func:`evaluate_marked_query` — linear-time unary-query evaluation from
  a marked-alphabet DFA (one forward pass of states, one backward pass of
  accepting-state sets).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Hashable

from .. import obs
from ..strings.dfa import DFA
from ..strings.nfa import NFA, intersection_nfa, union_nfa
from .syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    Var,
)

Symbol = Hashable
#: A track list: the ordered free variables of the automaton under
#: construction.  Letters of the extended alphabet are ``(σ, bits)`` with
#: ``bits`` a 0/1 tuple indexed like the track list.
Tracks = tuple


class CompilationError(ValueError):
    """Raised for formulas outside the string vocabulary."""


def extended_alphabet(
    alphabet: frozenset[Symbol], tracks: Tracks
) -> frozenset[tuple]:
    """All letters ``(σ, bits)`` for the given base alphabet and tracks."""
    letters: set[tuple] = set()

    def bit_vectors(length: int):
        if length == 0:
            yield ()
            return
        for rest in bit_vectors(length - 1):
            yield (0,) + rest
            yield (1,) + rest

    for sigma in alphabet:
        for bits in bit_vectors(len(tracks)):
            letters.add((sigma, bits))
    return frozenset(letters)


def _singleton_track_dfa(
    alphabet: frozenset[tuple], index: int
) -> DFA:
    """DFA enforcing exactly one ``1`` in track ``index`` (validity)."""
    transitions = {}
    for letter in alphabet:
        bit = letter[1][index]
        transitions[(0, letter)] = 1 if bit else 0
        transitions[(1, letter)] = 2 if bit else 1
        transitions[(2, letter)] = 2
    return DFA.build({0, 1, 2}, alphabet, transitions, 0, {1})


#: Interned validity automata, keyed by (extended alphabet, FO-track mask).
#: The same validity NFA is intersected in at every atom and negation of a
#: compilation, so rebuilding it per connective dominated small compiles;
#: hits/misses surface as ``compile.validity_hits`` / ``_misses``.
_VALIDITY_CACHE: dict[tuple, NFA] = {}
_VALIDITY_CACHE_LIMIT = 512


def _validity_nfa(alphabet: frozenset[tuple], tracks: Tracks) -> NFA:
    """Validity of every first-order track in scope.

    Interned per (alphabet, FO-track mask): the automaton depends only on
    which track positions are first-order, not on the variables' names.
    """
    fo_mask = tuple(isinstance(variable, Var) for variable in tracks)
    key = (alphabet, fo_mask)
    sink = obs.SINK
    interned = _VALIDITY_CACHE.get(key)
    if interned is not None:
        if sink.enabled:
            sink.incr("compile.validity_hits")
        return interned
    if sink.enabled:
        sink.incr("compile.validity_misses")
    result: DFA | None = None
    for index, variable in enumerate(tracks):
        if not isinstance(variable, Var):
            continue
        track_dfa = _singleton_track_dfa(alphabet, index)
        result = track_dfa if result is None else result.intersection(track_dfa)
    if result is None:
        all_accept = DFA.build(
            {0}, alphabet, {(0, letter): 0 for letter in alphabet}, 0, {0}
        )
        built = NFA.from_dfa(all_accept)
    else:
        from ..perf.minimize import canonical_relabeled

        built = NFA.from_dfa(canonical_relabeled(result.minimized()))
    if len(_VALIDITY_CACHE) >= _VALIDITY_CACHE_LIMIT:
        _VALIDITY_CACHE.clear()
    _VALIDITY_CACHE[key] = built
    return built


class _Compiler:
    """Recursive compilation; one instance per (alphabet, outer tracks).

    With ``optimize`` (the default), every connective's automaton is
    reduced — determinized and Hopcroft-minimized — before feeding the
    next construction step, and subformulas are hash-consed: structurally
    equal (α-equivalent, commutativity-normalized) subformulas compile
    once per track shape, via :func:`repro.perf.compile.canonical_key`.
    ``optimize=False`` is the naive reference pipeline the differential
    suite compares against.
    """

    def __init__(self, alphabet: frozenset[Symbol], optimize: bool = True) -> None:
        self.alphabet = alphabet
        self.optimize = optimize
        self._memo: dict[tuple, NFA] = {}

    def _reduce(self, nfa: NFA) -> NFA:
        """Minimal deterministic form of an intermediate automaton.

        Relabeled to small integer states after minimization — the
        quotient's frozenset state names would otherwise nest deeper at
        every pipeline stage, and their hashing/ordering cost dominates
        deep compilations (see
        :func:`repro.perf.minimize.canonical_relabeled`).
        """
        if not self.optimize:
            return nfa
        from ..perf.minimize import canonical_relabeled

        return NFA.from_dfa(canonical_relabeled(nfa.determinized().minimized()))

    # -- atoms ---------------------------------------------------------

    def _atom_core(self, formula: Formula, tracks: Tracks) -> DFA:
        alphabet = extended_alphabet(self.alphabet, tracks)
        index = {variable: i for i, variable in enumerate(tracks)}

        if isinstance(formula, Label):
            i = index[formula.var]
            transitions = {}
            for letter in alphabet:
                sigma, bits = letter
                if bits[i]:
                    if sigma == formula.label:
                        transitions[(0, letter)] = 1
                    # else: no transition (reject)
                else:
                    transitions[(0, letter)] = 0
                transitions[(1, letter)] = 1 if not bits[i] else None
            transitions = {k: v for k, v in transitions.items() if v is not None}
            return DFA.build({0, 1}, alphabet, transitions, 0, {1})

        if isinstance(formula, Less):
            # States: 0 = x not yet seen, 1 = x seen / y not, 2 = both seen.
            i, j = index[formula.left], index[formula.right]
            transitions = {}
            for letter in alphabet:
                x_bit, y_bit = letter[1][i], letter[1][j]
                if x_bit and y_bit:
                    continue  # x = y: not <, reject from every state
                if x_bit:
                    transitions[(0, letter)] = 1
                elif y_bit:
                    transitions[(1, letter)] = 2  # y after x: good
                else:
                    transitions[(0, letter)] = 0
                    transitions[(1, letter)] = 1
                    transitions[(2, letter)] = 2
            return DFA.build({0, 1, 2}, alphabet, transitions, 0, {2})

        if isinstance(formula, Equal):
            i, j = index[formula.left], index[formula.right]
            transitions = {
                (0, letter): 0
                for letter in alphabet
                if letter[1][i] == letter[1][j]
            }
            return DFA.build({0}, alphabet, transitions, 0, {0})

        if isinstance(formula, Member):
            i, j = index[formula.var], index[formula.set_var]
            transitions = {}
            for letter in alphabet:
                bits = letter[1]
                if bits[i] and not bits[j]:
                    continue  # x outside X: reject
                transitions[(0, letter)] = 0
            return DFA.build({0}, alphabet, transitions, 0, {0})

        if isinstance(formula, (Edge, Descendant)):
            raise CompilationError(
                f"{type(formula).__name__} is not part of the string vocabulary"
            )

        raise CompilationError(f"not an atom: {formula!r}")

    # -- main recursion --------------------------------------------------

    def compile(self, formula: Formula, tracks: Tracks) -> NFA:
        """An NFA over the extended alphabet for the formula.

        Accepts exactly the valid-encoded words satisfying the formula;
        validity of *all* first-order tracks in ``tracks`` is enforced.
        When optimizing, results are hash-consed per (canonical formula
        key, track shape) and reduced after every connective.
        """
        if isinstance(formula, Implies):
            return self.compile(Or(Not(formula.left), formula.right), tracks)
        if isinstance(formula, Forall):
            return self.compile(
                Not(Exists(formula.var, Not(formula.inner))), tracks
            )
        if isinstance(formula, ForallSet):
            return self.compile(
                Not(ExistsSet(formula.set_var, Not(formula.inner))), tracks
            )
        if not self.optimize:
            return self._compile(formula, tracks)
        from ..perf.compile import canonical_key

        key = (
            canonical_key(formula, tracks),
            tuple(isinstance(variable, Var) for variable in tracks),
        )
        sink = obs.SINK
        memoized = self._memo.get(key)
        if memoized is not None:
            if sink.enabled:
                sink.incr("compile.subformula_hits")
            return memoized
        if sink.enabled:
            sink.incr("compile.subformula_misses")
        result = self._reduce(self._compile(formula, tracks))
        self._memo[key] = result
        return result

    def _compile(self, formula: Formula, tracks: Tracks) -> NFA:
        """One connective's construction (recursion re-enters ``compile``)."""
        alphabet = extended_alphabet(self.alphabet, tracks)

        if isinstance(formula, (Label, Less, Equal, Member, Edge, Descendant)):
            core = NFA.from_dfa(self._atom_core(formula, tracks))
            return intersection_nfa(core, _validity_nfa(alphabet, tracks))

        if isinstance(formula, Not):
            inner = self.compile(formula.inner, tracks).determinized()
            complemented = NFA.from_dfa(inner.complement())
            return intersection_nfa(complemented, _validity_nfa(alphabet, tracks))

        if isinstance(formula, And):
            return intersection_nfa(
                self.compile(formula.left, tracks),
                self.compile(formula.right, tracks),
            )

        if isinstance(formula, Or):
            return union_nfa(
                self.compile(formula.left, tracks),
                self.compile(formula.right, tracks),
            )

        if isinstance(formula, Implies):
            return self.compile(Or(Not(formula.left), formula.right), tracks)

        if isinstance(formula, (Exists, ExistsSet)):
            variable = formula.var if isinstance(formula, Exists) else formula.set_var
            if variable in tracks:
                raise CompilationError(f"variable {variable!r} shadowed")
            inner = self.compile(formula.inner, tracks + (variable,))
            return self._project(inner, tracks)

        if isinstance(formula, Forall):
            return self.compile(
                Not(Exists(formula.var, Not(formula.inner))), tracks
            )

        if isinstance(formula, ForallSet):
            return self.compile(
                Not(ExistsSet(formula.set_var, Not(formula.inner))), tracks
            )

        raise CompilationError(f"unknown formula node {formula!r}")

    def _project(self, inner: NFA, outer_tracks: Tracks) -> NFA:
        """Erase the last track (existential projection)."""
        alphabet = extended_alphabet(self.alphabet, outer_tracks)
        transitions: dict[tuple, set] = {}
        for (source, letter), targets in inner.transitions.items():
            sigma, bits = letter
            projected = (sigma, bits[:-1])
            key = (source, projected)
            transitions.setdefault(key, set()).update(targets)
        return NFA.build(
            inner.states,
            alphabet,
            {key: frozenset(value) for key, value in transitions.items()},
            inner.initials,
            inner.accepting,
        )


def _check_engine(engine: str) -> bool:
    """True for the optimized pipeline, False for naive; else raise."""
    if engine not in ("optimized", "naive"):
        raise CompilationError(f"unknown compile engine {engine!r}")
    return engine == "optimized"


def _build_sentence_dfa(
    sentence: Formula, alphabet: Sequence[Symbol], optimize: bool
) -> DFA:
    """The uncached sentence compilation (strip tracks, minimize)."""
    compiler = _Compiler(frozenset(alphabet), optimize=optimize)
    extended = compiler.compile(sentence, ())
    # Strip the now-trivial bits component from letters.
    dfa = extended.determinized()
    transitions = {
        (state, letter[0]): target
        for (state, letter), target in dfa.transitions.items()
    }
    plain = DFA.build(
        dfa.states, frozenset(alphabet), transitions, dfa.initial, dfa.accepting
    )
    if not optimize:
        return plain.minimized()
    from ..perf.minimize import canonical_relabeled

    return canonical_relabeled(plain.minimized())


def compile_sentence(
    sentence: Formula, alphabet: Sequence[Symbol], engine: str = "optimized"
) -> DFA:
    """A minimal DFA over Σ for the language defined by the sentence.

    ``engine="optimized"`` (default) hash-conses subformulas, reduces
    after every connective, and serves repeats from the content-addressed
    cache of :mod:`repro.perf.compile`; ``engine="naive"`` is the
    unoptimized reference construction the differential suite compares
    against.

    >>> from repro.logic.syntax import *
    >>> x = Var("x")
    >>> contains_a = Exists(x, Label(x, "a"))
    >>> dfa = compile_sentence(contains_a, ["a", "b"])
    >>> dfa.accepts("bba"), dfa.accepts("bbb")
    (True, False)
    """
    if sentence.free_vars() or sentence.free_set_vars():
        raise CompilationError("a sentence may not have free variables")
    if not _check_engine(engine):
        return _build_sentence_dfa(sentence, alphabet, optimize=False)
    from ..perf.compile import cached

    return cached(
        "string-sentence",
        sentence,
        (),
        frozenset(alphabet),
        lambda: _build_sentence_dfa(sentence, alphabet, optimize=True),
    )


#: Marked-alphabet letters are ``(σ, 0)`` / ``(σ, 1)`` pairs.
def mark_word(word: Sequence[Symbol], position: int) -> list[tuple]:
    """Encode ``w`` with 1-based ``position`` marked (§6's marking device)."""
    return [
        (symbol, 1 if index + 1 == position else 0)
        for index, symbol in enumerate(word)
    ]


def compile_query(
    formula: Formula,
    var: Var,
    alphabet: Sequence[Symbol],
    engine: str = "optimized",
) -> DFA:
    """A minimal DFA over ``Σ × {0,1}`` for the unary query ``φ(x)``.

    Accepts a marked word iff exactly one position is marked and the
    formula holds of it.  ``engine`` selects the optimized (hash-consed,
    per-connective-minimized, cached) or naive pipeline, as in
    :func:`compile_sentence`.
    """
    free = formula.free_vars()
    if not free <= {var} or formula.free_set_vars():
        raise CompilationError(f"free variables {free!r} must be exactly {{{var!r}}}")
    if _check_engine(engine):
        from ..perf.compile import cached

        return cached(
            "string-query",
            formula,
            (var,),
            frozenset(alphabet),
            lambda: _build_query_dfa(formula, var, alphabet, optimize=True),
        )
    return _build_query_dfa(formula, var, alphabet, optimize=False)


def _build_query_dfa(
    formula: Formula, var: Var, alphabet: Sequence[Symbol], optimize: bool
) -> DFA:
    """The uncached marked-alphabet query compilation."""
    compiler = _Compiler(frozenset(alphabet), optimize=optimize)
    extended = compiler.compile(formula, (var,))
    dfa = extended.determinized()
    transitions = {
        (state, (letter[0], letter[1][0])): target
        for (state, letter), target in dfa.transitions.items()
    }
    marked_alphabet = frozenset(
        (symbol, bit) for symbol in alphabet for bit in (0, 1)
    )
    plain = DFA.build(
        dfa.states, marked_alphabet, transitions, dfa.initial, dfa.accepting
    )
    if not optimize:
        return plain.minimized()
    from ..perf.minimize import canonical_relabeled

    return canonical_relabeled(plain.minimized())


def evaluate_marked_query(query_dfa: DFA, word: Sequence[Symbol]) -> frozenset[int]:
    """Linear-time evaluation of a marked-alphabet query DFA.

    Forward pass: the state of the DFA on the unmarked prefix before each
    position.  Backward pass: the set of states from which the unmarked
    suffix after each position leads to acceptance.  Position ``i`` is
    selected iff stepping the forward state over the *marked* letter lands
    in the backward set — two linear passes, the classical unary-query
    evaluation that Theorem 3.9's automaton internalizes via Lemma 3.10.
    """
    dfa = query_dfa.completed()
    n = len(word)

    forward: list = [dfa.initial]
    for symbol in word:
        forward.append(dfa.transitions[(forward[-1], (symbol, 0))])

    backward: list[frozenset] = [frozenset(dfa.accepting)]
    for symbol in reversed(word):
        previous = backward[-1]
        backward.append(
            frozenset(
                state
                for state in dfa.states
                if dfa.transitions[(state, (symbol, 0))] in previous
            )
        )
    backward.reverse()  # backward[i] = good states before reading suffix i+1..n

    selected = frozenset(
        i
        for i in range(1, n + 1)
        if dfa.transitions[(forward[i - 1], (word[i - 1], 1))] in backward[i]
    )
    return selected
