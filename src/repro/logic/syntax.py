"""Monadic second-order logic over strings and trees — formula syntax.

The vocabularies follow Section 2 of the paper:

* **Strings** (§2.2): positions with the order ``<`` and unary label
  predicates ``O_σ``.
* **Trees** (§2.3): nodes with the child relation ``E``, the sibling order
  ``<`` (which orders the children of each node), and label predicates
  ``O_σ``.

First-order variables (written lowercase by convention) range over
positions/nodes; set variables (uppercase) range over sets of them.  The
same AST serves both vocabularies; :mod:`repro.logic.semantics` interprets
``Less`` as position order on strings and as sibling order on trees.

Construction helpers allow idiomatic formula building::

    x, y = Var("x"), Var("y")
    X = SetVar("X")
    phi = Exists(x, Label(x, "book") & Forall(y, Edge(x, y) >> Label(y, "author")))

Derived predicates used throughout the paper — ``root(x)``, ``leaf(x)``,
``first_child(x)``, ``last_sibling(x)`` — are provided as functions that
expand to core syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion


@dataclass(frozen=True)
class Var:
    """A first-order variable (ranges over positions / nodes)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SetVar:
    """A second-order (set) variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


class Formula:
    """Base class providing operator sugar: ``&``, ``|``, ``~``, ``>>`` (implies)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    # -- structural helpers -------------------------------------------

    def free_vars(self) -> frozenset[Var]:
        """Free first-order variables."""
        return _free(self)[0]

    def free_set_vars(self) -> frozenset[SetVar]:
        """Free set variables."""
        return _free(self)[1]

    def quantifier_depth(self) -> int:
        """The nesting depth of quantifiers (the paper's ``k``)."""
        return _depth(self)


@dataclass(frozen=True, repr=False)
class Label(Formula):
    """``O_σ(x)``: the element ``x`` carries label ``σ``."""

    var: Var
    label: str

    def __repr__(self) -> str:
        return f"O_{self.label}({self.var!r})"


@dataclass(frozen=True, repr=False)
class Edge(Formula):
    """``E(x, y)``: ``y`` is a child of ``x`` (trees only)."""

    parent: Var
    child: Var

    def __repr__(self) -> str:
        return f"E({self.parent!r}, {self.child!r})"


@dataclass(frozen=True, repr=False)
class Descendant(Formula):
    """``x ⊏ y``: ``y`` is a proper descendant of ``x`` (trees only).

    Definable in MSO (see :func:`ancestor`) but provided as an atom so
    the compilers can use a constant-size automaton for it.
    """

    ancestor: Var
    descendant: Var

    def __repr__(self) -> str:
        return f"Desc({self.ancestor!r}, {self.descendant!r})"


@dataclass(frozen=True, repr=False)
class Less(Formula):
    """``x < y``: position order (strings) / sibling order (trees)."""

    left: Var
    right: Var

    def __repr__(self) -> str:
        return f"({self.left!r} < {self.right!r})"


@dataclass(frozen=True, repr=False)
class Equal(Formula):
    """``x = y``."""

    left: Var
    right: Var

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True, repr=False)
class Member(Formula):
    """``X(x)``: membership of ``x`` in the set ``X``."""

    var: Var
    set_var: SetVar

    def __repr__(self) -> str:
        return f"{self.set_var!r}({self.var!r})"


@dataclass(frozen=True, repr=False)
class Not(Formula):
    """Negation."""

    inner: Formula

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


@dataclass(frozen=True, repr=False)
class And(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True, repr=False)
class Or(Formula):
    """Disjunction."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True, repr=False)
class Implies(Formula):
    """Implication (eliminated by the compiler as ``¬a ∨ b``)."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True, repr=False)
class Exists(Formula):
    """First-order existential quantification."""

    var: Var
    inner: Formula

    def __repr__(self) -> str:
        return f"∃{self.var!r} {self.inner!r}"


@dataclass(frozen=True, repr=False)
class Forall(Formula):
    """First-order universal quantification."""

    var: Var
    inner: Formula

    def __repr__(self) -> str:
        return f"∀{self.var!r} {self.inner!r}"


@dataclass(frozen=True, repr=False)
class ExistsSet(Formula):
    """Second-order existential quantification (the MSO step beyond FO)."""

    set_var: SetVar
    inner: Formula

    def __repr__(self) -> str:
        return f"∃{self.set_var!r} {self.inner!r}"


@dataclass(frozen=True, repr=False)
class ForallSet(Formula):
    """Second-order universal quantification."""

    set_var: SetVar
    inner: Formula

    def __repr__(self) -> str:
        return f"∀{self.set_var!r} {self.inner!r}"


AtomicFormula = TypingUnion[Label, Edge, Descendant, Less, Equal, Member]


def _free(formula: Formula) -> tuple[frozenset[Var], frozenset[SetVar]]:
    if isinstance(formula, Label):
        return frozenset({formula.var}), frozenset()
    if isinstance(formula, Edge):
        return frozenset({formula.parent, formula.child}), frozenset()
    if isinstance(formula, Descendant):
        return frozenset({formula.ancestor, formula.descendant}), frozenset()
    if isinstance(formula, (Less, Equal)):
        return frozenset({formula.left, formula.right}), frozenset()
    if isinstance(formula, Member):
        return frozenset({formula.var}), frozenset({formula.set_var})
    if isinstance(formula, Not):
        return _free(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        left_fo, left_so = _free(formula.left)
        right_fo, right_so = _free(formula.right)
        return left_fo | right_fo, left_so | right_so
    if isinstance(formula, (Exists, Forall)):
        fo, so = _free(formula.inner)
        return fo - {formula.var}, so
    if isinstance(formula, (ExistsSet, ForallSet)):
        fo, so = _free(formula.inner)
        return fo, so - {formula.set_var}
    raise TypeError(f"unknown formula node {formula!r}")


def _depth(formula: Formula) -> int:
    if isinstance(formula, (Label, Edge, Descendant, Less, Equal, Member)):
        return 0
    if isinstance(formula, Not):
        return _depth(formula.inner)
    if isinstance(formula, (And, Or, Implies)):
        return max(_depth(formula.left), _depth(formula.right))
    if isinstance(formula, (Exists, Forall, ExistsSet, ForallSet)):
        return 1 + _depth(formula.inner)
    raise TypeError(f"unknown formula node {formula!r}")


# ----------------------------------------------------------------------
# Derived predicates (tree vocabulary)
# ----------------------------------------------------------------------

_FRESH = [0]


def fresh_var(hint: str = "t") -> Var:
    """A first-order variable guaranteed not to collide with user names."""
    _FRESH[0] += 1
    return Var(f"_{hint}{_FRESH[0]}")


def fresh_set_var(hint: str = "S") -> SetVar:
    """A set variable guaranteed not to collide with user names."""
    _FRESH[0] += 1
    return SetVar(f"_{hint}{_FRESH[0]}")


def root(x: Var) -> Formula:
    """``x`` has no parent."""
    y = fresh_var("p")
    return Not(Exists(y, Edge(y, x)))


def leaf(x: Var) -> Formula:
    """``x`` has no children."""
    y = fresh_var("c")
    return Not(Exists(y, Edge(x, y)))


def first_sibling(x: Var) -> Formula:
    """``x`` has no earlier sibling (also true of the root)."""
    y = fresh_var("s")
    return Not(Exists(y, Less(y, x)))


def last_sibling(x: Var) -> Formula:
    """``x`` has no later sibling (also true of the root)."""
    y = fresh_var("s")
    return Not(Exists(y, Less(x, y)))


def next_sibling(x: Var, y: Var) -> Formula:
    """``y`` is the immediate next sibling of ``x``."""
    z = fresh_var("m")
    return And(Less(x, y), Not(Exists(z, And(Less(x, z), Less(z, y)))))


def ancestor(x: Var, y: Var) -> Formula:
    """``x`` is a proper ancestor of ``y`` (MSO: every E-closed set
    containing the children of ``x`` contains ``y``)."""
    closed = fresh_set_var("Anc")
    u, v = fresh_var("u"), fresh_var("v")
    closure = Forall(
        u,
        Forall(
            v,
            Implies(And(Member(u, closed), Edge(u, v)), Member(v, closed)),
        ),
    )
    seeded = Forall(u, Implies(Edge(x, u), Member(u, closed)))
    return ForallSet(closed, Implies(And(seeded, closure), Member(y, closed)))


def true_formula() -> Formula:
    """A valid formula (``∀x x = x`` would add depth; use ``x = x``-free form)."""
    x = fresh_var("tt")
    return Forall(x, Equal(x, x))


def false_formula() -> Formula:
    """An unsatisfiable formula."""
    return Not(true_formula())
