"""Naive model-checking semantics for MSO — the reference oracle.

Evaluates formulas directly over :class:`~repro.trees.tree.Tree` structures
or strings by recursion on syntax, enumerating all elements for first-order
quantifiers and **all subsets** for set quantifiers.  Exponential in the
structure size per set quantifier — intended for small instances only,
where it serves as the ground truth against which every automaton
construction in the library is tested (this is how the expressiveness
theorems 3.9, 4.8 and 5.17 become executable claims).

Strings are modeled per §2.2: domain ``{1..n}``, ``<`` the position order.
Trees are modeled per §2.3: domain the node paths, ``E`` the child
relation, ``<`` the sibling order (children of a common parent only).
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import chain, combinations
from typing import Hashable

from ..trees.tree import Path, Tree
from .syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    Var,
)

Element = Hashable
Assignment = dict


class Structure:
    """A finite logical structure with the string/tree tree vocabulary."""

    def __init__(
        self,
        domain: Sequence[Element],
        labels: dict[Element, str],
        edges: frozenset[tuple[Element, Element]],
        less: frozenset[tuple[Element, Element]],
    ) -> None:
        self.domain = list(domain)
        self.labels = labels
        self.edges = edges
        self.less = less

    @staticmethod
    def from_string(word: Sequence[str]) -> "Structure":
        """The §2.2 structure of a string: positions 1..n, ``<`` the order."""
        domain = list(range(1, len(word) + 1))
        labels = {i: word[i - 1] for i in domain}
        less = frozenset(
            (i, j) for i in domain for j in domain if i < j
        )
        return Structure(domain, labels, frozenset(), less)

    @staticmethod
    def from_tree(tree: Tree) -> "Structure":
        """The §2.3 structure of a tree: ``E`` = child, ``<`` = sibling order."""
        domain: list[Path] = list(tree.nodes())
        labels = {path: tree.label_at(path) for path in domain}
        edges: set[tuple[Path, Path]] = set()
        less: set[tuple[Path, Path]] = set()
        for path in domain:
            arity = tree.arity_at(path)
            children = [path + (i,) for i in range(arity)]
            for child in children:
                edges.add((path, child))
            for i in range(arity):
                for j in range(i + 1, arity):
                    less.add((children[i], children[j]))
        return Structure(domain, labels, frozenset(edges), frozenset(less))


def _subsets(domain: Sequence[Element]):
    return chain.from_iterable(
        combinations(domain, size) for size in range(len(domain) + 1)
    )


def evaluate(
    structure: Structure,
    formula: Formula,
    assignment: Assignment | None = None,
) -> bool:
    """Does the structure satisfy the formula under the assignment?

    ``assignment`` maps :class:`Var` to domain elements and :class:`SetVar`
    to collections of domain elements; it must cover all free variables.
    """
    env: Assignment = dict(assignment or {})
    return _eval(structure, formula, env)


def _eval(structure: Structure, formula: Formula, env: Assignment) -> bool:
    if isinstance(formula, Label):
        return structure.labels[_lookup(env, formula.var)] == formula.label
    if isinstance(formula, Edge):
        return (
            _lookup(env, formula.parent),
            _lookup(env, formula.child),
        ) in structure.edges
    if isinstance(formula, Descendant):
        ancestor = _lookup(env, formula.ancestor)
        descendant = _lookup(env, formula.descendant)
        return (
            isinstance(ancestor, tuple)
            and isinstance(descendant, tuple)
            and len(ancestor) < len(descendant)
            and descendant[: len(ancestor)] == ancestor
        )
    if isinstance(formula, Less):
        return (
            _lookup(env, formula.left),
            _lookup(env, formula.right),
        ) in structure.less
    if isinstance(formula, Equal):
        return _lookup(env, formula.left) == _lookup(env, formula.right)
    if isinstance(formula, Member):
        return _lookup(env, formula.var) in env[formula.set_var]
    if isinstance(formula, Not):
        return not _eval(structure, formula.inner, env)
    if isinstance(formula, And):
        return _eval(structure, formula.left, env) and _eval(
            structure, formula.right, env
        )
    if isinstance(formula, Or):
        return _eval(structure, formula.left, env) or _eval(
            structure, formula.right, env
        )
    if isinstance(formula, Implies):
        return (not _eval(structure, formula.left, env)) or _eval(
            structure, formula.right, env
        )
    if isinstance(formula, Exists):
        return any(
            _eval(structure, formula.inner, {**env, formula.var: element})
            for element in structure.domain
        )
    if isinstance(formula, Forall):
        return all(
            _eval(structure, formula.inner, {**env, formula.var: element})
            for element in structure.domain
        )
    if isinstance(formula, ExistsSet):
        return any(
            _eval(structure, formula.inner, {**env, formula.set_var: frozenset(subset)})
            for subset in _subsets(structure.domain)
        )
    if isinstance(formula, ForallSet):
        return all(
            _eval(structure, formula.inner, {**env, formula.set_var: frozenset(subset)})
            for subset in _subsets(structure.domain)
        )
    raise TypeError(f"unknown formula node {formula!r}")


def _lookup(env: Assignment, var: Var) -> Element:
    if var not in env:
        raise KeyError(f"unbound variable {var!r}")
    return env[var]


def string_satisfies(word: Sequence[str], sentence: Formula) -> bool:
    """``w ⊨ φ`` for a sentence over the string vocabulary."""
    return evaluate(Structure.from_string(word), sentence)


def tree_satisfies(tree: Tree, sentence: Formula) -> bool:
    """``t ⊨ φ`` for a sentence over the tree vocabulary."""
    return evaluate(Structure.from_tree(tree), sentence)


def string_query(word: Sequence[str], formula: Formula, var: Var) -> frozenset[int]:
    """The unary query ``{i : w ⊨ φ[i]}`` (positions are 1-based)."""
    structure = Structure.from_string(word)
    return frozenset(
        position
        for position in structure.domain
        if _eval(structure, formula, {var: position})
    )


def tree_query(tree: Tree, formula: Formula, var: Var) -> frozenset[Path]:
    """The unary query ``{v : t ⊨ φ[v]}`` of Section 3's definition."""
    structure = Structure.from_tree(tree)
    return frozenset(
        path for path in structure.domain if _eval(structure, formula, {var: path})
    )
