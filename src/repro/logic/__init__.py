"""MSO over strings and trees: syntax, semantics, and automaton compilers."""

from .syntax import (
    And,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
    ancestor,
    first_sibling,
    fresh_set_var,
    fresh_var,
    last_sibling,
    leaf,
    next_sibling,
    root,
)
from .semantics import (
    Structure,
    string_query,
    string_satisfies,
    tree_query,
    tree_satisfies,
)
from .compile_strings import (
    compile_query,
    compile_sentence,
    evaluate_marked_query,
    mark_word,
)
from .compile_trees import compile_tree_query, compile_tree_sentence, mark

__all__ = [
    "And", "Edge", "Equal", "Exists", "ExistsSet", "Forall", "ForallSet",
    "Formula", "Implies", "Label", "Less", "Member", "Not", "Or", "SetVar",
    "Var", "ancestor", "first_sibling", "fresh_set_var", "fresh_var",
    "last_sibling", "leaf", "next_sibling", "root", "Structure",
    "string_query", "string_satisfies", "tree_query", "tree_satisfies",
    "compile_query", "compile_sentence", "evaluate_marked_query",
    "mark_word", "compile_tree_query", "compile_tree_sentence", "mark",
]
