"""Doner–Thatcher–Wright for unranked trees: MSO → tree automata (Thm 5.4).

The tree analogue of :mod:`repro.logic.compile_strings`: formulas over the
tree vocabulary (``E``, sibling ``<``, labels) are compiled to
:class:`~repro.unranked.nbta.UnrankedTreeAutomaton` over the extended
alphabet ``Σ × {0,1}^k``, one bit track per free variable.  Negation goes
through the BMW determinization of :mod:`repro.unranked.dbta` — the
exponential step, exactly as in the paper's Theorem 5.4.

Because ranked trees are a special case of unranked ones, the same
compiler serves the ranked Theorem 2.8 (restrict inputs to bounded rank).

* :func:`compile_tree_sentence` — sentence → NBTA^u over Σ.
* :func:`compile_tree_query` — unary φ(x) → *deterministic* automaton over
  the marked alphabet ``(σ, 0) / (σ, 1)`` (the §6 marking device), the
  canonical query intermediate representation consumed by the Theorem 4.8
  and 5.17 constructions.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Hashable

from .. import obs
from ..strings.nfa import NFA
from ..strings.regex import Atom, Regex, Star, concat_all, to_nfa, union_all
from ..unranked.dbta import DeterministicUnrankedAutomaton, determinize
from ..unranked.nbta import UnrankedTreeAutomaton
from .compile_strings import CompilationError
from .syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    Var,
)

Symbol = Hashable
Tracks = tuple


def extended_tree_alphabet(
    alphabet: frozenset[Symbol], tracks: Tracks
) -> frozenset[tuple]:
    """Letters ``(σ, bits)``, one bit per track."""
    letters: set[tuple] = set()

    def bit_vectors(length: int):
        if length == 0:
            yield ()
            return
        for rest in bit_vectors(length - 1):
            yield (0,) + rest
            yield (1,) + rest

    for sigma in alphabet:
        for bits in bit_vectors(len(tracks)):
            letters.add((sigma, bits))
    return frozenset(letters)


def _language(states: Sequence, expr: Regex) -> NFA:
    """Horizontal NFA over the given vertical states from a regex."""
    return to_nfa(expr, frozenset(states))


class _TreeCompiler:
    """Recursive MSO→NBTA^u compilation over the tree vocabulary.

    With ``optimize`` (the default), subformulas are hash-consed per
    (canonical key, track shape), validity automata are interned per
    track shape, and every determinization — the exponential step — is
    followed by the DBTA^u congruence-refinement minimizer of
    :mod:`repro.perf.minimize`.  ``optimize=False`` is the naive
    reference pipeline for the differential suite.
    """

    def __init__(self, alphabet: frozenset[Symbol], optimize: bool = True) -> None:
        self.alphabet = alphabet
        self.optimize = optimize
        self._memo: dict[tuple, UnrankedTreeAutomaton] = {}
        self._validity_memo: dict[tuple, UnrankedTreeAutomaton] = {}

    def _determinize(self, nbta: UnrankedTreeAutomaton):
        """BMW determinization, minimized when optimizing.

        The minimized quotient is relabeled to small integer states so
        chained stages never compound frozenset state-name depth (see
        :func:`repro.perf.minimize.canonical_relabeled_dbta`).
        """
        automaton = determinize(nbta)
        if not self.optimize:
            return automaton
        from ..perf.minimize import canonical_relabeled_dbta, minimize_dbta

        return canonical_relabeled_dbta(minimize_dbta(automaton))

    # -- validity -------------------------------------------------------

    def _validity_interned(self, tracks: Tracks) -> UnrankedTreeAutomaton:
        """``_validity`` interned per FO-track mask (cf. the string
        compiler's ``_validity_nfa`` cache), counted under
        ``compile.validity_hits`` / ``_misses``."""
        key = tuple(isinstance(variable, Var) for variable in tracks)
        sink = obs.SINK
        interned = self._validity_memo.get(key)
        if interned is not None:
            if sink.enabled:
                sink.incr("compile.validity_hits")
            return interned
        if sink.enabled:
            sink.incr("compile.validity_misses")
        built = self._validity(tracks)
        self._validity_memo[key] = built
        return built

    def _validity(self, tracks: Tracks) -> UnrankedTreeAutomaton:
        """Exactly one marked node per first-order track.

        Bottom-up: the state counts, per FO track, how many marks the
        subtree holds (0, 1, or "many" = dead).  Only the 0/1 product
        states are kept; overflow kills the run.
        """
        alphabet = extended_tree_alphabet(self.alphabet, tracks)
        fo_indices = [
            i for i, variable in enumerate(tracks) if isinstance(variable, Var)
        ]
        # Vertical states: tuples of counts (0/1), one entry per FO track.
        def tuples(length: int):
            if length == 0:
                yield ()
                return
            for rest in tuples(length - 1):
                yield (0,) + rest
                yield (1,) + rest

        states = frozenset(tuples(len(fo_indices)))
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            _sigma, bits = letter
            own = tuple(bits[i] for i in fo_indices)
            for total in states:
                # Children contributions must sum with `own` to `total`
                # without exceeding 1 per component: the horizontal
                # language is a shuffle of at most one "1" per needed
                # component.  Encode as a regex over child state tuples.
                needed = []
                possible = True
                for o, t in zip(own, total):
                    if o > t:
                        possible = False
                        break
                    needed.append(t - o)
                if not possible:
                    continue
                horizontal[(total, letter)] = _counting_language(states, tuple(needed))
        accepting = frozenset({tuple(1 for _ in fo_indices)}) if fo_indices else states
        return UnrankedTreeAutomaton(states, alphabet, accepting, horizontal)

    # -- atoms ----------------------------------------------------------

    def _atom(self, formula: Formula, tracks: Tracks) -> UnrankedTreeAutomaton:
        alphabet = extended_tree_alphabet(self.alphabet, tracks)
        index = {variable: i for i, variable in enumerate(tracks)}

        if isinstance(formula, Label):
            return self._atom_label(alphabet, index[formula.var], formula.label)
        if isinstance(formula, Edge):
            return self._atom_edge(
                alphabet, index[formula.parent], index[formula.child]
            )
        if isinstance(formula, Descendant):
            return self._atom_descendant(
                alphabet, index[formula.ancestor], index[formula.descendant]
            )
        if isinstance(formula, Less):
            return self._atom_less(alphabet, index[formula.left], index[formula.right])
        if isinstance(formula, Equal):
            return self._atom_equal(alphabet, index[formula.left], index[formula.right])
        if isinstance(formula, Member):
            return self._atom_member(
                alphabet, index[formula.var], index[formula.set_var]
            )
        raise CompilationError(f"not an atom: {formula!r}")

    def _atom_label(self, alphabet, i: int, label: Symbol) -> UnrankedTreeAutomaton:
        """The x-marked node carries the label.  States: c (no mark), d (done)."""
        states = frozenset({"c", "d"})
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            sigma, bits = letter
            if bits[i]:
                if sigma == label:
                    horizontal[("d", letter)] = _language(states, Star(Atom("c")))
            else:
                horizontal[("c", letter)] = _language(states, Star(Atom("c")))
                horizontal[("d", letter)] = _language(
                    states, _one_of(("d",), padding="c")
                )
        return UnrankedTreeAutomaton(states, alphabet, frozenset({"d"}), horizontal)

    def _atom_edge(self, alphabet, i: int, j: int) -> UnrankedTreeAutomaton:
        """``E(x, y)``: the y-marked node is a child of the x-marked node.

        States: c (no relevant mark), y (root is the y-marked node),
        d (edge established).
        """
        states = frozenset({"c", "y", "d"})
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            _sigma, bits = letter
            x_bit, y_bit = bits[i], bits[j]
            if x_bit and y_bit:
                continue  # x = y cannot satisfy E(x, y)
            if x_bit:
                horizontal[("d", letter)] = _language(states, _one_of(("y",), "c"))
            elif y_bit:
                horizontal[("y", letter)] = _language(states, Star(Atom("c")))
            else:
                horizontal[("c", letter)] = _language(states, Star(Atom("c")))
                horizontal[("d", letter)] = _language(states, _one_of(("d",), "c"))
                # an unmatched y under a non-x parent dies (no transition)
        return UnrankedTreeAutomaton(states, alphabet, frozenset({"d"}), horizontal)

    def _atom_descendant(self, alphabet, i: int, j: int) -> UnrankedTreeAutomaton:
        """``Desc(x, y)``: the y-marked node is a proper descendant of the
        x-marked node.

        States: c (no relevant mark below), y (the y-mark is in the
        subtree, the x-mark not yet above it), d (established).
        """
        states = frozenset({"c", "y", "d"})
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            _sigma, bits = letter
            x_bit, y_bit = bits[i], bits[j]
            if x_bit and y_bit:
                continue  # x = y is not a proper descendant
            if x_bit:
                # x's subtree must contain the pending y-mark.
                horizontal[("d", letter)] = _language(states, _one_of(("y",), "c"))
            elif y_bit:
                horizontal[("y", letter)] = _language(states, Star(Atom("c")))
            else:
                horizontal[("c", letter)] = _language(states, Star(Atom("c")))
                # the y-mark bubbles up through unmarked ancestors ...
                horizontal[("y", letter)] = _language(states, _one_of(("y",), "c"))
                # ... and once matched, d bubbles to the root.
                horizontal[("d", letter)] = _language(states, _one_of(("d",), "c"))
        return UnrankedTreeAutomaton(states, alphabet, frozenset({"d"}), horizontal)

    def _atom_less(self, alphabet, i: int, j: int) -> UnrankedTreeAutomaton:
        """Sibling order: x and y are children of one node, x before y.

        States: c, x (root x-marked), y (root y-marked), d (established).
        """
        states = frozenset({"c", "x", "y", "d"})
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            _sigma, bits = letter
            x_bit, y_bit = bits[i], bits[j]
            if x_bit and y_bit:
                continue  # same node: not <
            if x_bit:
                horizontal[("x", letter)] = _language(states, Star(Atom("c")))
            elif y_bit:
                horizontal[("y", letter)] = _language(states, Star(Atom("c")))
            else:
                horizontal[("c", letter)] = _language(states, Star(Atom("c")))
                horizontal[("d", letter)] = _language(
                    states,
                    union_all(
                        _one_of(("d",), "c"),
                        concat_all(
                            Star(Atom("c")),
                            Atom("x"),
                            Star(Atom("c")),
                            Atom("y"),
                            Star(Atom("c")),
                        ),
                    ),
                )
        return UnrankedTreeAutomaton(states, alphabet, frozenset({"d"}), horizontal)

    def _atom_equal(self, alphabet, i: int, j: int) -> UnrankedTreeAutomaton:
        """``x = y``: the two marks coincide."""
        states = frozenset({"c", "d"})
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            _sigma, bits = letter
            if bits[i] != bits[j]:
                continue
            if bits[i]:
                horizontal[("d", letter)] = _language(states, Star(Atom("c")))
            else:
                horizontal[("c", letter)] = _language(states, Star(Atom("c")))
                horizontal[("d", letter)] = _language(states, _one_of(("d",), "c"))
        return UnrankedTreeAutomaton(states, alphabet, frozenset({"d"}), horizontal)

    def _atom_member(self, alphabet, i: int, j: int) -> UnrankedTreeAutomaton:
        """``X(x)``: the x-marked node carries a 1 in the X track."""
        states = frozenset({"c", "d"})
        horizontal: dict[tuple, NFA] = {}
        for letter in alphabet:
            _sigma, bits = letter
            if bits[i]:
                if bits[j]:
                    horizontal[("d", letter)] = _language(states, Star(Atom("c")))
            else:
                horizontal[("c", letter)] = _language(states, Star(Atom("c")))
                horizontal[("d", letter)] = _language(states, _one_of(("d",), "c"))
        return UnrankedTreeAutomaton(states, alphabet, frozenset({"d"}), horizontal)

    # -- recursion -------------------------------------------------------

    def compile(self, formula: Formula, tracks: Tracks) -> UnrankedTreeAutomaton:
        """NBTA^u over the extended alphabet; FO-track validity enforced.

        When optimizing, results are hash-consed per (canonical formula
        key, track shape), so α-equivalent subformulas compile once.
        """
        if isinstance(formula, Implies):
            return self.compile(Or(Not(formula.left), formula.right), tracks)
        if isinstance(formula, Forall):
            return self.compile(
                Not(Exists(formula.var, Not(formula.inner))), tracks
            )
        if isinstance(formula, ForallSet):
            return self.compile(
                Not(ExistsSet(formula.set_var, Not(formula.inner))), tracks
            )
        if not self.optimize:
            return self._compile(formula, tracks)
        from ..perf.compile import canonical_key

        key = (
            canonical_key(formula, tracks),
            tuple(isinstance(variable, Var) for variable in tracks),
        )
        sink = obs.SINK
        memoized = self._memo.get(key)
        if memoized is not None:
            if sink.enabled:
                sink.incr("compile.subformula_hits")
            return memoized
        if sink.enabled:
            sink.incr("compile.subformula_misses")
        result = self._compile(formula, tracks)
        self._memo[key] = result
        return result

    def _compile(self, formula: Formula, tracks: Tracks) -> UnrankedTreeAutomaton:
        """One connective's construction (recursion re-enters ``compile``)."""
        if isinstance(formula, (Label, Edge, Descendant, Less, Equal, Member)):
            return (
                self._atom(formula, tracks)
                .intersection(self._validity_interned(tracks))
                .trimmed()
            )

        if isinstance(formula, Not):
            inner = self._determinize(self.compile(formula.inner, tracks))
            return (
                inner.complement()
                .to_nbta()
                .intersection(self._validity_interned(tracks))
                .trimmed()
            )

        if isinstance(formula, And):
            return (
                self.compile(formula.left, tracks)
                .intersection(self.compile(formula.right, tracks))
                .trimmed()
            )

        if isinstance(formula, Or):
            return (
                self.compile(formula.left, tracks)
                .union(self.compile(formula.right, tracks))
                .trimmed()
            )

        if isinstance(formula, Implies):
            return self.compile(Or(Not(formula.left), formula.right), tracks)

        if isinstance(formula, (Exists, ExistsSet)):
            variable = formula.var if isinstance(formula, Exists) else formula.set_var
            if variable in tracks:
                raise CompilationError(f"variable {variable!r} shadowed")
            inner = self.compile(formula.inner, tracks + (variable,))
            mapping = {
                (sigma, bits): (sigma, bits[:-1]) for (sigma, bits) in inner.alphabet
            }
            return inner.relabel(mapping).trimmed()

        if isinstance(formula, Forall):
            return self.compile(Not(Exists(formula.var, Not(formula.inner))), tracks)

        if isinstance(formula, ForallSet):
            return self.compile(
                Not(ExistsSet(formula.set_var, Not(formula.inner))), tracks
            )

        raise CompilationError(f"unknown formula node {formula!r}")


def _one_of(symbols: tuple, padding) -> Regex:
    """``padding* s padding*`` summed over the given symbols."""
    return union_all(
        *(
            concat_all(Star(Atom(padding)), Atom(symbol), Star(Atom(padding)))
            for symbol in symbols
        )
    )


def _counting_language(states: frozenset, needed: tuple) -> NFA:
    """Children words whose component-wise mark counts equal ``needed``.

    Child letters are count tuples; a letter may contribute at most what is
    still needed in each component.  Implemented as a DFA whose states are
    the remaining-needs tuples, then viewed as an NFA.
    """
    def sub(remaining: tuple, letter: tuple) -> tuple | None:
        out = []
        for r, l in zip(remaining, letter):
            if l > r:
                return None
            out.append(r - l)
        return tuple(out)

    def tuples_leq(bound: tuple):
        if not bound:
            yield ()
            return
        for rest in tuples_leq(bound[1:]):
            for value in range(bound[0] + 1):
                yield (value,) + rest

    dfa_states = set(tuples_leq(needed))
    transitions: dict[tuple, frozenset] = {}
    for remaining in dfa_states:
        for letter in states:
            target = sub(remaining, letter)
            if target is not None:
                transitions[(remaining, letter)] = frozenset({target})
    zero = tuple(0 for _ in needed)
    return NFA.build(dfa_states, states, transitions, {needed}, {zero})


def _check_tree_engine(engine: str) -> bool:
    """True for the optimized pipeline, False for naive; else raise."""
    if engine not in ("optimized", "naive"):
        raise CompilationError(f"unknown compile engine {engine!r}")
    return engine == "optimized"


def compile_tree_nbta(
    formula: Formula,
    tracks: Tracks,
    alphabet: Sequence[Symbol],
    engine: str = "optimized",
) -> UnrankedTreeAutomaton:
    """Compile with explicit tracks (advanced use; see the two wrappers)."""
    optimize = _check_tree_engine(engine)
    return _TreeCompiler(frozenset(alphabet), optimize=optimize).compile(
        formula, tracks
    )


def _build_tree_sentence(
    sentence: Formula, alphabet: Sequence[Symbol], optimize: bool
) -> UnrankedTreeAutomaton:
    """The uncached sentence compilation (strip the empty bits track)."""
    compiler = _TreeCompiler(frozenset(alphabet), optimize=optimize)
    extended = compiler.compile(sentence, ())
    mapping = {(sigma, bits): sigma for (sigma, bits) in extended.alphabet}
    return extended.relabel(mapping)


def compile_tree_sentence(
    sentence: Formula, alphabet: Sequence[Symbol], engine: str = "optimized"
) -> UnrankedTreeAutomaton:
    """NBTA^u over Σ accepting exactly the trees satisfying the sentence.

    ``engine="optimized"`` (default) hash-conses subformulas, minimizes
    every determinization, and serves repeats from the content-addressed
    cache of :mod:`repro.perf.compile`; ``engine="naive"`` is the
    reference construction.
    """
    if sentence.free_vars() or sentence.free_set_vars():
        raise CompilationError("a sentence may not have free variables")
    if not _check_tree_engine(engine):
        return _build_tree_sentence(sentence, alphabet, optimize=False)
    from ..perf.compile import cached

    return cached(
        "tree-sentence",
        sentence,
        (),
        frozenset(alphabet),
        lambda: _build_tree_sentence(sentence, alphabet, optimize=True),
    )


def mark(label: Symbol, bit: int):
    """The marked-alphabet letter constructor used across the library."""
    return (label, bit)


def compile_tree_query(
    formula: Formula,
    var: Var,
    alphabet: Sequence[Symbol],
    engine: str = "optimized",
) -> DeterministicUnrankedAutomaton:
    """Deterministic marked-alphabet automaton for the unary query φ(x).

    The result runs over labels ``(σ, 0) / (σ, 1)`` and accepts a tree iff
    exactly one node is marked and the formula holds of it — the canonical
    query representation fed to the Theorem 4.8 / 5.17 constructions and
    to :func:`repro.unranked.dbta.evaluate_marked_query`.  With the
    default ``engine="optimized"`` the result is congruence-minimized
    (:func:`repro.perf.minimize.minimize_dbta`) and cached by canonical
    formula digest; ``engine="naive"`` is the reference construction.
    """
    free = formula.free_vars()
    if not free <= {var} or formula.free_set_vars():
        raise CompilationError(f"free variables {free!r} must be exactly {{{var!r}}}")
    if not _check_tree_engine(engine):
        return _build_tree_query(formula, var, alphabet, optimize=False)
    from ..perf.compile import cached

    return cached(
        "tree-query",
        formula,
        (var,),
        frozenset(alphabet),
        lambda: _build_tree_query(formula, var, alphabet, optimize=True),
    )


def _build_tree_query(
    formula: Formula, var: Var, alphabet: Sequence[Symbol], optimize: bool
) -> DeterministicUnrankedAutomaton:
    """The uncached marked-alphabet query compilation."""
    compiler = _TreeCompiler(frozenset(alphabet), optimize=optimize)
    extended = compiler.compile(formula, (var,))
    mapping = {
        (sigma, bits): (sigma, bits[0]) for (sigma, bits) in extended.alphabet
    }
    return compiler._determinize(extended.relabel(mapping))
