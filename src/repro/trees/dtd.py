"""DTDs as extended context-free grammars, with automaton validation.

The paper's opening abstraction (Figures 1–4): XML documents are unranked
trees, DTDs are extended context-free grammars (regular expressions over
element names on production right-hand sides), and *tree automata can
easily determine whether the input tree is a derivation tree of a given
(E)CFG* — which is exactly how we validate: a DTD compiles to a
:class:`~repro.unranked.nbta.UnrankedTreeAutomaton` whose states are the
element names.

The concrete DTD syntax supported is the classical fragment the paper's
Figure 2 uses::

    <!ELEMENT bibliography (book | article)+>
    <!ELEMENT article (author+, title, journal, year)>
    <!ELEMENT author PCDATA>

(``#PCDATA`` is also accepted; ``EMPTY`` means no content; ``ANY`` allows
arbitrary children.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..strings.nfa import NFA
from ..strings.regex import Regex, parse_regex, symbols_of, to_nfa
from ..trees.tree import Path, Tree
from ..unranked.nbta import UnrankedTreeAutomaton, all_words_nfa, empty_word_nfa
from .xml import TEXT_LABEL


class DTDError(ValueError):
    """Raised for malformed DTD declarations."""


#: Content-model kinds.
PCDATA = "PCDATA"
EMPTY = "EMPTY"
ANY = "ANY"


@dataclass(frozen=True)
class ElementDeclaration:
    """One ``<!ELEMENT name content>`` declaration."""

    name: str
    kind: str  # "regex" | PCDATA | EMPTY | ANY
    content: Regex | None = None


@dataclass(frozen=True)
class DTD:
    """A document type definition: element declarations plus a root name.

    The root defaults to the first declared element (Figure 2's
    convention: ``bibliography`` comes first).
    """

    declarations: dict[str, ElementDeclaration]
    root: str

    def __post_init__(self) -> None:
        if self.root not in self.declarations:
            raise DTDError(f"root element {self.root!r} is not declared")

    @property
    def element_names(self) -> frozenset[str]:
        """All declared element names."""
        return frozenset(self.declarations)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def to_tree_automaton(self) -> UnrankedTreeAutomaton:
        """The NBTA^u recognizing exactly the derivation trees.

        States are the element names (plus ``#text``); the horizontal
        language of ``(name, name)`` is the declared content model.  Being
        a derivation tree of the ECFG = being accepted, the equivalence
        the paper invokes in the introduction.
        """
        states = set(self.element_names) | {TEXT_LABEL}
        alphabet = frozenset(states)
        horizontal: dict[tuple, NFA] = {
            (TEXT_LABEL, TEXT_LABEL): empty_word_nfa(states)
        }
        for name, declaration in self.declarations.items():
            if declaration.kind == EMPTY:
                horizontal[(name, name)] = empty_word_nfa(states)
            elif declaration.kind == PCDATA:
                # Any number of text chunks.
                horizontal[(name, name)] = to_nfa(
                    parse_regex(f"{TEXT_LABEL}*"), frozenset(states)
                )
            elif declaration.kind == ANY:
                horizontal[(name, name)] = all_words_nfa(states)
            else:
                assert declaration.content is not None
                horizontal[(name, name)] = to_nfa(
                    declaration.content, frozenset(states)
                )
        return UnrankedTreeAutomaton(
            frozenset(states),
            alphabet,
            frozenset({self.root}),
            horizontal,
        )

    def validates(self, tree: Tree) -> bool:
        """Is the tree a derivation tree of this DTD?"""
        if not tree.labels() <= self.element_names | {TEXT_LABEL}:
            return False
        return self.to_tree_automaton().accepts(tree)

    def violations(self, tree: Tree) -> list[tuple[Path, str]]:
        """Per-node diagnostics (empty list ⟺ valid)."""
        problems: list[tuple[Path, str]] = []
        if tree.label != self.root:
            problems.append(((), f"root is {tree.label!r}, expected {self.root!r}"))
        for path, label in tree.nodes_with_labels():
            if label == TEXT_LABEL:
                if tree.arity_at(path):
                    problems.append((path, "text nodes cannot have children"))
                continue
            declaration = self.declarations.get(label)
            if declaration is None:
                problems.append((path, f"undeclared element {label!r}"))
                continue
            children = [
                tree.label_at(path + (i,)) for i in range(tree.arity_at(path))
            ]
            if not self._content_allows(declaration, children):
                problems.append(
                    (path, f"content {children!r} not allowed for {label!r}")
                )
        return problems

    def _content_allows(
        self, declaration: ElementDeclaration, children: list[str]
    ) -> bool:
        if declaration.kind == EMPTY:
            return not children
        if declaration.kind == PCDATA:
            return all(child == TEXT_LABEL for child in children)
        if declaration.kind == ANY:
            return True
        assert declaration.content is not None
        return to_nfa(
            declaration.content,
            symbols_of(declaration.content) | {TEXT_LABEL},
        ).accepts(children)


_DECLARATION = re.compile(r"<!ELEMENT\s+([\w.:-]+)\s+(.*?)>", re.DOTALL)


def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse ``<!ELEMENT ...>`` declarations into a :class:`DTD`.

    >>> dtd = parse_dtd('<!ELEMENT r (a, b*)> <!ELEMENT a PCDATA> <!ELEMENT b EMPTY>')
    >>> sorted(dtd.element_names)
    ['a', 'b', 'r']
    """
    declarations: dict[str, ElementDeclaration] = {}
    order: list[str] = []
    for match in _DECLARATION.finditer(text):
        name, body = match.group(1), match.group(2).strip()
        if name in declarations:
            raise DTDError(f"duplicate declaration for {name!r}")
        normalized = body.replace("#PCDATA", "PCDATA")
        if normalized == "PCDATA" or normalized == "(PCDATA)":
            declaration = ElementDeclaration(name, PCDATA)
        elif normalized == "EMPTY":
            declaration = ElementDeclaration(name, EMPTY)
        elif normalized == "ANY":
            declaration = ElementDeclaration(name, ANY)
        else:
            declaration = ElementDeclaration(name, "regex", parse_regex(normalized))
        declarations[name] = declaration
        order.append(name)
    if not declarations:
        raise DTDError("no element declarations found")
    return DTD(declarations, root or order[0])


#: The Figure 2 DTD, verbatim.
BIBLIOGRAPHY_DTD = """\
<!ELEMENT bibliography (book | article)+>
<!ELEMENT article (author+, title, journal, year)>
<!ELEMENT book (author+, title, publisher, year)>
<!ELEMENT author PCDATA>
<!ELEMENT title PCDATA>
<!ELEMENT journal PCDATA>
<!ELEMENT year PCDATA>
<!ELEMENT publisher PCDATA>
"""
