"""Ordered, labeled trees — the data model shared by every automaton.

The paper (Section 2.3) works with :math:`\\Sigma`-trees: finite, ordered
trees whose every node carries a label from a finite alphabet.  Trees are
*ranked* when the number of children of every node is bounded by a fixed
constant ``m`` and *unranked* otherwise.  This module provides a single
:class:`Tree` class used for both; rank constraints are checked by the
automata that require them.

Nodes are addressed by *Dewey paths*: the root is the empty tuple ``()``,
and the ``i``-th child (0-indexed) of the node at path ``p`` is
``p + (i,)``.  The paper writes ``vi`` for the ``i``-th child of ``v`` with
1-indexing; path component ``i - 1`` corresponds to the paper's ``vi``.

Example
-------
>>> t = Tree.parse("a(b, c(d, e))")
>>> t.label_at(())
'a'
>>> t.label_at((1, 0))
'd'
>>> sorted(t.leaves())
[(0,), (1, 0), (1, 1)]
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Callable

#: A node address: the sequence of child indices from the root.
Path = tuple[int, ...]

#: Type of node labels.  Any hashable value works; strings are typical.
Label = str


class TreeError(ValueError):
    """Raised for malformed trees or invalid node addresses."""


class Tree:
    """A finite ordered tree with labeled nodes.

    Instances are immutable once constructed: the children list is copied
    and never mutated, which lets automaton runs safely share subtrees.

    Parameters
    ----------
    label:
        The label of the root node.
    children:
        The ordered child subtrees (possibly empty).
    """

    __slots__ = ("label", "children", "_size", "_height")

    def __init__(self, label: Label, children: Sequence["Tree"] = ()) -> None:
        self.label = label
        self.children: tuple[Tree, ...] = tuple(children)
        for child in self.children:
            if not isinstance(child, Tree):
                raise TreeError(f"child {child!r} is not a Tree")
        self._size = 1 + sum(c._size for c in self.children)
        self._height = (
            0 if not self.children else 1 + max(c._height for c in self.children)
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def leaf(label: Label) -> "Tree":
        """Return the single-node tree ``t(σ)`` of the paper."""
        return Tree(label)

    @staticmethod
    def parse(text: str) -> "Tree":
        """Parse the compact term syntax ``a(b, c(d))``.

        Labels are runs of characters other than ``(``, ``)``, ``,`` and
        whitespace.  ``a`` alone denotes a leaf; ``a()`` is also a leaf.

        >>> Tree.parse("and(0, or(1, 0))").size
        5
        """
        pos = 0

        def skip_ws() -> None:
            nonlocal pos
            while pos < len(text) and text[pos].isspace():
                pos += 1

        def parse_label() -> str:
            nonlocal pos
            start = pos
            while pos < len(text) and text[pos] not in "(),]" and not text[pos].isspace():
                pos += 1
            if pos == start:
                raise TreeError(f"expected a label at position {start} of {text!r}")
            return text[start:pos]

        def parse_tree() -> Tree:
            nonlocal pos
            skip_ws()
            label = parse_label()
            skip_ws()
            children: list[Tree] = []
            if pos < len(text) and text[pos] == "(":
                pos += 1
                skip_ws()
                if pos < len(text) and text[pos] == ")":
                    pos += 1
                else:
                    while True:
                        children.append(parse_tree())
                        skip_ws()
                        if pos < len(text) and text[pos] == ",":
                            pos += 1
                            continue
                        if pos < len(text) and text[pos] == ")":
                            pos += 1
                            break
                        raise TreeError(
                            f"expected ',' or ')' at position {pos} of {text!r}"
                        )
            return Tree(label, children)

        result = parse_tree()
        skip_ws()
        if pos != len(text):
            raise TreeError(f"trailing input at position {pos} of {text!r}")
        return result

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes, ``|Nodes(t)|``."""
        return self._size

    @property
    def height(self) -> int:
        """Number of edges on the longest root-to-leaf path (0 for a leaf)."""
        return self._height

    @property
    def arity(self) -> int:
        """Number of children of the root."""
        return len(self.children)

    def rank(self) -> int:
        """The maximum arity over all nodes (0 for a single leaf)."""
        best = len(self.children)
        for child in self.children:
            best = max(best, child.rank())
        return best

    def is_ranked(self, m: int) -> bool:
        """True iff every node has at most ``m`` children."""
        return self.rank() <= m

    # ------------------------------------------------------------------
    # Node addressing
    # ------------------------------------------------------------------

    def subtree(self, path: Path) -> "Tree":
        """Return ``t_v``, the subtree rooted at ``path``.

        >>> Tree.parse("a(b, c(d))").subtree((1,)).label
        'c'
        """
        node = self
        for index in path:
            if not 0 <= index < len(node.children):
                raise TreeError(f"no node at path {path!r}")
            node = node.children[index]
        return node

    def label_at(self, path: Path) -> Label:
        """The label ``lab_t(v)`` of the node at ``path``."""
        return self.subtree(path).label

    def arity_at(self, path: Path) -> int:
        """The number of children of the node at ``path``."""
        return len(self.subtree(path).children)

    def has_node(self, path: Path) -> bool:
        """True iff ``path`` addresses a node of this tree."""
        node = self
        for index in path:
            if not 0 <= index < len(node.children):
                return False
            node = node.children[index]
        return True

    def envelope(self, path: Path) -> "Tree":
        """Return the *envelope* of ``t`` at ``v``.

        The envelope (paper notation: ``t̄_v``) is the tree obtained by
        deleting the subtrees rooted at the *children* of ``v``; note that
        ``v`` itself remains, as a leaf of the envelope.

        >>> Tree.parse("a(b(x, y), c)").envelope((0,)).size
        3
        """

        def rebuild(node: Tree, remaining: Path) -> Tree:
            if not remaining:
                return Tree(node.label)
            index = remaining[0]
            if not 0 <= index < len(node.children):
                raise TreeError(f"no node at path {path!r}")
            children = list(node.children)
            children[index] = rebuild(children[index], remaining[1:])
            return Tree(node.label, children)

        return rebuild(self, path)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[Path]:
        """All node paths in document (pre-)order.

        >>> list(Tree.parse("a(b, c)").nodes())
        [(), (0,), (1,)]
        """
        stack: list[tuple[Path, Tree]] = [((), self)]
        while stack:
            path, node = stack.pop()
            yield path
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path + (index,), node.children[index]))

    def nodes_with_labels(self) -> Iterator[tuple[Path, Label]]:
        """Pairs ``(path, label)`` in document order."""
        stack: list[tuple[Path, Tree]] = [((), self)]
        while stack:
            path, node = stack.pop()
            yield path, node.label
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path + (index,), node.children[index]))

    def leaves(self) -> Iterator[Path]:
        """Paths of all leaves, in document order."""
        for path, _ in self.nodes_with_labels():
            if not self.subtree(path).children:
                yield path

    def nodes_by_depth(self) -> Iterator[list[Path]]:
        """Yield the *levels* of the tree: lists of paths at depth 0, 1, ...

        This mirrors the outer loop of the Figure 5 / Figure 6 algorithms,
        which process all vertices of each level in parallel.
        """
        level: list[tuple[Path, Tree]] = [((), self)]
        while level:
            yield [path for path, _ in level]
            nxt: list[tuple[Path, Tree]] = []
            for path, node in level:
                for index, child in enumerate(node.children):
                    nxt.append((path + (index,), child))
            level = nxt

    def postorder(self) -> Iterator[Path]:
        """All node paths in bottom-up (post-)order."""
        out: list[Path] = []
        stack: list[tuple[Path, Tree]] = [((), self)]
        while stack:
            path, node = stack.pop()
            out.append(path)
            for index, child in enumerate(node.children):
                stack.append((path + (index,), child))
        return reversed(out)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    @staticmethod
    def parent(path: Path) -> Path:
        """The parent path of a non-root path."""
        if not path:
            raise TreeError("the root has no parent")
        return path[:-1]

    @staticmethod
    def depth(path: Path) -> int:
        """Number of edges from the root (root has depth 0)."""
        return len(path)

    def labels(self) -> frozenset[Label]:
        """The set of labels occurring in the tree."""
        return frozenset(label for _, label in self.nodes_with_labels())

    def relabel(self, mapping: Callable[[Path, Label], Label]) -> "Tree":
        """Return a tree of identical shape with labels ``mapping(path, label)``."""

        def rebuild(node: Tree, path: Path) -> Tree:
            children = [
                rebuild(child, path + (index,))
                for index, child in enumerate(node.children)
            ]
            return Tree(mapping(path, node.label), children)

        return rebuild(self, ())

    def mark(self, marked: Path) -> "Tree":
        """Return the tree over ``Σ ∪ (Σ × {1})`` marking one node.

        This is the marked-alphabet encoding used in the Theorem 6.3 and
        Theorem 6.4 reductions: the node at ``marked`` gets label
        ``(label, 1)`` (rendered as ``label*``) and all others keep theirs.
        """
        if not self.has_node(marked):
            raise TreeError(f"no node at path {marked!r}")
        return self.relabel(
            lambda path, label: label + "*" if path == marked else label
        )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        if self.label != other.label or len(self.children) != len(other.children):
            return False
        return all(a == b for a, b in zip(self.children, other.children))

    def __hash__(self) -> int:
        return hash((self.label, self.children))

    def __repr__(self) -> str:
        return f"Tree.parse({str(self)!r})"

    def __str__(self) -> str:
        if not self.children:
            return str(self.label)
        inner = ", ".join(str(child) for child in self.children)
        return f"{self.label}({inner})"


def sigma_tree(label: Label, *children: Tree) -> Tree:
    """The ``σ(t_1, ..., t_n)`` constructor notation of Section 2.3."""
    return Tree(label, children)


def document_order(paths: Sequence[Path]) -> list[Path]:
    """Sort paths in document (pre-)order."""
    return sorted(paths)


def is_ancestor(ancestor: Path, descendant: Path) -> bool:
    """True iff ``ancestor`` is a proper ancestor of ``descendant``."""
    return len(ancestor) < len(descendant) and descendant[: len(ancestor)] == ancestor
