"""Tree substrate: Σ-trees, generators, XML and DTD abstraction (§1, §2.3)."""

from .tree import Path, Tree, TreeError, is_ancestor, sigma_tree
from .generators import (
    complete_binary_tree,
    enumerate_trees,
    evaluate_circuit,
    flat_tree,
    monadic_chain,
    random_binary_circuit,
    random_tree,
    random_unranked_circuit,
)
from .xml import (
    BIBLIOGRAPHY_EXAMPLE,
    XMLElement,
    XMLError,
    make_bibliography,
    parse_document,
    parse_to_structure_tree,
    parse_to_tree,
    serialize,
    to_structure_tree,
    to_tree,
)

__all__ = [
    "Path",
    "Tree",
    "TreeError",
    "is_ancestor",
    "sigma_tree",
    "complete_binary_tree",
    "enumerate_trees",
    "evaluate_circuit",
    "flat_tree",
    "monadic_chain",
    "random_binary_circuit",
    "random_tree",
    "random_unranked_circuit",
    "BIBLIOGRAPHY_EXAMPLE",
    "XMLElement",
    "XMLError",
    "make_bibliography",
    "parse_document",
    "parse_to_structure_tree",
    "parse_to_tree",
    "serialize",
    "to_structure_tree",
    "to_tree",
]
