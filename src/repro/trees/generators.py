"""Deterministic workload generators for trees.

Benchmarks and property tests need reproducible families of trees: complete
binary trees (the Figure 5 setting), Boolean circuits (Examples 4.2, 4.4 and
5.9), flat wide trees (the Proposition 5.10 separation), and random ranked /
unranked trees.  All generators take an explicit :class:`random.Random` (or a
seed) so every experiment is repeatable.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .tree import Tree


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def complete_binary_tree(height: int, internal: str = "a", leaf: str = "b") -> Tree:
    """A complete binary tree of the given height.

    >>> complete_binary_tree(2).size
    7
    """
    if height < 0:
        raise ValueError("height must be >= 0")
    if height == 0:
        return Tree(leaf)
    child = complete_binary_tree(height - 1, internal, leaf)
    return Tree(internal, [child, child])


def random_binary_circuit(height: int, seed_or_rng: int | random.Random = 0) -> Tree:
    """A full binary AND/OR circuit with random gate choices and 0/1 leaves.

    This is the input family of Examples 4.2 and 4.4: internal nodes are
    labeled ``AND``/``OR`` with exactly two children; leaves are ``0``/``1``.
    """
    rng = _rng(seed_or_rng)

    def build(h: int) -> Tree:
        if h == 0:
            return Tree(rng.choice("01"))
        return Tree(rng.choice(["AND", "OR"]), [build(h - 1), build(h - 1)])

    return build(height)


def random_unranked_circuit(
    depth: int,
    max_arity: int = 4,
    seed_or_rng: int | random.Random = 0,
) -> Tree:
    """An AND/OR circuit where gates have between 1 and ``max_arity`` inputs.

    The input family of Example 5.9 (QA^u over unranked circuit trees).
    """
    rng = _rng(seed_or_rng)

    def build(d: int) -> Tree:
        if d == 0:
            return Tree(rng.choice("01"))
        arity = rng.randint(1, max_arity)
        return Tree(rng.choice(["AND", "OR"]), [build(d - 1) for _ in range(arity)])

    return build(depth)


def evaluate_circuit(tree: Tree) -> int:
    """Reference bottom-up evaluation of an AND/OR circuit tree.

    Returns the Boolean value (0 or 1) of the circuit; used as the oracle
    against which the circuit automata of Examples 4.2/4.4/5.9 are tested.
    """
    if not tree.children:
        if tree.label not in ("0", "1"):
            raise ValueError(f"leaf label must be 0 or 1, got {tree.label!r}")
        return int(tree.label)
    values = [evaluate_circuit(child) for child in tree.children]
    if tree.label == "AND":
        return int(all(values))
    if tree.label == "OR":
        return int(any(values))
    raise ValueError(f"gate label must be AND or OR, got {tree.label!r}")


def flat_tree(leaf_labels: Sequence[str], root: str = "r") -> Tree:
    """A depth-1 tree whose leaves carry the given labels, in order.

    The shape used in Proposition 5.10's separation argument.
    """
    return Tree(root, [Tree(label) for label in leaf_labels])


def random_tree(
    size: int,
    labels: Sequence[str],
    max_arity: int | None = None,
    seed_or_rng: int | random.Random = 0,
) -> Tree:
    """A uniform-ish random tree with exactly ``size`` nodes.

    Built by attaching each new node to a random existing node (respecting
    ``max_arity`` when given), then assigning independent random labels.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = _rng(seed_or_rng)
    children_of: list[list[int]] = [[] for _ in range(size)]
    for node in range(1, size):
        candidates = [
            parent
            for parent in range(node)
            if max_arity is None or len(children_of[parent]) < max_arity
        ]
        if not candidates:
            raise ValueError(f"cannot fit {size} nodes with max_arity={max_arity}")
        parent = rng.choice(candidates)
        children_of[parent].append(node)

    node_labels = [rng.choice(labels) for _ in range(size)]

    def build(node: int) -> Tree:
        return Tree(node_labels[node], [build(child) for child in children_of[node]])

    return build(0)


def monadic_chain(labels: Sequence[str]) -> Tree:
    """A unary chain: ``labels[0]`` on top, each next label the only child.

    Chains exercise the Hopcroft–Ullman string-segment handling of
    Theorem 4.8 (nodes with exactly one child are treated as string
    positions).
    """
    if not labels:
        raise ValueError("need at least one label")
    tree = Tree(labels[-1])
    for label in reversed(labels[:-1]):
        tree = Tree(label, [tree])
    return tree


def enumerate_trees(
    labels: Sequence[str], max_size: int, max_arity: int | None = None
) -> list[Tree]:
    """All trees over ``labels`` with at most ``max_size`` nodes.

    Exhaustive enumeration (small sizes only) — the ground truth for
    brute-force checks of emptiness, containment, and equivalence in the
    decision-procedure tests.
    """
    by_size: dict[int, list[Tree]] = {0: []}

    def forests(total: int, arity_left: int | None) -> list[list[Tree]]:
        if total == 0:
            return [[]]
        if arity_left == 0:
            return []
        out: list[list[Tree]] = []
        for first_size in range(1, total + 1):
            for first in by_size.get(first_size, []):
                rest_arity = None if arity_left is None else arity_left - 1
                for rest in forests(total - first_size, rest_arity):
                    out.append([first] + rest)
        return out

    for size in range(1, max_size + 1):
        trees: list[Tree] = []
        for label in labels:
            for children in forests(size - 1, max_arity):
                trees.append(Tree(label, children))
        by_size[size] = trees

    return [tree for size in range(1, max_size + 1) for tree in by_size[size]]
