"""A small XML parser and serializer mapping documents to Σ-trees.

The paper's motivating setting (Figures 1, 3, 4): XML documents are
abstracted as unranked labeled ordered trees.  We implement the abstraction
directly — a deliberately small parser for the element-and-text fragment of
XML that the paper's examples use (no attributes-with-namespaces, CDATA, or
processing instructions; attributes are parsed and preserved but do not
enter the tree abstraction, matching the paper).

Two abstraction levels are offered, mirroring Figures 3 and 4:

* :func:`to_tree` — element nodes become internal nodes labeled by their tag
  and text content becomes ``#text`` leaves (Figure 3's shape, where PCDATA
  is a child).
* :func:`to_structure_tree` — text is dropped entirely, leaving the pure
  element structure (Figure 4's shape, the input to DTD validation).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from .tree import Tree

#: Label given to text leaves in the full abstraction.
TEXT_LABEL = "#text"


class XMLError(ValueError):
    """Raised on malformed documents."""


@dataclass
class XMLElement:
    """A parsed XML element: tag, attributes, and ordered content."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    content: list["XMLElement | str"] = field(default_factory=list)

    def texts(self) -> list[str]:
        """All directly contained text chunks, in order."""
        return [item for item in self.content if isinstance(item, str)]

    def elements(self) -> list["XMLElement"]:
        """All directly contained child elements, in order."""
        return [item for item in self.content if isinstance(item, XMLElement)]


class _Parser:
    """Recursive-descent parser over the document string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XMLError:
        return XMLError(f"{message} at offset {self.pos}")

    def peek(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.peek(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def skip_misc(self) -> None:
        """Skip whitespace, comments, XML declarations and DOCTYPE."""
        while True:
            self.skip_whitespace()
            if self.peek("<!--"):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.peek("<?"):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.peek("<!DOCTYPE"):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def parse_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def parse_attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            self.skip_whitespace()
            if self.pos >= len(self.text) or self.text[self.pos] in "/>":
                return attributes
            name = self.parse_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self.error("expected a quoted attribute value")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error("unterminated attribute value")
            attributes[name] = _unescape(self.text[self.pos : end])
            self.pos = end + 1

    def parse_element(self) -> XMLElement:
        self.expect("<")
        tag = self.parse_name()
        attributes = self.parse_attributes()
        self.skip_whitespace()
        if self.peek("/>"):
            self.pos += 2
            return XMLElement(tag, attributes)
        self.expect(">")
        element = XMLElement(tag, attributes)
        while True:
            if self.peek("</"):
                self.pos += 2
                closing = self.parse_name()
                if closing != tag:
                    raise self.error(f"mismatched closing tag {closing!r} for {tag!r}")
                self.skip_whitespace()
                self.expect(">")
                return element
            if self.peek("<!--"):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
                continue
            if self.peek("<"):
                element.content.append(self.parse_element())
                continue
            end = self.text.find("<", self.pos)
            if end < 0:
                raise self.error(f"unterminated element {tag!r}")
            chunk = _unescape(self.text[self.pos : end])
            if chunk.strip():
                element.content.append(chunk.strip())
            self.pos = end


def _unescape(text: str) -> str:
    for entity, char in (
        ("&lt;", "<"),
        ("&gt;", ">"),
        ("&quot;", '"'),
        ("&apos;", "'"),
        ("&amp;", "&"),
    ):
        text = text.replace(entity, char)
    return text


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def parse_document(text: str) -> XMLElement:
    """Parse an XML document string into its root :class:`XMLElement`."""
    parser = _Parser(text)
    parser.skip_misc()
    element = parser.parse_element()
    parser.skip_misc()
    if parser.pos != len(parser.text):
        raise parser.error("trailing content after the root element")
    return element


def to_tree(element: XMLElement) -> Tree:
    """Abstract an element as a Σ-tree keeping text as ``#text`` leaves."""
    children: list[Tree] = []
    for item in element.content:
        if isinstance(item, XMLElement):
            children.append(to_tree(item))
        else:
            children.append(Tree(TEXT_LABEL))
    return Tree(element.tag, children)


def to_structure_tree(element: XMLElement) -> Tree:
    """Abstract an element keeping only element structure (Figure 4)."""
    return Tree(
        element.tag, [to_structure_tree(child) for child in element.elements()]
    )


def parse_to_tree(text: str) -> Tree:
    """Parse a document and abstract it in one step (text kept)."""
    return to_tree(parse_document(text))


def parse_to_structure_tree(text: str) -> Tree:
    """Parse a document and abstract it in one step (text dropped)."""
    return to_structure_tree(parse_document(text))


def from_etree(element) -> XMLElement:
    """Convert an :mod:`xml.etree.ElementTree` element to :class:`XMLElement`.

    Mirrors the hand parser's text handling — chunks are stripped and
    whitespace-only chunks dropped — so a document ingested through
    ``ElementTree`` abstracts to the same Σ-tree as one parsed by
    :func:`parse_document`.
    """
    converted = XMLElement(element.tag, dict(element.attrib))
    if element.text and element.text.strip():
        converted.content.append(element.text.strip())
    for child in element:
        converted.content.append(from_etree(child))
        if child.tail and child.tail.strip():
            converted.content.append(child.tail.strip())
    return converted


def iter_corpus(source) -> Iterator[XMLElement]:
    """Stream the documents of a corpus file, one at a time.

    A *corpus file* is an XML file whose root element's children are the
    individual documents.  Parsing uses ``ElementTree.iterparse``, and
    each document element is cleared as soon as it has been yielded —
    million-node corpora never materialize in memory.  ``source`` is a
    filename or a binary file object.
    """
    import xml.etree.ElementTree as ElementTree

    depth = 0
    for event, element in ElementTree.iterparse(source, events=("start", "end")):
        if event == "start":
            depth += 1
        else:
            depth -= 1
            if depth == 1:
                yield from_etree(element)
                element.clear()


def serialize(element: XMLElement, indent: int = 0) -> str:
    """Render an :class:`XMLElement` back to XML text (pretty-printed)."""
    pad = "  " * indent
    attrs = "".join(
        f' {name}="{_escape(value)}"' for name, value in element.attributes.items()
    )
    if not element.content:
        return f"{pad}<{element.tag}{attrs}/>"
    if all(isinstance(item, str) for item in element.content):
        inner = " ".join(_escape(item) for item in element.content if isinstance(item, str))
        return f"{pad}<{element.tag}{attrs}>{inner}</{element.tag}>"
    lines = [f"{pad}<{element.tag}{attrs}>"]
    for item in element.content:
        if isinstance(item, XMLElement):
            lines.append(serialize(item, indent + 1))
        else:
            lines.append("  " * (indent + 1) + _escape(item))
    lines.append(f"{pad}</{element.tag}>")
    return "\n".join(lines)


#: The Figure 1 bibliography document, verbatim content.
BIBLIOGRAPHY_EXAMPLE = """\
<bibliography>
  <book>
    <author>S. Abiteboul</author>
    <author>R. Hull</author>
    <author>V. Vianu</author>
    <title>Foundations of Databases</title>
    <publisher>Addison-Wesley</publisher>
    <year>1995</year>
  </book>
  <article>
    <author>E. Codd</author>
    <title>A Relational Model of Data for Large Shared Data Banks</title>
    <journal>Communications of the ACM</journal>
    <year>1970</year>
  </article>
</bibliography>
"""


def make_bibliography(num_books: int, num_articles: int) -> str:
    """Generate a larger Figure 1-shaped document for scaling benchmarks."""
    parts = ["<bibliography>"]
    for i in range(num_books):
        parts.append(
            f"<book><author>A{i}</author><author>B{i}</author>"
            f"<title>T{i}</title><publisher>P{i % 7}</publisher>"
            f"<year>{1970 + i % 50}</year></book>"
        )
    for i in range(num_articles):
        parts.append(
            f"<article><author>C{i}</author><title>U{i}</title>"
            f"<journal>J{i % 5}</journal><year>{1970 + i % 50}</year></article>"
        )
    parts.append("</bibliography>")
    return "".join(parts)
