"""The paper's ranked worked examples: Boolean circuits (Examples 4.2, 4.4).

Trees represent circuits of binary AND/OR gates (internal nodes) over
constant inputs (leaves ``0``/``1``).  Example 4.2 builds a 2DTA^r
accepting exactly the circuits that evaluate to 1; Example 4.4 turns it
into a QA^r selecting every node whose subcircuit evaluates to 1.

We follow the paper's state space: ``s`` (descend), ``u`` (leaf turned
around), pairs ``(i, j)`` (the children's subcircuits evaluate to ``i``
and ``j``), plus explicit value states ``v0``/``v1`` for the root
transition's result (the paper leaves these implicit in "``i op j``").
"""

from __future__ import annotations

from itertools import product as iter_product

from .twoway import RankedQueryAutomaton, TwoWayRankedAutomaton

_OPS = ("AND", "OR")
_BITS = ("0", "1")
_SIGMA = _OPS + _BITS


def _apply(op: str, i: int, j: int) -> int:
    return (i and j) if op == "AND" else (i or j)


def circuit_acceptor() -> TwoWayRankedAutomaton:
    """Example 4.2: accept full binary circuits that evaluate to 1."""
    pair_states = [(i, j) for i in (0, 1) for j in (0, 1)]
    states = {"s", "u", "v0", "v1", *pair_states}
    down_pairs = {("s", sigma) for sigma in _SIGMA}
    up_pairs = {
        (state, sigma) for state in ["u", *pair_states] for sigma in _SIGMA
    }

    delta_down = {("s", sigma, 2): ("s", "s") for sigma in _SIGMA}
    delta_leaf = {("s", bit): "u" for bit in _BITS}

    delta_up: dict[tuple, str | tuple] = {}
    # (3) two turned-around leaves: remember their labels as a value pair.
    for i in _BITS:
        for j in _BITS:
            delta_up[(("u", i), ("u", j))] = (int(i), int(j))
    # (4) two evaluated gates: evaluate each and pair the results.
    for (i1, j1), op1 in iter_product(pair_states, _OPS):
        for (i2, j2), op2 in iter_product(pair_states, _OPS):
            delta_up[(((i1, j1), op1), ((i2, j2), op2))] = (
                _apply(op1, i1, j1),
                _apply(op2, i2, j2),
            )
    # Mixed heights do not occur in full binary circuits (paper's setting).

    # (5) root: evaluate the final pair.  (The single-leaf circuit, not
    # covered by the paper's "full binary" convention, is handled by the
    # extra (u, bit) root transitions.)
    delta_root = {
        ((i, j), op): f"v{_apply(op, i, j)}"
        for (i, j) in pair_states
        for op in _OPS
    }
    delta_root.update({("u", bit): f"v{bit}" for bit in _BITS})

    return TwoWayRankedAutomaton.build(
        states,
        _SIGMA,
        2,
        "s",
        {"v1"},
        up_pairs,
        down_pairs,
        delta_leaf,
        delta_root,
        delta_up,
        delta_down,
    )


def circuit_value_query() -> RankedQueryAutomaton:
    """Example 4.4: select every node whose subcircuit evaluates to 1.

    As in the paper, ``F`` becomes the whole state set (selection should
    happen on every circuit) and λ((i,j), op) = 1 iff ``i op j = 1``.  The
    paper's λ covers only gate nodes; we additionally select 1-labeled
    leaves (visited in state ``u``) so the computed query matches its
    English statement "all nodes that evaluate to 1" exactly.
    """
    base = circuit_acceptor()
    automaton = TwoWayRankedAutomaton(
        base.states,
        base.alphabet,
        base.max_rank,
        base.initial,
        base.states,  # F := Q
        base.up_pairs,
        base.down_pairs,
        base.delta_leaf,
        base.delta_root,
        base.delta_up,
        base.delta_down,
    )
    selecting = {
        ((i, j), op)
        for i in (0, 1)
        for j in (0, 1)
        for op in _OPS
        if _apply(op, i, j) == 1
    }
    selecting.add(("u", "1"))
    return RankedQueryAutomaton(automaton, frozenset(selecting))


def circuit_reference_query(tree) -> frozenset:
    """Oracle: the set of nodes whose subcircuit evaluates to 1."""
    from ..trees.generators import evaluate_circuit

    return frozenset(
        path for path in tree.nodes() if evaluate_circuit(tree.subtree(path)) == 1
    )
