"""Ranked tree automata: DBTA^r, 2DTA^r, QA^r, and Theorem 4.8 (Section 4)."""

from .bta import (
    DeterministicRankedAutomaton,
    RankedTreeAutomaton,
    boolean_circuit_dbta,
)
from .twoway import RankedQueryAutomaton, TwoWayRankedAutomaton
from .behavior import (
    behavior_functions,
    evaluate_query_via_behavior,
    states_closure,
    up_state,
)
from .examples import circuit_acceptor, circuit_reference_query, circuit_value_query
from .mso_to_qa import QueryAutomatonBuilder, build_query_qar, two_phase_evaluate

__all__ = [
    "DeterministicRankedAutomaton",
    "RankedTreeAutomaton",
    "boolean_circuit_dbta",
    "RankedQueryAutomaton",
    "TwoWayRankedAutomaton",
    "behavior_functions",
    "evaluate_query_via_behavior",
    "states_closure",
    "up_state",
    "circuit_acceptor",
    "circuit_reference_query",
    "circuit_value_query",
    "QueryAutomatonBuilder",
    "build_query_qar",
    "two_phase_evaluate",
]
