"""Two-way deterministic ranked tree automata — Definition 4.1 (Moriya).

A 2DTA^r works on *cuts*: antichains meeting every root-to-leaf path
exactly once.  A configuration assigns a state to every node of a cut.
Four transition kinds move the cut:

* **down** at ``v`` (``(state, label) ∈ D``): ``v`` is replaced by its
  children, which receive the state string ``δ_↓(q, σ, arity)``;
* **up** at ``v`` (every child's ``(state, label) ∈ U``): the children are
  replaced by ``v`` in state ``δ_↑((q_1, σ_1) ... (q_n, σ_n))``;
* **leaf** at a leaf ``v`` (``(state, label) ∈ D``): the state becomes
  ``δ_leaf(q, σ)``, cut unchanged;
* **root** when the cut is ``{root}`` and ``(state, label) ∈ U``: the state
  becomes ``δ_root(q, σ)``.

The disjointness of ``U`` and ``D`` makes all runs visit each node in the
same state sequence (the paper's determinism argument), so our scheduler's
canonical order (leftmost enabled transition) is a faithful choice of
"the" run.  The run is *accepting* when it is maximal and the final
configuration is ``{root ↦ q}`` with ``q ∈ F``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..strings.dfa import AutomatonError
from ..strings.twoway import NonTerminatingRunError
from ..trees.tree import Path, Tree

State = Hashable
Label = Hashable

#: A configuration: mapping from the cut's node paths to states.
Configuration = dict[Path, State]

#: A pair (state, label) — the alphabet of up-transition strings.
UPair = tuple[State, Label]


@dataclass(frozen=True)
class TwoWayRankedAutomaton:
    """A 2DTA^r: ``(Q, Σ, F, s, δ)`` with the four transition tables.

    ``up_pairs`` / ``down_pairs`` are the sets ``U`` and ``D``; they must
    be disjoint.  ``delta_up`` maps tuples of (state, label) pairs (one per
    child, in order) to the parent's new state.  ``delta_down`` maps
    ``(state, label, arity)`` to the children's state tuple.
    """

    states: frozenset[State]
    alphabet: frozenset[Label]
    max_rank: int
    initial: State
    accepting: frozenset[State]
    up_pairs: frozenset[UPair]
    down_pairs: frozenset[UPair]
    delta_leaf: dict[UPair, State]
    delta_root: dict[UPair, State]
    delta_up: dict[tuple[UPair, ...], State]
    delta_down: dict[tuple[State, Label, int], tuple[State, ...]]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError("initial state unknown")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        if self.up_pairs & self.down_pairs:
            raise AutomatonError("U and D must be disjoint")
        for (state, label) in self.up_pairs | self.down_pairs:
            if state not in self.states or label not in self.alphabet:
                raise AutomatonError(f"unknown (state, label) pair {(state, label)!r}")
        for pair in self.delta_leaf:
            if pair not in self.down_pairs:
                raise AutomatonError(f"δ_leaf defined outside D at {pair!r}")
        for pair in self.delta_root:
            if pair not in self.up_pairs:
                raise AutomatonError(f"δ_root defined outside U at {pair!r}")
        for pairs in self.delta_up:
            if not 1 <= len(pairs) <= self.max_rank:
                raise AutomatonError("δ_up arity out of range")
            for pair in pairs:
                if pair not in self.up_pairs:
                    raise AutomatonError(f"δ_up argument {pair!r} outside U")
        for (state, label, arity), targets in self.delta_down.items():
            if (state, label) not in self.down_pairs:
                raise AutomatonError(f"δ_down defined outside D at {(state, label)!r}")
            if len(targets) != arity or not 1 <= arity <= self.max_rank:
                raise AutomatonError("δ_down output length must equal the arity")

    @staticmethod
    def build(
        states: Iterable[State],
        alphabet: Iterable[Label],
        max_rank: int,
        initial: State,
        accepting: Iterable[State],
        up_pairs: Iterable[UPair],
        down_pairs: Iterable[UPair],
        delta_leaf: dict[UPair, State],
        delta_root: dict[UPair, State],
        delta_up: dict[tuple[UPair, ...], State],
        delta_down: dict[tuple[State, Label, int], tuple[State, ...]],
    ) -> "TwoWayRankedAutomaton":
        """Convenience constructor accepting any iterables."""
        return TwoWayRankedAutomaton(
            frozenset(states),
            frozenset(alphabet),
            max_rank,
            initial,
            frozenset(accepting),
            frozenset(up_pairs),
            frozenset(down_pairs),
            dict(delta_leaf),
            dict(delta_root),
            dict(delta_up),
            dict(delta_down),
        )

    @property
    def size(self) -> int:
        """|Q| + |Σ| + number of transition entries (paper-style measure)."""
        return (
            len(self.states)
            + len(self.alphabet)
            + len(self.delta_leaf)
            + len(self.delta_root)
            + len(self.delta_up)
            + len(self.delta_down)
        )

    # ------------------------------------------------------------------
    # Run semantics
    # ------------------------------------------------------------------

    def _enabled_transition(
        self, tree: Tree, configuration: Configuration
    ) -> tuple[str, Path] | None:
        """The canonical (leftmost) enabled transition, or ``None``."""
        cut = sorted(configuration)
        # Root transition has the whole-cut precondition; check it first.
        if cut == [()]:
            pair = (configuration[()], tree.label_at(()))
            if pair in self.up_pairs and pair in self.delta_root:
                return ("root", ())
        candidate_parents: set[Path] = set()
        for path in cut:
            state = configuration[path]
            label = tree.label_at(path)
            pair = (state, label)
            arity = tree.arity_at(path)
            if pair in self.down_pairs:
                if arity == 0:
                    if pair in self.delta_leaf:
                        return ("leaf", path)
                elif (state, label, arity) in self.delta_down:
                    return ("down", path)
            if pair in self.up_pairs and path:
                candidate_parents.add(path[:-1])
        for parent in sorted(candidate_parents):
            arity = tree.arity_at(parent)
            children = [parent + (i,) for i in range(arity)]
            if not all(child in configuration for child in children):
                continue
            word = tuple(
                (configuration[child], tree.label_at(child)) for child in children
            )
            if all(pair in self.up_pairs for pair in word) and word in self.delta_up:
                return ("up", parent)
        return None

    def _fire(
        self, tree: Tree, configuration: Configuration, kind: str, path: Path
    ) -> Configuration:
        new = dict(configuration)
        label = tree.label_at(path)
        if kind == "root":
            new[()] = self.delta_root[(configuration[()], label)]
        elif kind == "leaf":
            new[path] = self.delta_leaf[(configuration[path], label)]
        elif kind == "down":
            arity = tree.arity_at(path)
            targets = self.delta_down[(configuration[path], label, arity)]
            del new[path]
            for i, target in enumerate(targets):
                new[path + (i,)] = target
        elif kind == "up":
            arity = tree.arity_at(path)
            children = [path + (i,) for i in range(arity)]
            word = tuple(
                (configuration[child], tree.label_at(child)) for child in children
            )
            for child in children:
                del new[child]
            new[path] = self.delta_up[word]
        else:  # pragma: no cover - internal
            raise AssertionError(kind)
        return new

    def run(
        self, tree: Tree, max_steps: int | None = None
    ) -> list[Configuration]:
        """The (canonical) maximal run as a list of configurations.

        ``max_steps`` defaults to ``4 |Q| |t| + 4`` — a halting automaton
        visits each node at most |Q| times per direction; exceeding the
        budget raises :class:`NonTerminatingRunError`.
        """
        if not tree.is_ranked(self.max_rank):
            raise AutomatonError(f"input tree exceeds rank {self.max_rank}")
        if max_steps is None:
            max_steps = 4 * len(self.states) * tree.size + 4
        configuration: Configuration = {(): self.initial}
        trace = [dict(configuration)]
        for _ in range(max_steps):
            enabled = self._enabled_transition(tree, configuration)
            if enabled is None:
                return trace
            configuration = self._fire(tree, configuration, *enabled)
            trace.append(dict(configuration))
        raise NonTerminatingRunError(
            f"run exceeded {max_steps} steps on a tree of size {tree.size}"
        )

    def accepts(self, tree: Tree) -> bool:
        """Is the (maximal) run accepting?"""
        final = self.run(tree)[-1]
        return list(final) == [()] and final[()] in self.accepting

    def visited_states(self, tree: Tree) -> dict[Path, list[State]]:
        """The sequence of states each node is visited in (for tests)."""
        visits: dict[Path, list[State]] = {path: [] for path in tree.nodes()}
        previous: dict[Path, State | None] = {}
        for configuration in self.run(tree):
            for path in visits:
                now = configuration.get(path)
                if now is not None and previous.get(path) != now:
                    visits[path].append(now)
                previous[path] = now
        return visits


@dataclass(frozen=True)
class RankedQueryAutomaton:
    """A QA^r (Definition 4.3): a 2DTA^r plus a selection function.

    ``selecting`` is the set of (state, label) pairs with ``λ = 1``.  A
    node is selected when the accepting run visits it at least once in a
    selecting state (Definition's semantics); a rejected tree selects
    nothing.
    """

    automaton: TwoWayRankedAutomaton
    selecting: frozenset[UPair]

    def __post_init__(self) -> None:
        for state, label in self.selecting:
            if state not in self.automaton.states:
                raise AutomatonError(f"selection uses unknown state {state!r}")
            if label not in self.automaton.alphabet:
                raise AutomatonError(f"selection uses unknown label {label!r}")

    @property
    def size(self) -> int:
        """Size of the underlying automaton (selection adds nothing)."""
        return self.automaton.size

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """The computed query ``A(t)`` — selected node paths."""
        trace = self.automaton.run(tree)
        final = trace[-1]
        if list(final) != [()] or final[()] not in self.automaton.accepting:
            return frozenset()
        selected: set[Path] = set()
        for configuration in trace:
            for path, state in configuration.items():
                if (state, tree.label_at(path)) in self.selecting:
                    selected.add(path)
        return frozenset(selected)

    def accepts(self, tree: Tree) -> bool:
        """The tree language of the underlying automaton."""
        return self.automaton.accepts(tree)
