"""Bottom-up tree automata over ranked trees (Definition 2.6).

The classical Doner–Thatcher–Wright machinery of §2.3: deterministic and
nondeterministic bottom-up automata on trees of rank at most ``m``, with the
standard toolkit (determinization, products, complement, emptiness with
witnesses) used by Theorem 2.8 and by the ranked query-automaton
constructions of Section 4.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from itertools import product as iter_product

from ..strings.dfa import AutomatonError
from ..trees.tree import Path, Tree

State = Hashable
Label = Hashable


@dataclass(frozen=True)
class RankedTreeAutomaton:
    """A nondeterministic bottom-up ranked tree automaton (NBTA^r).

    ``transitions`` maps ``(label, children_states_tuple)`` to the set of
    possible states; leaves use the empty tuple.  ``max_rank`` bounds the
    arity of inputs (and of transition keys).
    """

    states: frozenset[State]
    alphabet: frozenset[Label]
    max_rank: int
    transitions: dict[tuple[Label, tuple[State, ...]], frozenset[State]]
    accepting: frozenset[State]

    def __post_init__(self) -> None:
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for (label, children), targets in self.transitions.items():
            if label not in self.alphabet:
                raise AutomatonError(f"unknown label {label!r}")
            if len(children) > self.max_rank:
                raise AutomatonError("transition arity exceeds the rank bound")
            if not (set(children) <= self.states and targets <= self.states):
                raise AutomatonError("transition uses unknown states")

    @property
    def size(self) -> int:
        """|Q| + |Σ| + number of transition entries."""
        return len(self.states) + len(self.alphabet) + len(self.transitions)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def run(self, tree: Tree) -> dict[Path, frozenset[State]]:
        """``δ*`` at every node (sets of possible states)."""
        if not tree.is_ranked(self.max_rank):
            raise AutomatonError(f"input tree exceeds rank {self.max_rank}")
        result: dict[Path, frozenset[State]] = {}
        for path in tree.postorder():
            node = tree.subtree(path)
            child_sets = [result[path + (i,)] for i in range(len(node.children))]
            possible: set[State] = set()
            for children in iter_product(*child_sets):
                possible |= self.transitions.get((node.label, children), frozenset())
            result[path] = frozenset(possible)
        return result

    def accepts(self, tree: Tree) -> bool:
        """``δ*(t) ∩ F ≠ ∅``."""
        return bool(self.run(tree)[()] & self.accepting)

    # ------------------------------------------------------------------
    # Decision procedures
    # ------------------------------------------------------------------

    def _reachable_with_witnesses(self) -> dict[State, Tree]:
        witnesses: dict[State, Tree] = {}
        changed = True
        while changed:
            changed = False
            for (label, children), targets in self.transitions.items():
                if not all(q in witnesses for q in children):
                    continue
                for target in targets:
                    if target in witnesses:
                        continue
                    witnesses[target] = Tree(
                        label, [witnesses[q] for q in children]
                    )
                    changed = True
        return witnesses

    def is_empty(self) -> bool:
        """Language emptiness (linear-time fixpoint)."""
        return not (
            frozenset(self._reachable_with_witnesses()) & self.accepting
        )

    def witness(self) -> Tree | None:
        """Some accepted tree, or ``None``."""
        witnesses = self._reachable_with_witnesses()
        for state in self.accepting:
            if state in witnesses:
                return witnesses[state]
        return None

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------

    def determinized(self) -> "DeterministicRankedAutomaton":
        """Subset construction (only realizable subsets are materialized)."""
        subsets: set[frozenset[State]] = set()
        transitions: dict[tuple[Label, tuple], frozenset[State]] = {}

        def result_of(label: Label, children: tuple) -> frozenset[State]:
            out: set[State] = set()
            for concrete in iter_product(*children):
                out |= self.transitions.get((label, concrete), frozenset())
            return frozenset(out)

        changed = True
        while changed:
            changed = False
            known = list(subsets)
            for label in self.alphabet:
                for arity in range(self.max_rank + 1):
                    for children in iter_product(known, repeat=arity):
                        key = (label, children)
                        if key in transitions:
                            continue
                        target = result_of(label, children)
                        transitions[key] = target
                        if target not in subsets:
                            subsets.add(target)
                            changed = True
        accepting = frozenset(s for s in subsets if s & self.accepting)
        return DeterministicRankedAutomaton(
            frozenset(subsets),
            self.alphabet,
            self.max_rank,
            {key: value for key, value in transitions.items()},
            accepting,
        )

    def intersection(self, other: "RankedTreeAutomaton") -> "RankedTreeAutomaton":
        """Product automaton for the intersection."""
        if self.alphabet != other.alphabet or self.max_rank != other.max_rank:
            raise AutomatonError("product requires matching alphabet and rank")
        transitions: dict[tuple[Label, tuple], frozenset] = {}
        for (label, children_a), targets_a in self.transitions.items():
            for (label_b, children_b), targets_b in other.transitions.items():
                if label != label_b or len(children_a) != len(children_b):
                    continue
                children = tuple(zip(children_a, children_b))
                key = (label, children)
                pairs = frozenset(
                    (ta, tb) for ta in targets_a for tb in targets_b
                )
                transitions[key] = transitions.get(key, frozenset()) | pairs
        states = frozenset(
            (a, b) for a in self.states for b in other.states
        )
        accepting = frozenset(
            (a, b) for a in self.accepting for b in other.accepting
        )
        return RankedTreeAutomaton(
            states, self.alphabet, self.max_rank, transitions, accepting
        )


@dataclass(frozen=True)
class DeterministicRankedAutomaton:
    """A DBTA^r: at most one state per (label, children) combination."""

    states: frozenset[State]
    alphabet: frozenset[Label]
    max_rank: int
    transitions: dict[tuple[Label, tuple[State, ...]], State]
    accepting: frozenset[State]

    def __post_init__(self) -> None:
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")

    @property
    def size(self) -> int:
        """|Q| + |Σ| + number of transition entries."""
        return len(self.states) + len(self.alphabet) + len(self.transitions)

    def step(self, label: Label, children: tuple[State, ...]) -> State | None:
        """One bottom-up transition (``None`` = reject)."""
        return self.transitions.get((label, children))

    def run(self, tree: Tree) -> dict[Path, State | None]:
        """The unique state of each subtree (``None`` once the run dies)."""
        result: dict[Path, State | None] = {}
        for path in tree.postorder():
            node = tree.subtree(path)
            children = tuple(
                result[path + (i,)] for i in range(len(node.children))
            )
            if any(q is None for q in children):
                result[path] = None
            else:
                result[path] = self.step(node.label, children)
        return result

    def state_of(self, tree: Tree) -> State | None:
        """``δ*(t)``."""
        return self.run(tree)[()]

    def accepts(self, tree: Tree) -> bool:
        """Membership."""
        state = self.state_of(tree)
        return state is not None and state in self.accepting

    def completed(self, sink: State = ("__sink__",)) -> "DeterministicRankedAutomaton":
        """Add an explicit rejecting sink so every tree gets a state.

        Note: totality requires transition entries for all (label,
        children) combinations, exponential in rank; we materialize them
        (rank is a small constant in this library's uses).
        """
        if sink in self.states:
            raise AutomatonError("sink collides with an existing state")
        states = self.states | {sink}
        transitions = dict(self.transitions)
        for label in self.alphabet:
            for arity in range(self.max_rank + 1):
                for children in iter_product(states, repeat=arity):
                    transitions.setdefault((label, children), sink)
        return DeterministicRankedAutomaton(
            states, self.alphabet, self.max_rank, transitions, self.accepting
        )

    def complement(self) -> "DeterministicRankedAutomaton":
        """Automaton for the complement language."""
        total = self.completed()
        return DeterministicRankedAutomaton(
            total.states,
            total.alphabet,
            total.max_rank,
            total.transitions,
            total.states - total.accepting,
        )

    def to_nondeterministic(self) -> RankedTreeAutomaton:
        """View as an NBTA^r."""
        return RankedTreeAutomaton(
            self.states,
            self.alphabet,
            self.max_rank,
            {key: frozenset({value}) for key, value in self.transitions.items()},
            self.accepting,
        )


def boolean_circuit_dbta() -> DeterministicRankedAutomaton:
    """The natural bottom-up evaluator of full binary AND/OR circuits.

    States are the Boolean values; used as the reference automaton in the
    Example 4.2 tests.
    """
    transitions: dict[tuple[Label, tuple], State] = {
        ("0", ()): 0,
        ("1", ()): 1,
    }
    for op, fn in (("AND", min), ("OR", max)):
        for a in (0, 1):
            for b in (0, 1):
                transitions[(op, (a, b))] = fn(a, b)
    return DeterministicRankedAutomaton(
        frozenset({0, 1}),
        frozenset({"0", "1", "AND", "OR"}),
        2,
        transitions,
        frozenset({1}),
    )
