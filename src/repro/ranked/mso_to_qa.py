"""Theorem 4.8: every MSO-definable unary query is computed by a QA^r.

The construction follows Figure 5 and the surrounding proof.  The MSO
formula φ(x) is first compiled to a deterministic bottom-up automaton
``D`` over the *marked* alphabet ``(σ, 0)/(σ, 1)``
(:func:`repro.logic.compile_trees.compile_tree_query`), accepting a tree
with one marked node iff the node satisfies φ.  Two pieces of data then
decide selection of a node ``v`` locally:

* ``s_w`` — the ``D``-state of every unmarked subtree (the analogue of
  ``τ(t_w, w)``), and
* the *context set* ``C_v ⊆ Q_D`` — the subtree states at ``v`` that make
  the whole (unmarked-elsewhere) tree accepted (the analogue of
  ``τ(t̄_v, v)``);

``v`` is selected iff the state of ``v``'s subtree *with v marked* lies in
``C_v`` — exactly steps 2–4 of Figure 5 with MSO types replaced by the
equivalent automaton states.

The QA^r realizes the level-by-level algorithm with the paper's pebbling
trick, generalized from the binary exposition to any rank ``m``: at a
node with known context the children are evaluated **one at a time**, the
accumulated tuple of subtree states riding along in a U-state at the
first child (the pebble) while already-finished children park and
not-yet-visited children wait; the per-phase down transitions are slender
(one fixed prefix, then ``wait*``), as Definition 4.1's tables require.
When the tuple is complete, a ``combine`` state at ``v`` decides the
selection and pushes every child's context down in one (explicit,
arity-specific) down transition.  A final ascent returns the head to the
root so the run accepts.

As in the paper's proof, nodes with exactly one child are handled by the
Lemma 3.10 string treatment and are outside this automaton's domain
(inner arity must be ≥ 2); the Figure 5 *algorithm* itself
(:func:`two_phase_evaluate`) covers every arity.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from itertools import product as iter_product

from ..logic.syntax import Formula, Var
from ..strings.dfa import AutomatonError
from ..trees.tree import Path, Tree
from ..unranked.dbta import DeterministicUnrankedAutomaton
from .twoway import RankedQueryAutomaton, TwoWayRankedAutomaton

State = Hashable
Label = Hashable

#: Context sets are frozensets of D-states (the α functions of the proof,
#: represented by their true-set).
Context = frozenset


def _step(d: DeterministicUnrankedAutomaton, label, bit: int, children) -> State:
    """One transition of the marked-alphabet automaton ``D``."""
    return d.classifiers[(label, bit)].result(list(children))


class QueryAutomatonBuilder:
    """Builds the Theorem 4.8 QA^r from a marked-alphabet DBTA.

    ``d`` must run over labels ``(σ, 0)/(σ, 1)`` with ``σ`` in ``alphabet``
    (the output of :func:`~repro.logic.compile_trees.compile_tree_query`).
    The resulting QA^r works on trees of rank ≤ ``max_rank`` whose inner
    nodes have at least two children.
    """

    def __init__(
        self,
        d: DeterministicUnrankedAutomaton,
        alphabet: Sequence[Label],
        max_rank: int = 2,
    ) -> None:
        if max_rank < 2:
            raise AutomatonError("the construction needs rank ≥ 2")
        self.d = d
        self.alphabet = tuple(alphabet)
        self.max_rank = max_rank
        self.sigma_index = {sigma: i for i, sigma in enumerate(self.alphabet)}
        self.leaf_state = {
            sigma: _step(d, sigma, 0, ()) for sigma in self.alphabet
        }
        self.marked_leaf_state = {
            sigma: _step(d, sigma, 1, ()) for sigma in self.alphabet
        }
        self.reachable = self._close_d_states()
        self.functions = self._close_functions()
        self.contexts = self._close_contexts()

    # -- closures of the auxiliary state families ----------------------

    def _close_d_states(self) -> frozenset[State]:
        """Unmarked subtree states, for arities 0 and 2..max_rank."""
        reached = set(self.leaf_state.values())
        changed = True
        while changed:
            changed = False
            for sigma in self.alphabet:
                for arity in range(2, self.max_rank + 1):
                    for children in iter_product(
                        sorted(reached, key=repr), repeat=arity
                    ):
                        target = _step(self.d, sigma, 0, children)
                        if target not in reached:
                            reached.add(target)
                            changed = True
        return frozenset(reached)

    def _close_functions(self) -> frozenset[tuple]:
        """Reachable function states ``f : Σ → Q_D`` (stored as tuples)."""
        leaf_f = tuple(self.leaf_state[sigma] for sigma in self.alphabet)
        functions = {leaf_f}
        changed = True
        while changed:
            changed = False
            for arity in range(2, self.max_rank + 1):
                for child_functions in iter_product(
                    sorted(functions, key=repr), repeat=arity
                ):
                    for child_labels in iter_product(self.alphabet, repeat=arity):
                        children = tuple(
                            f[self.sigma_index[label]]
                            for f, label in zip(child_functions, child_labels)
                        )
                        combined = tuple(
                            _step(self.d, sigma, 0, children)
                            for sigma in self.alphabet
                        )
                        if combined not in functions:
                            functions.add(combined)
                            changed = True
        return frozenset(functions)

    def _child_context(
        self, context: Context, sigma: Label, siblings: tuple, position: int
    ) -> Context:
        """``C_{v(position)}`` given the other children's states."""
        return frozenset(
            q
            for q in self.d.states
            if _step(
                self.d,
                sigma,
                0,
                siblings[:position] + (q,) + siblings[position:],
            )
            in context
        )

    def _close_contexts(self) -> frozenset[Context]:
        contexts = {frozenset(self.d.accepting)}
        frontier = list(contexts)
        while frontier:
            context = frontier.pop()
            for sigma in self.alphabet:
                for arity in range(2, self.max_rank + 1):
                    for siblings in iter_product(
                        sorted(self.reachable, key=repr), repeat=arity - 1
                    ):
                        for position in range(arity):
                            child = self._child_context(
                                context, sigma, siblings, position
                            )
                            if child not in contexts:
                                contexts.add(child)
                                frontier.append(child)
        return frozenset(contexts)

    # -- assembling the QA^r -------------------------------------------

    def build(self) -> RankedQueryAutomaton:
        """Assemble the QA^r (states, the four tables, and λ)."""
        alphabet = self.alphabet
        sigma_index = self.sigma_index
        m = self.max_rank

        states: set = {"eval", "parked", "leaf_sel", "leaf_nosel", "ascend"}
        down_pairs: set = set()
        up_pairs: set = set()
        delta_leaf: dict = {}
        delta_root: dict = {}
        delta_up: dict = {}
        delta_down: dict = {}
        selecting: set = set()

        def down(context: Context):
            return ("down", context)

        def wait(context: Context):
            return ("wait", context)

        def turn(context: Context, collected: tuple):
            return ("turn", context, collected)

        def hold(context: Context, collected: tuple, parent_label: Label):
            return ("hold", context, collected, parent_label)

        def combine(context: Context, collected: tuple, flag: bool):
            return ("combine", context, collected, flag)

        def func(f: tuple):
            return ("func", f)

        leaf_f = tuple(self.leaf_state[sigma] for sigma in alphabet)

        # --- subtree evaluation by function states (the §4.1 simulation)
        for sigma in alphabet:
            down_pairs.add(("eval", sigma))
            up_pairs.add(("parked", sigma))
            for arity in range(2, m + 1):
                delta_down[("eval", sigma, arity)] = tuple(
                    "eval" for _ in range(arity)
                )
            delta_leaf[("eval", sigma)] = func(leaf_f)
        for f in self.functions:
            states.add(func(f))
            for sigma in alphabet:
                up_pairs.add((func(f), sigma))
        # δ_up on all-func words of every arity 2..m.
        for arity in range(2, m + 1):
            for child_functions in iter_product(
                sorted(self.functions, key=repr), repeat=arity
            ):
                for child_labels in iter_product(alphabet, repeat=arity):
                    children = tuple(
                        f[sigma_index[label]]
                        for f, label in zip(child_functions, child_labels)
                    )
                    combined = tuple(
                        _step(self.d, sigma, 0, children) for sigma in alphabet
                    )
                    word = tuple(
                        (func(f), label)
                        for f, label in zip(child_functions, child_labels)
                    )
                    delta_up[word] = func(combined)

        # --- collected tuples (pebble payloads).
        def tuples_up_to(length: int):
            for size in range(1, length + 1):
                yield from iter_product(
                    sorted(self.reachable, key=repr), repeat=size
                )

        for context in self.contexts:
            states.add(down(context))
            states.add(wait(context))
            for sigma in alphabet:
                down_pairs.add((down(context), sigma))
                up_pairs.add((wait(context), sigma))
                # Entry: first child evaluates, the rest wait (arity ≥ 2).
                for arity in range(2, m + 1):
                    delta_down[(down(context), sigma, arity)] = (
                        "eval",
                        *[wait(context) for _ in range(arity - 1)],
                    )
                marked = self.marked_leaf_state[sigma]
                delta_leaf[(down(context), sigma)] = (
                    "leaf_sel" if marked in context else "leaf_nosel"
                )
            for collected in tuples_up_to(m - 1):
                states.add(turn(context, collected))
                for sigma in alphabet:
                    down_pairs.add((turn(context, collected), sigma))
                    states.add(hold(context, collected, sigma))
                    for child_label in alphabet:
                        up_pairs.add(
                            (hold(context, collected, sigma), child_label)
                        )
                    # Phase i = len(collected) + 1: pebble at child 1,
                    # children 2..i-1 parked, child i evaluates, rest wait.
                    i = len(collected) + 1
                    for arity in range(max(i, 2), m + 1):
                        delta_down[(turn(context, collected), sigma, arity)] = (
                            hold(context, collected, sigma),
                            *["parked" for _ in range(i - 2)],
                            "eval",
                            *[wait(context) for _ in range(arity - i)],
                        )
            for collected in tuples_up_to(m):
                if len(collected) < 2:
                    continue
                for flag in (False, True):
                    state = combine(context, collected, flag)
                    states.add(state)
                    for sigma in alphabet:
                        down_pairs.add((state, sigma))
                        if flag:
                            selecting.add((state, sigma))
                        arity = len(collected)
                        delta_down[(state, sigma, arity)] = tuple(
                            down(
                                self._child_context(
                                    context,
                                    sigma,
                                    collected[:j] + collected[j + 1 :],
                                    j,
                                )
                            )
                            for j in range(arity)
                        )

        # --- up transitions closing each pebbling phase.
        for context in self.contexts:
            # Phase 1: (func, wait^{arity-1}) → turn with a 1-tuple.
            for f in sorted(self.functions, key=repr):
                for arity in range(2, m + 1):
                    for labels in iter_product(alphabet, repeat=arity):
                        word = ((func(f), labels[0]),) + tuple(
                            (wait(context), label) for label in labels[1:]
                        )
                        delta_up[word] = turn(
                            context, (f[sigma_index[labels[0]]],)
                        )
            # Phase i ≥ 2: (hold, parked^{i-2}, func, wait^{arity-i}).
            for collected in tuples_up_to(m - 1):
                i = len(collected) + 1
                for parent_label in alphabet:
                    hold_state = hold(context, collected, parent_label)
                    for f in sorted(self.functions, key=repr):
                        for arity in range(max(i, 2), m + 1):
                            for labels in iter_product(alphabet, repeat=arity):
                                word = (
                                    ((hold_state, labels[0]),)
                                    + tuple(
                                        ("parked", label)
                                        for label in labels[1 : i - 1]
                                    )
                                    + ((func(f), labels[i - 1]),)
                                    + tuple(
                                        (wait(context), label)
                                        for label in labels[i:]
                                    )
                                )
                                extended = collected + (
                                    f[sigma_index[labels[i - 1]]],
                                )
                                if arity == i:
                                    marked = _step(
                                        self.d, parent_label, 1, extended
                                    )
                                    delta_up[word] = combine(
                                        context, extended, marked in context
                                    )
                                else:
                                    delta_up[word] = turn(context, extended)

        # --- final ascent over finished subtrees.
        finished = ("leaf_sel", "leaf_nosel", "ascend")
        for sigma in alphabet:
            for state in finished:
                up_pairs.add((state, sigma))
        for arity in range(2, m + 1):
            for parts in iter_product(finished, repeat=arity):
                for labels in iter_product(alphabet, repeat=arity):
                    delta_up[tuple(zip(parts, labels))] = "ascend"
        selecting.update(("leaf_sel", sigma) for sigma in alphabet)

        root_context: Context = frozenset(self.d.accepting)
        automaton = TwoWayRankedAutomaton.build(
            states,
            alphabet,
            m,
            down(root_context),
            set(finished),
            up_pairs,
            down_pairs,
            delta_leaf,
            delta_root,
            delta_up,
            delta_down,
        )
        return RankedQueryAutomaton(automaton, frozenset(selecting))


def build_query_qar(
    formula: Formula,
    var: Var,
    alphabet: Sequence[Label],
    max_rank: int = 2,
    engine: str = "optimized",
) -> RankedQueryAutomaton:
    """MSO unary query φ(x) → QA^r over rank-``max_rank`` trees (Thm 4.8).

    With the default ``engine="optimized"`` the intermediate DBTA^u is
    congruence-minimized before the builder's closures enumerate its
    state set, and the finished QA^r is cached by canonical formula
    digest (:mod:`repro.perf.compile`); ``engine="naive"`` is the
    unoptimized reference.

    >>> from repro.logic.syntax import Var, Label
    >>> qa = build_query_qar(Label(Var("x"), "a"), Var("x"), ["a", "b"])
    >>> from repro.trees.tree import Tree
    >>> sorted(qa.evaluate(Tree.parse("a(b, a)")))
    [(), (1,)]
    """
    from ..logic.compile_trees import compile_tree_query

    if engine == "naive":
        d = compile_tree_query(formula, var, alphabet, engine="naive")
        return QueryAutomatonBuilder(d, alphabet, max_rank).build()
    from ..perf.compile import cached

    def _build() -> RankedQueryAutomaton:
        d = compile_tree_query(formula, var, alphabet)
        return QueryAutomatonBuilder(d, alphabet, max_rank).build()

    return cached(
        "qar",
        formula,
        (var,),
        frozenset(alphabet),
        _build,
        extra=("max_rank", max_rank),
    )


def two_phase_evaluate(
    d: DeterministicUnrankedAutomaton, tree: Tree
) -> frozenset[Path]:
    """The Figure 5 algorithm itself, run directly on any ranked tree.

    Level-by-level: contexts flow down, subtree states are computed
    bottom-up; selection is decided per node by the marked transition.
    Reference implementation for the QA^r above (and works for arity 1,
    which the automaton construction delegates to Lemma 3.10).
    """
    states: dict[Path, State] = {}
    for path in tree.postorder():
        node = tree.subtree(path)
        children = [states[path + (i,)] for i in range(len(node.children))]
        states[path] = _step(d, node.label, 0, children)

    contexts: dict[Path, Context] = {(): frozenset(d.accepting)}
    selected: set[Path] = set()
    for level in tree.nodes_by_depth():
        for path in level:
            node = tree.subtree(path)
            context = contexts[path]
            children_states = [
                states[path + (i,)] for i in range(len(node.children))
            ]
            marked = _step(d, node.label, 1, children_states)
            if marked in context:
                selected.add(path)
            for i in range(len(node.children)):
                child_context = frozenset(
                    q
                    for q in d.states
                    if _step(
                        d,
                        node.label,
                        0,
                        children_states[:i] + [q] + children_states[i + 1 :],
                    )
                    in context
                )
                contexts[path + (i,)] = child_context
    return frozenset(selected)


def fast_two_phase_evaluate(
    d: DeterministicUnrankedAutomaton, tree: Tree
) -> frozenset[Path]:
    """Figure 5 over cached subtree types (see :mod:`repro.perf`).

    Same query as :func:`two_phase_evaluate`, but states, contexts and
    selection decisions are computed once per *subtree type* — nodes whose
    label and hashed child-type tuple repeat (common in document trees)
    reuse the sibling-word summaries, and the caches persist across calls
    on the same automaton.
    """
    from ..perf.trees import fast_evaluate_marked

    return fast_evaluate_marked(d, tree)
