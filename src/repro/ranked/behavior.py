"""Behavior functions of two-way ranked tree automata (Definition 4.6).

The executable content of Lemma 4.7: the query computed by a QA^r is
determined by *local* data —

* the behavior function ``f^A_{t_v} : Q → Q`` of every subtree, computable
  bottom-up (a leaf's function depends only on its label; an inner node's
  only on its children's functions and the labels involved);
* the sets ``Assumed^A(t, v)`` of states the run assumes at each node,
  computable top-down from the behavior functions.

This yields a linear-time query evaluator
(:func:`evaluate_query_via_behavior`) whose agreement with the direct
cut-simulation of :mod:`repro.ranked.twoway` is property-tested — that
agreement *is* Lemma 4.7, and the same data drives the decision procedures
of Section 6.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..strings.dfa import AutomatonError
from ..strings.twoway import NonTerminatingRunError
from ..trees.tree import Path, Tree
from .twoway import RankedQueryAutomaton, TwoWayRankedAutomaton

State = Hashable

#: A behavior function: partial map from states to states.
BehaviorFunction = dict[State, State]


def states_closure(behavior: BehaviorFunction, state: State) -> list[State]:
    """``States(f, q)``: the orbit of ``q`` under ``f`` in iteration order.

    Stops at a fixed point (an up-ready state) or where ``f`` is undefined;
    a proper cycle raises (the automaton would not halt).
    """
    orbit = [state]
    seen = {state}
    current = state
    while current in behavior:
        nxt = behavior[current]
        if nxt == current:
            break
        if nxt in seen:
            raise NonTerminatingRunError(f"behavior cycles from state {state!r}")
        orbit.append(nxt)
        seen.add(nxt)
        current = nxt
    return orbit


def up_state(behavior: BehaviorFunction, state: State) -> State | None:
    """``up(f, q)``: the unique fixed point reachable from ``q``, if any.

    The state in which the node makes its up transition when entered in
    state ``q``; ``None`` when the excursion gets stuck instead.
    """
    orbit = states_closure(behavior, state)
    last = orbit[-1]
    if behavior.get(last) == last:
        return last
    return None


def behavior_functions(
    automaton: TwoWayRankedAutomaton, tree: Tree
) -> dict[Path, BehaviorFunction]:
    """``f^A_{t_v}`` for every node, computed bottom-up (Lemma 4.7 items 1–2)."""
    functions: dict[Path, BehaviorFunction] = {}
    for path in tree.postorder():
        node = tree.subtree(path)
        label = node.label
        behavior: BehaviorFunction = {}
        for state in automaton.states:
            pair = (state, label)
            if pair in automaton.up_pairs:
                behavior[state] = state
            elif pair in automaton.down_pairs:
                if not node.children:
                    target = automaton.delta_leaf.get(pair)
                    if target is not None:
                        behavior[state] = target
                else:
                    arity = len(node.children)
                    down = automaton.delta_down.get((state, label, arity))
                    if down is None:
                        continue
                    word: list[tuple[State, Hashable]] = []
                    ok = True
                    for i, child_state in enumerate(down):
                        child_path = path + (i,)
                        child_up = up_state(functions[child_path], child_state)
                        if child_up is None:
                            ok = False
                            break
                        word.append((child_up, node.children[i].label))
                    if not ok:
                        continue
                    target = automaton.delta_up.get(tuple(word))
                    if target is not None:
                        behavior[state] = target
        functions[path] = behavior
    return functions


def root_trajectory(
    automaton: TwoWayRankedAutomaton,
    tree: Tree,
    root_behavior: BehaviorFunction,
) -> tuple[list[State], State | None]:
    """States assumed at the root and the state the run halts in at the root.

    Interleaves the root behavior function (excursions into the tree) with
    ``δ_root`` (which may re-fire on U states).  Returns ``(assumed,
    halting)``; ``halting`` is ``None`` when the run gets stuck *inside*
    the tree instead of at the root (then the final cut is not {root} and
    the tree is rejected, Definition 4.1's acceptance).
    """
    root_label = tree.label_at(())
    arity = tree.arity_at(())
    assumed: list[State] = []
    seen: set[State] = set()
    state = automaton.initial
    while True:
        if state in seen:
            raise NonTerminatingRunError("root trajectory cycles")
        seen.add(state)
        assumed.append(state)
        pair = (state, root_label)
        if pair in automaton.down_pairs:
            if state in root_behavior:
                state = root_behavior[state]
                continue
            # f undefined: either no transition fires at the root at all
            # (halt at the root in this state) or the down transition fires
            # but the excursion dies inside (final cut ≠ {root}).
            fires = (
                pair in automaton.delta_leaf
                if arity == 0
                else (state, root_label, arity) in automaton.delta_down
            )
            return assumed, (None if fires else state)
        if pair in automaton.up_pairs:
            target = automaton.delta_root.get(pair)
            if target is None:
                return assumed, state  # halt at the root
            state = target
            continue
        return assumed, state  # no transition at all: halt at the root


def assumed_sets(
    automaton: TwoWayRankedAutomaton,
    tree: Tree,
    functions: dict[Path, BehaviorFunction] | None = None,
) -> tuple[dict[Path, set[State]], State | None]:
    """``Assumed^A(t, v)`` for every node plus the root halting state.

    Items (3)–(4) of Lemma 4.7: the root's set comes from closing the
    start state under ``f`` and ``δ_root``; a child's set collects the
    orbits of the states its parent's down transitions hand it.
    """
    if functions is None:
        functions = behavior_functions(automaton, tree)
    assumed: dict[Path, set[State]] = {path: set() for path in tree.nodes()}

    root_states, halting = root_trajectory(automaton, tree, functions[()])
    assumed[()] = set(root_states)

    for path in tree.nodes():
        node = tree.subtree(path)
        arity = len(node.children)
        if arity == 0:
            continue
        label = node.label
        for parent_state in assumed[path]:
            down = automaton.delta_down.get((parent_state, label, arity))
            if down is None:
                continue
            for i, child_state in enumerate(down):
                child_path = path + (i,)
                assumed[child_path].update(
                    states_closure(functions[child_path], child_state)
                )
    return assumed, halting


def evaluate_query_via_behavior(
    qa: RankedQueryAutomaton, tree: Tree
) -> frozenset[Path]:
    """Linear-time QA^r evaluation from the Lemma 4.7 data.

    Agrees with :meth:`RankedQueryAutomaton.evaluate` (the direct cut
    simulation) on every halting automaton — the executable Lemma 4.7.
    """
    automaton = qa.automaton
    if not tree.is_ranked(automaton.max_rank):
        raise AutomatonError(f"input tree exceeds rank {automaton.max_rank}")
    functions = behavior_functions(automaton, tree)
    assumed, halting = assumed_sets(automaton, tree, functions)
    if halting is None or halting not in automaton.accepting:
        return frozenset()
    selected: set[Path] = set()
    for path in tree.nodes():
        label = tree.label_at(path)
        if any((state, label) in qa.selecting for state in assumed[path]):
            selected.add(path)
    return frozenset(selected)
