"""Command-line interface: query XML documents with patterns.

Usage::

    python -m repro.cli query DOCUMENT.xml "//author" [--dtd SCHEMA.dtd]
    python -m repro.cli validate DOCUMENT.xml SCHEMA.dtd
    python -m repro.cli tree DOCUMENT.xml            # show the abstraction
    python -m repro.cli decide emptiness SCHEMA.dtd "//author"
    python -m repro.cli decide containment SCHEMA.dtd "/book/author" "//author"

The query subcommand parses the document (optionally validating it),
compiles the pattern through MSO to a deterministic tree automaton, and
prints each matched node's path and serialized subtree — the paper's
"locating subtrees satisfying some pattern" as a shell tool.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.pipeline import Document, ValidationError
from .trees.dtd import parse_dtd
from .trees.xml import serialize


def _load_document(path: str, dtd_path: str | None) -> Document:
    text = Path(path).read_text()
    dtd = parse_dtd(Path(dtd_path).read_text()) if dtd_path else None
    return Document.from_text(text, dtd)


def cmd_query(args: argparse.Namespace) -> int:
    """Run a pattern query and print the matched subdocuments."""
    try:
        document = _load_document(args.document, args.dtd)
    except ValidationError as error:
        print(f"validation failed: {error}", file=sys.stderr)
        return 2
    paths = document.select(args.pattern)
    for path in paths:
        element = document.element_at(path)
        rendered = (
            serialize(element) if not isinstance(element, str) else repr(element)
        )
        location = "/" + "/".join(map(str, path)) if path else "/"
        print(f"{location}:")
        for line in rendered.splitlines():
            print(f"  {line}")
    print(f"-- {len(paths)} match(es)", file=sys.stderr)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a document against a DTD; print per-node violations."""
    text = Path(args.document).read_text()
    dtd = parse_dtd(Path(args.dtd).read_text())
    from .trees.xml import parse_to_tree

    tree = parse_to_tree(text)
    problems = dtd.violations(tree)
    if not problems:
        print("valid")
        return 0
    for path, message in problems:
        location = "/" + "/".join(map(str, path)) if path else "/"
        print(f"{location}: {message}")
    return 1


def cmd_tree(args: argparse.Namespace) -> int:
    """Print the document's tree abstraction with node paths."""
    document = _load_document(args.document, None)

    def render(path=(), indent=0):
        node = document.tree.subtree(path)
        print("  " * indent + node.label + "  " + "/" + "/".join(map(str, path)))
        for index in range(len(node.children)):
            render(path + (index,), indent + 1)

    render()
    return 0


def _render_tree(tree) -> str:
    if not tree.children:
        return str(tree.label)
    inner = ", ".join(_render_tree(child) for child in tree.children)
    return f"{tree.label}({inner})"


def cmd_decide(args: argparse.Namespace) -> int:
    """Decide emptiness/containment of pattern queries over a DTD.

    ``emptiness`` takes one pattern; ``containment`` takes two and asks
    whether every node the first selects (on DTD-valid documents) is
    selected by the second.  Exit codes: 0 = empty/contained, 1 = a
    witness/counterexample was found (and printed), 2 = budget exceeded.
    """
    from .decision.closure import BudgetExceededError
    from .decision.patterns import (
        pattern_containment_counterexample,
        pattern_query_witness,
    )

    dtd = parse_dtd(Path(args.dtd).read_text())
    expected = 1 if args.mode == "emptiness" else 2
    if len(args.patterns) != expected:
        print(
            f"{args.mode} takes exactly {expected} pattern(s)", file=sys.stderr
        )
        return 2
    try:
        if args.mode == "emptiness":
            result = pattern_query_witness(
                args.patterns[0], dtd, budget=args.budget
            )
            verdict = "empty"
        else:
            result = pattern_containment_counterexample(
                args.patterns[0], args.patterns[1], dtd, budget=args.budget
            )
            verdict = "contained"
    except BudgetExceededError as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        return 2
    if result is None:
        print(verdict)
        return 0
    tree, path = result
    location = "/" + "/".join(map(str, path)) if path else "/"
    print(f"witness: {_render_tree(tree)}")
    print(f"marked node: {location}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line tool."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Query automata over XML documents"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a pattern query")
    query.add_argument("document", help="path to the XML document")
    query.add_argument("pattern", help='pattern, e.g. "//author" or "/book/title"')
    query.add_argument("--dtd", help="optional DTD to validate against")
    query.set_defaults(func=cmd_query)

    validate = subparsers.add_parser("validate", help="validate against a DTD")
    validate.add_argument("document")
    validate.add_argument("dtd")
    validate.set_defaults(func=cmd_validate)

    tree = subparsers.add_parser("tree", help="print the tree abstraction")
    tree.add_argument("document")
    tree.set_defaults(func=cmd_tree)

    decide = subparsers.add_parser(
        "decide", help="decide pattern-query emptiness/containment over a DTD"
    )
    decide.add_argument("mode", choices=["emptiness", "containment"])
    decide.add_argument("dtd", help="path to the DTD")
    decide.add_argument(
        "patterns",
        nargs="+",
        help="one pattern (emptiness) or two (containment: first ⊆ second)",
    )
    decide.add_argument(
        "--budget",
        type=int,
        default=None,
        help="cap on the decision product's size (exit 2 when exceeded)",
    )
    decide.set_defaults(func=cmd_decide)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
