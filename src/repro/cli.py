"""Command-line interface: query XML documents with patterns.

Usage::

    python -m repro.cli query DOCUMENT.xml "//author" [--dtd SCHEMA.dtd]
    python -m repro.cli query A.xml B.xml C.xml "//author" --jobs 4
    python -m repro.cli query DOCUMENT.xml --xpath "//book[author and year]"
    python -m repro.cli query DOCUMENT.xml --mso "lab_author(x)"
    python -m repro.cli validate DOCUMENT.xml SCHEMA.dtd
    python -m repro.cli tree DOCUMENT.xml            # show the abstraction
    python -m repro.cli decide emptiness SCHEMA.dtd "//author"
    python -m repro.cli decide containment SCHEMA.dtd "/book/author" "//author"
    python -m repro.cli profile                      # instrumented workload

The query subcommand parses the document(s) (optionally validating
them), compiles the pattern through MSO to a deterministic tree
automaton, and prints each matched node's path and serialized subtree —
the paper's "locating subtrees satisfying some pattern" as a shell
tool.  The trailing positional is a legacy pattern; ``--xpath`` and
``--mso`` take the :mod:`repro.lang` surface syntaxes instead (grammar
reference: ``docs/QUERY_LANGUAGE.md``).  With several documents,
``--jobs N`` shards them across ``N`` worker processes (``--jobs 1``
stays entirely in-process); results are identical to the serial run.  ``--engine {naive,table,numpy}`` picks the
per-tree evaluator — the uncached oracles, the interned-dict default,
or the vectorized numpy kernel (which silently degrades to the default
when numpy is not installed).

``query`` and ``decide`` accept ``--stats``: the run executes under a
recording :mod:`repro.obs` sink and the report (counters, gauges, spans,
cache snapshots) is printed as JSON on stderr, leaving stdout untouched.
``profile`` runs a workload — a document/pattern of your choosing, or
the built-in suite spanning every engine — and emits the report as JSON
on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import obs
from .core.pipeline import Document, ValidationError
from .trees.dtd import parse_dtd
from .trees.xml import serialize


def _load_document(path: str, dtd_path: str | None) -> Document:
    text = Path(path).read_text()
    dtd = parse_dtd(Path(dtd_path).read_text()) if dtd_path else None
    return Document.from_text(text, dtd)


def _apply_compile_cache(args: argparse.Namespace) -> None:
    """Honor a subcommand's ``--compile-cache DIR`` flag.

    Points the content-addressed compile cache's on-disk layer
    (:func:`repro.perf.compile.set_disk_cache`) at the directory, so
    formula compilations persist across process runs; hits/misses appear
    under the ``compile.*`` counters in ``--stats`` reports.
    """
    directory = getattr(args, "compile_cache", None)
    if directory is not None:
        from .perf.compile import set_disk_cache

        set_disk_cache(directory)


def _with_stats(args: argparse.Namespace, run) -> int:
    """Run ``run()``, honoring the subcommand's ``--stats`` flag.

    With ``--stats`` the call executes under a recording sink and the
    report lands on stderr as JSON — even when ``run()`` raises, so a
    failed decision procedure still shows how far it got.
    """
    if not getattr(args, "stats", False):
        return run()
    stats = obs.Stats()
    report_head = {}
    if getattr(args, "engine", None) is not None:
        report_head["engine"] = args.engine
    try:
        with obs.collecting(stats):
            with stats.span(f"cli.{args.command}"):
                return run()
    finally:
        json.dump(
            {**report_head, **stats.report()},
            sys.stderr,
            indent=2,
            default=repr,
        )
        print(file=sys.stderr)


def _query_flags_pattern(args: argparse.Namespace) -> str | None:
    """The prefixed query string from ``--xpath``/``--mso``, if either given."""
    if getattr(args, "xpath", None) is not None:
        return "xpath:" + args.xpath
    if getattr(args, "mso", None) is not None:
        return "mso:" + args.mso
    return None


def cmd_query(args: argparse.Namespace) -> int:
    """Run a pattern query and print the matched subdocuments."""
    return _with_stats(args, lambda: _run_query(args))


def _stream_query(args, names, documents, pattern) -> int:
    """``--stream``: one NDJSON line per match, as it is enumerated.

    Each document streams through ``Document.select_iter`` (the
    constant-delay enumeration path), so the first line appears before
    the full answer set is known and ``--limit`` stops the traversal —
    never materializing the rest.
    """
    total = 0
    for name, document in zip(names, documents):
        for path in document.select_iter(
            pattern, engine=args.engine, limit=args.limit
        ):
            print(json.dumps({"doc": name, "path": list(path)}))
            total += 1
    print(f"-- {total} match(es)", file=sys.stderr)
    return 0


def _run_query(args: argparse.Namespace) -> int:
    _apply_compile_cache(args)
    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 0:
        print(f"--limit must be >= 0, got {args.limit}", file=sys.stderr)
        return 2
    pattern = _query_flags_pattern(args)
    names = list(args.documents)
    if pattern is None:
        # Without --xpath/--mso the query is the trailing positional.
        if len(names) < 2:
            print(
                "missing query: add a pattern after the document(s), "
                "or pass --xpath/--mso",
                file=sys.stderr,
            )
            return 2
        pattern = names.pop()
    documents = []
    for name in names:
        try:
            documents.append(_load_document(name, args.dtd))
        except ValidationError as error:
            print(f"validation failed: {name}: {error}", file=sys.stderr)
            return 2
    from .core.patterns import PatternError
    from .lang import QuerySyntaxError

    try:
        if args.stream:
            return _stream_query(args, names, documents, pattern)
        if len(documents) == 1 and args.jobs in (None, 1):
            # The historical single-document path (pipeline.selects counter).
            results = [
                documents[0].select(
                    pattern, engine=args.engine, limit=args.limit
                )
            ]
        else:
            from .core.pipeline import batch_select

            results = batch_select(
                documents,
                pattern,
                jobs=args.jobs,
                engine=args.engine,
                limit=args.limit,
            )
    except (PatternError, QuerySyntaxError) as error:
        print(f"invalid query: {error}", file=sys.stderr)
        return 2
    total = 0
    for name, document, paths in zip(names, documents, results):
        if len(documents) > 1:
            print(f"== {name}")
        for path in paths:
            element = document.element_at(path)
            rendered = (
                serialize(element)
                if not isinstance(element, str)
                else repr(element)
            )
            location = "/" + "/".join(map(str, path)) if path else "/"
            print(f"{location}:")
            for line in rendered.splitlines():
                print(f"  {line}")
        total += len(paths)
    print(f"-- {total} match(es)", file=sys.stderr)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a document against a DTD; print per-node violations."""
    text = Path(args.document).read_text()
    dtd = parse_dtd(Path(args.dtd).read_text())
    from .trees.xml import parse_to_tree

    tree = parse_to_tree(text)
    problems = dtd.violations(tree)
    if not problems:
        print("valid")
        return 0
    for path, message in problems:
        location = "/" + "/".join(map(str, path)) if path else "/"
        print(f"{location}: {message}")
    return 1


def cmd_tree(args: argparse.Namespace) -> int:
    """Print the document's tree abstraction with node paths."""
    document = _load_document(args.document, None)

    def render(path=(), indent=0):
        node = document.tree.subtree(path)
        print("  " * indent + node.label + "  " + "/" + "/".join(map(str, path)))
        for index in range(len(node.children)):
            render(path + (index,), indent + 1)

    render()
    return 0


def _render_tree(tree) -> str:
    if not tree.children:
        return str(tree.label)
    inner = ", ".join(_render_tree(child) for child in tree.children)
    return f"{tree.label}({inner})"


def cmd_decide(args: argparse.Namespace) -> int:
    """Decide emptiness/containment of pattern queries over a DTD.

    ``emptiness`` takes one pattern; ``containment`` takes two and asks
    whether every node the first selects (on DTD-valid documents) is
    selected by the second.  Exit codes: 0 = empty/contained, 1 = a
    witness/counterexample was found (and printed), 2 = budget exceeded.
    """
    return _with_stats(args, lambda: _run_decide(args))


def _run_decide(args: argparse.Namespace) -> int:
    _apply_compile_cache(args)
    from .decision.closure import BudgetExceededError
    from .decision.patterns import (
        pattern_containment_counterexample,
        pattern_query_witness,
    )

    dtd = parse_dtd(Path(args.dtd).read_text())
    expected = 1 if args.mode == "emptiness" else 2
    if len(args.patterns) != expected:
        print(
            f"{args.mode} takes exactly {expected} pattern(s)", file=sys.stderr
        )
        return 2
    try:
        if args.mode == "emptiness":
            result = pattern_query_witness(
                args.patterns[0], dtd, budget=args.budget
            )
            verdict = "empty"
        else:
            result = pattern_containment_counterexample(
                args.patterns[0], args.patterns[1], dtd, budget=args.budget
            )
            verdict = "contained"
    except BudgetExceededError as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        return 2
    if result is None:
        print(verdict)
        return 0
    tree, path = result
    location = "/" + "/".join(map(str, path)) if path else "/"
    print(f"witness: {_render_tree(tree)}")
    print(f"marked node: {location}")
    return 1


def _profile_strings(stats: "obs.Stats") -> None:
    """Exercise the Theorem 3.9 fast path: sweeps and table interning."""
    import random

    from .perf import fast_evaluate
    from .strings.examples import (
        multi_sweep_query_automaton,
        odd_ones_query_automaton,
    )

    rng = random.Random(1999)
    words = ["".join(rng.choice("01") for _ in range(64)) for _ in range(8)]
    with stats.span("profile.strings"):
        for qa in (odd_ones_query_automaton(), multi_sweep_query_automaton(4)):
            for word in words:
                fast_evaluate(qa, word)


def _profile_pipeline(stats: "obs.Stats") -> None:
    """Exercise the XML pipeline: repeated selects hit the pattern LRU."""
    from .core.pipeline import pattern_cache_clear
    from .trees.dtd import BIBLIOGRAPHY_DTD
    from .trees.xml import BIBLIOGRAPHY_EXAMPLE

    with stats.span("profile.pipeline"):
        pattern_cache_clear()
        document = Document.from_text(
            BIBLIOGRAPHY_EXAMPLE, parse_dtd(BIBLIOGRAPHY_DTD)
        )
        for _ in range(3):
            document.select("//author")
            document.select("/book/title")


def _profile_decision(stats: "obs.Stats", budget: int | None) -> None:
    """Exercise the Theorem 6.3/6.4 closure: scans and subsumption prunes."""
    from .decision.closure import containment_counterexample, query_witness
    from .unranked.examples import circuit_query_automaton
    from .unranked.twoway import UnrankedQueryAutomaton

    kwargs = {} if budget is None else {"budget": budget}
    full = circuit_query_automaton()
    gates_only = UnrankedQueryAutomaton(
        full.automaton,
        frozenset(pair for pair in full.selecting if pair[0] != "u"),
    )
    with stats.span("profile.decision"):
        query_witness(full, **kwargs)
        containment_counterexample(full, gates_only, **kwargs)


def _profile_parallel(stats: "obs.Stats", jobs: int) -> None:
    """Exercise the sharded executor over a small bibliography corpus.

    ``jobs=1`` runs the serial fast path (no pool, no ``parallel.*``
    counters); ``jobs>1`` spawns workers and merges their snapshots.
    """
    from .core.pipeline import Corpus
    from .trees.xml import make_bibliography

    with stats.span("profile.parallel"):
        corpus = Corpus.from_texts(
            make_bibliography(4, 4 + offset) for offset in range(6)
        )
        corpus.select("//author", jobs=jobs)


def _profile_document(stats: "obs.Stats", args: argparse.Namespace) -> None:
    """Profile a user-supplied document/pattern workload."""
    with stats.span("profile.pipeline"):
        document = _load_document(args.document, args.dtd)
        if args.jobs is not None and args.jobs != 1:
            from .core.pipeline import Corpus

            corpus = Corpus([document] * args.repeat)
            corpus.select(
                args.pattern,
                jobs=args.jobs,
                alphabet=document.alphabet,
                engine=args.engine,
            )
        else:
            for _ in range(args.repeat):
                document.select(args.pattern, engine=args.engine)


def cmd_profile(args: argparse.Namespace) -> int:
    """Run an instrumented workload; print the obs report as JSON.

    With ``--document``/``--pattern``, profiles that query (``--repeat``
    times, so cache behavior across repeated selects is visible).
    Without arguments, runs the built-in suite: string sweeps, the XML
    pipeline, and the packed decision procedures — every counter family
    of the metrics glossary shows up nonzero.
    """
    from .core.patterns import PatternError
    from .decision.closure import BudgetExceededError
    from .lang import QuerySyntaxError

    flagged = _query_flags_pattern(args)
    if flagged is not None:
        args.pattern = flagged
    if bool(args.document) != bool(args.pattern):
        print(
            "--document goes with one of --pattern/--xpath/--mso",
            file=sys.stderr,
        )
        return 2
    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    _apply_compile_cache(args)
    stats = obs.Stats()
    code = 0
    try:
        with obs.collecting(stats), stats.span("profile.total"):
            if args.document:
                _profile_document(stats, args)
            else:
                _profile_strings(stats)
                _profile_pipeline(stats)
                _profile_decision(stats, args.budget)
                if args.jobs is not None:
                    _profile_parallel(stats, args.jobs)
    except BudgetExceededError as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        code = 2
    except (PatternError, QuerySyntaxError) as error:
        print(f"invalid query: {error}", file=sys.stderr)
        return 2
    workload = (
        {"kind": "document", "document": args.document,
         "pattern": args.pattern, "repeat": args.repeat}
        if args.document
        else {"kind": "builtin"}
    )
    if args.jobs is not None:
        workload["jobs"] = args.jobs
    if args.engine is not None:
        workload["engine"] = args.engine
    json.dump(
        {"workload": workload, **stats.report()},
        sys.stdout,
        indent=2,
        default=repr,
    )
    print()
    return code


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on query server (stdio by default, or TCP/HTTP).

    The server keeps every compile/engine cache warm across requests and
    serves the newline-delimited JSON protocol of ``docs/SERVE.md``:
    load/replace/delete mutate named documents (selections after an edit
    are incremental), ``query`` admits ``xpath:``/``mso:``/legacy
    strings with per-request step/time budgets, and ``stats`` exports
    the lifetime :mod:`repro.obs` report with p50/p99 latency gauges.
    """
    import asyncio

    _apply_compile_cache(args)
    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    from .serve import DocumentStore, QueryServer

    store = DocumentStore()
    for spec in args.preload or ():
        name, _, path = spec.partition("=")
        if not path:
            print(
                f"--preload takes NAME=FILE.xml, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        dtd = parse_dtd(Path(args.dtd).read_text()) if args.dtd else None
        store.load(name, Path(path).read_text(), dtd)
    server = QueryServer(
        store,
        engine=args.engine,
        verify=args.verify,
        budget_steps=args.budget_steps,
        budget_ms=args.budget_ms,
        batch_window=args.batch_window / 1000.0,
        jobs=args.jobs,
    )

    async def run() -> None:
        if args.tcp is not None:
            host, port = await server.start_tcp(args.host, args.tcp)
            print(f"serving on {host}:{port}", file=sys.stderr, flush=True)
            await server.wait_closed()
        else:
            await server.run_stdio()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    if args.stats:
        json.dump(
            server.stats_report(), sys.stderr, indent=2, default=repr
        )
        print(file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line tool."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Query automata over XML documents"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a pattern query")
    query.add_argument(
        "documents",
        nargs="+",
        metavar="document",
        help="path(s) to the XML document(s), followed by the legacy "
        'pattern (e.g. "//author") unless --xpath/--mso is given',
    )
    how = query.add_mutually_exclusive_group()
    how.add_argument(
        "--xpath",
        metavar="QUERY",
        help="XPath query string (see docs/QUERY_LANGUAGE.md), "
        "instead of a trailing pattern",
    )
    how.add_argument(
        "--mso",
        metavar="FORMULA",
        help="MSO formula with one free node variable (see "
        "docs/QUERY_LANGUAGE.md), instead of a trailing pattern",
    )
    query.add_argument("--dtd", help="optional DTD to validate against")
    query.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard documents across N worker processes "
        "(1 = serial, bypasses the pool; default: serial)",
    )
    query.add_argument(
        "--engine",
        choices=["naive", "table", "numpy"],
        default=None,
        help="per-tree evaluator: naive (uncached oracles), table "
        "(interned-dict default), numpy (vectorized kernel; degrades "
        "to table without numpy)",
    )
    query.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="stop after the first N matches per document (streams via "
        "constant-delay enumeration on the single-document path)",
    )
    query.add_argument(
        "--stream",
        action="store_true",
        help="emit one NDJSON object per match as it is enumerated "
        '({"doc": ..., "path": [...]}), instead of serialized subtrees',
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print an obs metrics report (JSON) on stderr",
    )
    query.add_argument(
        "--compile-cache",
        metavar="DIR",
        default=None,
        help="persist compiled automata in DIR (content-addressed)",
    )
    query.set_defaults(func=cmd_query)

    validate = subparsers.add_parser("validate", help="validate against a DTD")
    validate.add_argument("document")
    validate.add_argument("dtd")
    validate.set_defaults(func=cmd_validate)

    tree = subparsers.add_parser("tree", help="print the tree abstraction")
    tree.add_argument("document")
    tree.set_defaults(func=cmd_tree)

    decide = subparsers.add_parser(
        "decide", help="decide pattern-query emptiness/containment over a DTD"
    )
    decide.add_argument("mode", choices=["emptiness", "containment"])
    decide.add_argument("dtd", help="path to the DTD")
    decide.add_argument(
        "patterns",
        nargs="+",
        help="one pattern (emptiness) or two (containment: first ⊆ second)",
    )
    decide.add_argument(
        "--budget",
        type=int,
        default=None,
        help="cap on the decision product's size (exit 2 when exceeded)",
    )
    decide.add_argument(
        "--stats",
        action="store_true",
        help="print an obs metrics report (JSON) on stderr",
    )
    decide.add_argument(
        "--compile-cache",
        metavar="DIR",
        default=None,
        help="persist compiled automata in DIR (content-addressed)",
    )
    decide.set_defaults(func=cmd_decide)

    profile = subparsers.add_parser(
        "profile",
        help="run an instrumented workload and print its obs report as JSON",
    )
    profile.add_argument(
        "--document", help="XML document to profile (default: built-in suite)"
    )
    workload = profile.add_mutually_exclusive_group()
    workload.add_argument(
        "--pattern", help="pattern to select repeatedly (with --document)"
    )
    workload.add_argument(
        "--xpath",
        metavar="QUERY",
        help="XPath query to select repeatedly (with --document)",
    )
    workload.add_argument(
        "--mso",
        metavar="FORMULA",
        help="MSO query to select repeatedly (with --document)",
    )
    profile.add_argument("--dtd", help="optional DTD for --document")
    profile.add_argument(
        "--repeat",
        type=int,
        default=10,
        help="times to repeat the --document select (default: 10)",
    )
    profile.add_argument(
        "--budget",
        type=int,
        default=None,
        help="step budget for the built-in decision workload",
    )
    profile.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="also profile the sharded executor with N worker processes "
        "(1 = serial fast path)",
    )
    profile.add_argument(
        "--engine",
        choices=["naive", "table", "numpy"],
        default=None,
        help="per-tree evaluator for the --document workload "
        "(naive/table/numpy)",
    )
    profile.add_argument(
        "--compile-cache",
        metavar="DIR",
        default=None,
        help="persist compiled automata in DIR (content-addressed)",
    )
    profile.set_defaults(func=cmd_profile)

    serve = subparsers.add_parser(
        "serve",
        help="run the always-on NDJSON query server (see docs/SERVE.md)",
    )
    serve.add_argument(
        "--tcp",
        type=int,
        metavar="PORT",
        default=None,
        help="listen on TCP (also speaks plain HTTP); default: stdio",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --tcp (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--preload",
        action="append",
        metavar="NAME=FILE.xml",
        help="load a document into the store at startup (repeatable)",
    )
    serve.add_argument(
        "--dtd", help="optional DTD to validate --preload documents against"
    )
    serve.add_argument(
        "--engine",
        choices=["naive", "table", "numpy"],
        default=None,
        help="default per-tree evaluator (requests may override)",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="re-check every incremental select against the one-shot path",
    )
    serve.add_argument(
        "--budget-steps",
        type=int,
        default=None,
        help="default per-request node budget (requests may override)",
    )
    serve.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        help="default per-request time budget in ms (requests may override)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="MS",
        help="how long to hold a query for same-query batching "
        "(default: 0 = next event-loop tick)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard batched inline-document queries across N workers",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print the lifetime obs report (JSON) on stderr at exit",
    )
    serve.add_argument(
        "--compile-cache",
        metavar="DIR",
        default=None,
        help="persist compiled automata in DIR (content-addressed)",
    )
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
