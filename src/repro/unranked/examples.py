"""The paper's unranked worked examples: Example 5.9 and Example 5.14.

* Example 5.9 — a QA^u over unbounded-fanin AND/OR circuits selecting all
  gates whose subcircuit evaluates to 1, via the states ``all_one``,
  ``all_zero``, ``mixed``.
* Example 5.14 — the SQA^u computing Proposition 5.10's query "select all
  1-labeled leaves with no 1-labeled left sibling", which no plain QA^u
  can compute.  One stay transition per node suffices: the stay GSQA scans
  the children and crowns the first 1-labeled one.
"""

from __future__ import annotations

from ..strings.dfa import DFA
from ..strings.simple_regex import constant_sequence
from ..strings.twoway import GeneralizedStringQA, LEFT_MARKER, TwoWayDFA
from .twoway import (
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    up_classifier_from_languages,
)

_OPS = ("AND", "OR")
_BITS = ("0", "1")
_SIGMA = _OPS + _BITS


def _letters(states, labels):
    return frozenset((q, a) for q in states for a in labels)


def _letterwise_dfa(pair_alphabet, allowed) -> DFA:
    """DFA for ``allowed⁺`` (nonempty words of allowed letters)."""
    transitions = {}
    for pair in pair_alphabet:
        if pair in allowed:
            transitions[(0, pair)] = 1
            transitions[(1, pair)] = 1
    return DFA.build({0, 1}, pair_alphabet, transitions, 0, {1})


def circuit_query_automaton() -> UnrankedQueryAutomaton:
    """Example 5.9: select every gate whose subcircuit evaluates to 1.

    Exactly the paper's automaton; as with Example 4.4 we additionally let
    λ select 1-labeled leaves (visited in state ``u``) so the computed
    query matches the example's English statement on leaves too.
    """
    states = frozenset({"s", "u", "all_one", "all_zero", "mixed"})
    up_states = ("u", "all_one", "all_zero", "mixed")
    pair_alphabet = _letters(up_states, _SIGMA)

    # (3) L_↑(all_one): leaves must be 1, AND children all_one, OR children
    # all_one or mixed.
    one_allowed = (
        {("u", "1")}
        | {("all_one", "AND")}
        | {("all_one", "OR"), ("mixed", "OR")}
    )
    # (4) L_↑(all_zero): dually.
    zero_allowed = (
        {("u", "0")}
        | {("all_zero", "AND"), ("mixed", "AND")}
        | {("all_zero", "OR")}
    )
    one_dfa = _letterwise_dfa(pair_alphabet, one_allowed)
    zero_dfa = _letterwise_dfa(pair_alphabet, zero_allowed)
    # (5) L_↑(mixed) := U⁺ − (L_↑(all_one) ∪ L_↑(all_zero)).
    nonempty = _letterwise_dfa(pair_alphabet, pair_alphabet)
    mixed_dfa = nonempty.intersection(
        one_dfa.union(zero_dfa).complement()
    ).minimized()

    classifier = up_classifier_from_languages(
        {"all_one": one_dfa, "all_zero": zero_dfa, "mixed": mixed_dfa},
        None,
        pair_alphabet,
    )
    automaton = TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(_SIGMA),
        initial="s",
        accepting=states,  # F = Q
        up_pairs=pair_alphabet,
        down_pairs=_letters(("s",), _SIGMA),
        delta_leaf={("s", sigma): "u" for sigma in _SIGMA},
        delta_root={},
        up_classifier=classifier,
        down={("s", sigma): constant_sequence("s") for sigma in _SIGMA},
        stay_gsqa=None,
        stay_limit=0,
    )
    selecting = {("all_one", op) for op in _OPS}
    selecting |= {("mixed", "OR")}
    selecting |= {("u", "1")}
    return UnrankedQueryAutomaton(automaton, frozenset(selecting))


def circuit_reference_query(tree) -> frozenset:
    """Oracle for Example 5.9: nodes whose subcircuit evaluates to 1."""
    from ..trees.generators import evaluate_circuit

    return frozenset(
        path for path in tree.nodes() if evaluate_circuit(tree.subtree(path)) == 1
    )


def _first_one_gsqa(pair_alphabet) -> GeneralizedStringQA:
    """The stay GSQA of Example 5.14: output ``one`` at the first
    1-labeled position, ``up`` elsewhere (single left-to-right sweep)."""
    states = {"seek", "after"}
    right_moves = {("seek", LEFT_MARKER): "seek"}
    output = {}
    for pair in pair_alphabet:
        _state, label = pair
        if label == "1":
            right_moves[("seek", pair)] = "after"
            output[("seek", pair)] = "one"
        else:
            right_moves[("seek", pair)] = "seek"
            output[("seek", pair)] = "up"
        right_moves[("after", pair)] = "after"
        output[("after", pair)] = "up"
    automaton = TwoWayDFA.build(
        states, pair_alphabet, "seek", states, {}, right_moves
    )
    return GeneralizedStringQA(automaton, output, frozenset({"one", "up"}))


def first_one_sqa() -> UnrankedQueryAutomaton:
    """Example 5.14: the SQA^u selecting each node's first 1-labeled leaf child.

    Faithful to the paper: ``U_stay = ({stay} × Σ)⁺``, ``L_↑(up) =
    up* one up* + up*`` (over the state components), one stay per node.
    As in the paper's setting the automaton is intended for trees whose
    internal nodes have only-leaf or only-internal children (in particular
    the flat trees of Proposition 5.10); on other trees it gets stuck and
    rejects.
    """
    labels = ("0", "1")
    states = frozenset({"s", "stay", "up", "one"})
    up_states = ("stay", "up", "one")
    pair_alphabet = _letters(up_states, labels)

    stay_pairs = {("stay", label) for label in labels}
    stay_dfa = _letterwise_dfa(pair_alphabet, stay_pairs)

    # L_↑(up) = up* one up* | up⁺ over the state components.
    up_pairs_only = {("up", label) for label in labels}
    one_pairs = {("one", label) for label in labels}
    transitions = {}
    for pair in pair_alphabet:
        if pair in up_pairs_only:
            transitions[(0, pair)] = 1
            transitions[(1, pair)] = 1
            transitions[(2, pair)] = 2
        elif pair in one_pairs:
            transitions[(0, pair)] = 2
            transitions[(1, pair)] = 2
    up_dfa = DFA.build({0, 1, 2}, pair_alphabet, transitions, 0, {1, 2})

    classifier = up_classifier_from_languages(
        {"up": up_dfa}, stay_dfa, pair_alphabet
    )
    automaton = TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(labels),
        initial="s",
        accepting=states,  # F = Q
        up_pairs=pair_alphabet,
        down_pairs=_letters(("s",), labels),
        delta_leaf={("s", label): "stay" for label in labels},
        delta_root={},
        up_classifier=classifier,
        down={("s", label): constant_sequence("s") for label in labels},
        stay_gsqa=_first_one_gsqa(pair_alphabet),
        stay_limit=1,
    )
    selecting = frozenset(("one", label) for label in labels)
    return UnrankedQueryAutomaton(automaton, selecting)
