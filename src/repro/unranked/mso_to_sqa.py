"""Theorem 5.17: every MSO-definable unary query is computed by an SQA^u.

The construction realizes the Figure 6 algorithm with genuine SQA^u
machinery.  As in :mod:`repro.ranked.mso_to_qa`, the MSO formula is first
compiled to a deterministic bottom-up automaton ``D`` over the marked
alphabet; subtree states ``s_v`` play the role of the types
``τ(t_v, v)`` and context sets ``C_v ⊆ Q_D`` the role of ``τ(t̄_v, v)``.

Per node ``v`` with known context the automaton runs the paper's two
phases (each an instance of the §5.2 pebbling):

* **Round A (selection, Fig. 6 steps 1–4).**  ``δ_↓`` sends the first
  child into bottom-up evaluation by function states ``f : Σ → Q_D``
  while its siblings wait; a turnaround pebbles ``s_{v1}`` at the first
  child; the remaining subtrees evaluate in parallel; the closing up
  transition knows ``C``, ``σ_v`` and all the ``s_{vj}``, so it decides
  whether the *marked* transition lands in ``C`` — selecting ``v`` — and
  returns control to ``v``.
* **Round B (contexts, step 5).**  The subtree states are *recomputed*
  (the paper notes they were lost in Round A's up transition) by the same
  pebbling, and then the automaton makes its **single stay transition**:
  a GSQA built by Lemma 3.10 from a forward prefix-state DFA and a
  backward suffix-transition-function DFA reads the children word and
  hands every child its context ``C_{vj}`` in one pass.

A final ascent over finished subtrees returns the head to the root.

Like the paper's proof, the construction assumes inner nodes have at
least two children (monadic chains are reduced to the string case via
Lemma 3.10 in the paper; our general-arity query processor is
:func:`repro.unranked.dbta.evaluate_marked_query`).  Trees violating the
assumption make the run stick, rejecting the tree.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from ..logic.syntax import Formula, Var
from ..strings.dfa import DFA
from ..strings.hopcroft_ullman import reversed_hopcroft_ullman_gsqa
from ..strings.simple_regex import Branch, SimpleRegex
from ..trees.tree import Path, Tree
from ..unranked.dbta import DeterministicUnrankedAutomaton
from .twoway import (
    STAY,
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UP,
    UpClassifier,
)

State = Hashable
Label = Hashable
Context = frozenset

_DEAD = "dead"


class StrongQueryAutomatonBuilder:
    """Assembles the Theorem 5.17 SQA^u from a marked-alphabet DBTA^u."""

    def __init__(
        self, d: DeterministicUnrankedAutomaton, alphabet: Sequence[Label]
    ) -> None:
        self.d = d
        self.alphabet = tuple(alphabet)
        # Horizontal machinery of D per (label, bit).
        self.h0 = {sigma: d.classifiers[(sigma, 0)] for sigma in self.alphabet}
        self.h1 = {sigma: d.classifiers[(sigma, 1)] for sigma in self.alphabet}
        self.sigma_index = {sigma: i for i, sigma in enumerate(self.alphabet)}
        self.reachable = self._close_reachable()
        self.functions = self._close_functions()
        self.h_states = {
            sigma: sorted(self.h0[sigma].dfa.states, key=repr)
            for sigma in self.alphabet
        }
        self.h_index = {
            sigma: {h: i for i, h in enumerate(states)}
            for sigma, states in self.h_states.items()
        }
        self.monoid = self._close_monoid()
        self.contexts = self._close_contexts()

    # -- auxiliary closures ---------------------------------------------

    def _h0_step(self, sigma: Label, h, s) -> State:
        return self.h0[sigma].dfa.transitions[(h, s)]

    def _close_reachable(self) -> frozenset:
        """All D-states of unmarked subtrees (possible ``s_v`` values)."""
        reached: set = set()
        changed = True
        while changed:
            changed = False
            for sigma in self.alphabet:
                classifier = self.h0[sigma]
                h_seen = {classifier.dfa.initial}
                frontier = [classifier.dfa.initial]
                while frontier:
                    h = frontier.pop()
                    for s in list(reached):
                        nxt = classifier.dfa.transitions[(h, s)]
                        if nxt not in h_seen:
                            h_seen.add(nxt)
                            frontier.append(nxt)
                for h in h_seen:
                    s = classifier.classify[h]
                    if s not in reached:
                        reached.add(s)
                        changed = True
        return frozenset(reached)

    def _close_functions(self) -> frozenset[tuple]:
        """Reachable function states ``f : Σ → Q_D`` as tuples over Σ."""
        initial = tuple(
            self.h0[sigma].classify[self.h0[sigma].dfa.initial]
            for sigma in self.alphabet
        )
        # Track reachable tuples of per-σ horizontal states.
        init_tuple = tuple(self.h0[sigma].dfa.initial for sigma in self.alphabet)
        tuples = {init_tuple}
        frontier = [init_tuple]
        while frontier:
            current = frontier.pop()
            for s in self.reachable:
                nxt = tuple(
                    self._h0_step(sigma, h, s)
                    for sigma, h in zip(self.alphabet, current)
                )
                if nxt not in tuples:
                    tuples.add(nxt)
                    frontier.append(nxt)
        functions = {
            tuple(
                self.h0[sigma].classify[h]
                for sigma, h in zip(self.alphabet, current)
            )
            for current in tuples
        }
        functions.add(initial)
        return frozenset(functions)

    def _close_monoid(self) -> frozenset[tuple]:
        """The joint suffix-transition monoid: tuples, per σ, of maps
        ``h ↦ h'`` on the horizontal states, generated by
        ``left-extend by s`` for reachable ``s``."""
        identity = tuple(
            tuple(range(len(self.h_states[sigma]))) for sigma in self.alphabet
        )
        elements = {identity}
        frontier = [identity]
        while frontier:
            fn = frontier.pop()
            for s in self.reachable:
                extended = self._extend_fn(fn, s)
                if extended not in elements:
                    elements.add(extended)
                    frontier.append(extended)
        return frozenset(elements)

    def _apply_fn(self, sigma: Label, fn: tuple, h) -> State:
        index = self.sigma_index[sigma]
        return self.h_states[sigma][fn[index][self.h_index[sigma][h]]]

    def _extend_fn(self, fn: tuple, s) -> tuple:
        """Left-extend the joint function by one sibling state ``s``."""
        return tuple(
            tuple(
                fn_sigma[self.h_index[sigma][self._h0_step(sigma, h, s)]]
                for h in self.h_states[sigma]
            )
            for sigma, fn_sigma in zip(self.alphabet, fn)
        )

    def _identity_fn(self) -> tuple:
        return tuple(
            tuple(range(len(self.h_states[sigma]))) for sigma in self.alphabet
        )

    def _context_of(
        self, context: Context, sigma: Label, h, fn: tuple
    ) -> Context:
        """``C_{vj}`` from the parent data (prefix state ``h``, suffix
        function ``fn``): the D-states that, plugged at the position,
        classify into the parent context."""
        classifier = self.h0[sigma]
        return frozenset(
            q
            for q in self.d.states
            if classifier.classify[
                self._apply_fn(sigma, fn, self._h0_step(sigma, h, q))
            ]
            in context
        )

    def _close_contexts(self) -> frozenset[Context]:
        contexts = {frozenset(self.d.accepting)}
        frontier = list(contexts)
        while frontier:
            context = frontier.pop()
            for sigma in self.alphabet:
                for h in self.h_states[sigma]:
                    for fn in self.monoid:
                        child = self._context_of(context, sigma, h, fn)
                        if child not in contexts:
                            contexts.add(child)
                            frontier.append(child)
        return frozenset(contexts)

    # -- the SQA^u state vocabulary ---------------------------------------

    @staticmethod
    def down(context: Context):
        return ("down", context)

    @staticmethod
    def wait(round_tag: str, context: Context):
        return ("wait", round_tag, context)

    @staticmethod
    def turn(round_tag: str, context: Context, s1):
        return ("turn", round_tag, context, s1)

    @staticmethod
    def hold(round_tag: str, context: Context, s1, parent_label):
        return ("hold", round_tag, context, s1, parent_label)

    @staticmethod
    def round2(context: Context, flag: bool):
        return ("round2", context, flag)

    @staticmethod
    def func(f: tuple):
        return ("func", f)

    # -- assembly ---------------------------------------------------------

    def build(self) -> UnrankedQueryAutomaton:
        """Assemble the SQA^u (classifier, slender downs, stay GSQA, λ)."""
        alphabet = self.alphabet
        sigma_index = {sigma: i for i, sigma in enumerate(alphabet)}
        leaf_function = tuple(
            self.h0[sigma].classify[self.h0[sigma].dfa.initial]
            for sigma in alphabet
        )

        states: set = {"eval", "done_sel", "done_nosel", "ascend", _DEAD}
        down_pairs: set = set()
        up_pairs: set = set()
        delta_leaf: dict = {}
        down: dict = {}
        selecting: set = set()

        def add_down(state, sigma, branch: Branch):
            down_pairs.add((state, sigma))
            down[(state, sigma)] = SimpleRegex([branch])

        # Shared evaluation machinery.
        for sigma in alphabet:
            add_down("eval", sigma, Branch(("eval",), ("eval",), ()))
            down_pairs.add(("eval", sigma))
            delta_leaf[("eval", sigma)] = self.func(leaf_function)
        for f in self.functions:
            states.add(self.func(f))
            for sigma in alphabet:
                up_pairs.add((self.func(f), sigma))

        # Context-indexed states and their down transitions.
        for context in self.contexts:
            states.add(self.down(context))
            for tag in ("A", "B"):
                states.add(self.wait(tag, context))
                for sigma in alphabet:
                    up_pairs.add((self.wait(tag, context), sigma))
            for flag in (False, True):
                states.add(self.round2(context, flag))
            for sigma in alphabet:
                add_down(
                    self.down(context),
                    sigma,
                    Branch(
                        ("eval", self.wait("A", context)),
                        (self.wait("A", context),),
                        (),
                    ),
                )
                for flag in (False, True):
                    add_down(
                        self.round2(context, flag),
                        sigma,
                        Branch(
                            ("eval", self.wait("B", context)),
                            (self.wait("B", context),),
                            (),
                        ),
                    )
                marked_leaf = self.h1[sigma].classify[self.h1[sigma].dfa.initial]
                delta_leaf[(self.down(context), sigma)] = (
                    "done_sel" if marked_leaf in context else "done_nosel"
                )
            for s1 in self.reachable:
                for tag in ("A", "B"):
                    states.add(self.turn(tag, context, s1))
                    for sigma in alphabet:
                        states.add(self.hold(tag, context, s1, sigma))
                for sigma_parent in alphabet:
                    for tag in ("A", "B"):
                        add_down(
                            self.turn(tag, context, s1),
                            sigma_parent,
                            Branch(
                                (
                                    self.hold(tag, context, s1, sigma_parent),
                                    "eval",
                                ),
                                ("eval",),
                                (),
                            ),
                        )

        # The hold states carry the *parent's* label but sit at a child
        # whose own label can be anything: register all pairs.
        for context in self.contexts:
            for s1 in self.reachable:
                for tag in ("A", "B"):
                    for parent_label in alphabet:
                        state = self.hold(tag, context, s1, parent_label)
                        for child_label in alphabet:
                            up_pairs.add((state, child_label))

        for sigma in alphabet:
            for state in ("done_sel", "done_nosel", "ascend"):
                up_pairs.add((state, sigma))

        selecting.update(("done_sel", sigma) for sigma in alphabet)
        for context in self.contexts:
            for sigma in alphabet:
                selecting.add((self.round2(context, True), sigma))

        classifier = self._build_classifier(up_pairs)
        stay_gsqa = self._build_stay_gsqa()

        root_context: Context = frozenset(self.d.accepting)
        automaton = TwoWayUnrankedAutomaton(
            states=frozenset(states),
            alphabet=frozenset(alphabet),
            initial=self.down(root_context),
            accepting=frozenset({"ascend", "done_sel", "done_nosel"}),
            up_pairs=frozenset(up_pairs),
            down_pairs=frozenset(down_pairs),
            delta_leaf=delta_leaf,
            delta_root={},
            up_classifier=classifier,
            down=down,
            stay_gsqa=stay_gsqa,
            stay_limit=1,
        )
        return UnrankedQueryAutomaton(automaton, frozenset(selecting))

    # -- the up/stay classifier -------------------------------------------

    def _build_classifier(self, pair_alphabet: set) -> UpClassifier:
        """One DFA classifying every children word into its outcome.

        Patterns (inner nodes have ≥ 2 children):

        ========================================  =====================
        word shape                                 outcome
        ========================================  =====================
        ``func⁺``                                  up: combined ``func``
        ``func  waitA(C)⁺``                        up: ``turnA(C, s₁)``
        ``holdA(C,s₁,σᵥ)  func⁺``                  up: ``round2(C, flag)``
        ``func  waitB(C)⁺``                        up: ``turnB(C, s₁)``
        ``holdB(C,s₁,σᵥ)  func⁺``                  **stay**
        ``(done_sel|done_nosel|ascend)⁺``          up: ``ascend``
        ========================================  =====================
        """
        alphabet = self.alphabet

        def step(state: tuple, letter) -> tuple | None:
            q, child_label = letter
            kind = q[0] if isinstance(q, tuple) else q
            if state == ("start",):
                if kind == "func":
                    h_tuple = tuple(
                        self._h0_step(sigma, self.h0[sigma].dfa.initial, q[1][self.sigma_index[child_label]])
                        for sigma in alphabet
                    )
                    return ("amb", h_tuple, q[1][self.sigma_index[child_label]])
                if kind == "hold":
                    _tag, tag, context, s1, parent_label = q
                    if tag == "A":
                        h = self.h1[parent_label].dfa.transitions[
                            (self.h1[parent_label].dfa.initial, s1)
                        ]
                        return ("ra", context, parent_label, h)
                    return ("sb",)
                if kind in ("done_sel", "done_nosel", "ascend"):
                    return ("asc",)
                return None
            tag = state[0]
            if tag == "amb":
                _t, h_tuple, s1 = state
                if kind == "func":
                    s = q[1][self.sigma_index[child_label]]
                    return (
                        "comb",
                        tuple(
                            self._h0_step(sigma, h, s)
                            for sigma, h in zip(alphabet, h_tuple)
                        ),
                    )
                if kind == "wait":
                    _k, round_tag, context = q
                    return ("t" + round_tag.lower(), context, s1)
                return None
            if tag == "comb":
                if kind == "func":
                    s = q[1][self.sigma_index[child_label]]
                    return (
                        "comb",
                        tuple(
                            self._h0_step(sigma, h, s)
                            for sigma, h in zip(alphabet, state[1])
                        ),
                    )
                return None
            if tag in ("ta", "tb"):
                _t, context, s1 = state
                if kind == "wait" and q[1] == ("A" if tag == "ta" else "B") and q[2] == context:
                    return state
                return None
            if tag == "ra":
                _t, context, parent_label, h = state
                if kind == "func":
                    s = q[1][self.sigma_index[child_label]]
                    return (
                        "ra",
                        context,
                        parent_label,
                        self.h1[parent_label].dfa.transitions[(h, s)],
                    )
                return None
            if tag == "sb":
                return ("sb",) if kind == "func" else None
            if tag == "asc":
                return (
                    ("asc",)
                    if kind in ("done_sel", "done_nosel", "ascend")
                    else None
                )
            return None

        def outcome_of(state: tuple) -> tuple | None:
            tag = state[0]
            if tag in ("amb", "comb"):
                h_tuple = state[1]
                f = tuple(
                    self.h0[sigma].classify[h]
                    for sigma, h in zip(alphabet, h_tuple)
                )
                return (UP, self.func(f))
            if tag == "ta":
                return (UP, self.turn("A", state[1], state[2]))
            if tag == "tb":
                return (UP, self.turn("B", state[1], state[2]))
            if tag == "ra":
                _t, context, parent_label, h = state
                flag = self.h1[parent_label].classify[h] in context
                return (UP, self.round2(context, flag))
            if tag == "sb":
                return (STAY,)
            if tag == "asc":
                return (UP, "ascend")
            return None

        # BFS over reachable classifier states.
        initial = ("start",)
        dfa_states = {initial}
        transitions: dict[tuple, tuple] = {}
        outcome: dict[tuple, tuple] = {}
        frontier = [initial]
        while frontier:
            source = frontier.pop()
            for letter in pair_alphabet:
                target = step(source, letter)
                if target is None:
                    continue
                transitions[(source, letter)] = target
                if target not in dfa_states:
                    dfa_states.add(target)
                    frontier.append(target)
                    value = outcome_of(target)
                    if value is not None:
                        outcome[target] = value
        dfa = DFA.build(
            dfa_states, frozenset(pair_alphabet), transitions, initial, set()
        )
        return UpClassifier(dfa, outcome)

    # -- the stay GSQA (Lemma 3.10 instance) --------------------------------

    def _build_stay_gsqa(self):
        """The one stay transition: children contexts in a single pass.

        ``M1`` (left-to-right) carries the parent context/label and the
        horizontal prefix state over ``s_1 .. s_{j-1}``; ``M2``
        (right-to-left) carries the joint suffix transition function over
        ``s_{j+1} .. s_n``.  Lemma 3.10 combines them into one
        deterministic two-way transducer; the rendered output at child j
        is its ``down(C_{vj})`` state.
        """
        holds = [
            self.hold("B", context, s1, parent_label)
            for context in self.contexts
            for s1 in self.reachable
            for parent_label in self.alphabet
        ]
        letters = frozenset(
            (state, label) for state in holds for label in self.alphabet
        ) | frozenset(
            (self.func(f), label)
            for f in self.functions
            for label in self.alphabet
        )

        sink = ("sink",)

        def m1_step(state, letter):
            q, child_label = letter
            kind = q[0]
            if state == ("m1",):
                if kind == "hold":
                    _k, _tag, context, s1, parent_label = q
                    return (
                        "m1",
                        context,
                        parent_label,
                        self.h0[parent_label].dfa.initial,
                        s1,
                    )
                return sink
            if state == sink or len(state) != 5:
                return sink
            _m, context, parent_label, h, pending = state
            if kind != "func":
                return sink
            s = q[1][self.sigma_index[child_label]]
            return (
                "m1",
                context,
                parent_label,
                self._h0_step(parent_label, h, pending),
                s,
            )

        def m2_step(state, letter):
            q, child_label = letter
            kind = q[0]
            if kind == "func":
                s = q[1][self.sigma_index[child_label]]
            elif kind == "hold":
                s = q[3]
            else:
                return sink
            if state == ("m2",):
                return ("m2", self._identity_fn(), s)
            if state == sink:
                return sink
            _m, fn, pending = state
            return ("m2", self._extend_fn(fn, pending), s)

        m1 = _bfs_dfa(("m1",), letters, m1_step, sink)
        m2 = _bfs_dfa(("m2",), letters, m2_step, sink)

        def render(p, q, letter):
            if len(p) != 5 or len(q) != 3:
                return _DEAD
            _m1, context, parent_label, h, _pending_p = p
            _m2, fn, _pending_q = q
            return self.down(self._context_of(context, parent_label, h, fn))

        return reversed_hopcroft_ullman_gsqa(m1, m2, render=render)


def _bfs_dfa(initial, alphabet, step, sink) -> DFA:
    """Materialize a DFA from a transition function by reachability."""
    states = {initial, sink}
    transitions = {}
    frontier = [initial]
    while frontier:
        source = frontier.pop()
        for letter in alphabet:
            target = step(source, letter)
            transitions[(source, letter)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)
    for letter in alphabet:
        transitions[(sink, letter)] = sink
    return DFA.build(states, alphabet, transitions, initial, set())


def build_query_sqa(
    formula: Formula,
    var: Var,
    alphabet: Sequence[Label],
    engine: str = "optimized",
) -> UnrankedQueryAutomaton:
    """MSO unary query φ(x) → SQA^u (Theorem 5.17).

    The automaton computes the query on trees whose inner nodes have at
    least two children (the case the paper's Figure 6 flow covers; monadic
    chains are handled by the Lemma 3.10 string treatment, implemented in
    :mod:`repro.strings.hopcroft_ullman`).

    With the default ``engine="optimized"`` the intermediate DBTA^u is
    congruence-minimized before the builder's exponential closures run
    over its state set, and the finished SQA is cached by canonical
    formula digest (:mod:`repro.perf.compile`) so repeated constructions
    are near-free; ``engine="naive"`` is the unoptimized reference.
    """
    from ..logic.compile_trees import compile_tree_query

    if engine == "naive":
        d = compile_tree_query(formula, var, alphabet, engine="naive")
        return StrongQueryAutomatonBuilder(d, alphabet).build()
    from ..perf.compile import cached

    def _build() -> UnrankedQueryAutomaton:
        d = compile_tree_query(formula, var, alphabet)
        return StrongQueryAutomatonBuilder(d, alphabet).build()

    return cached("sqa", formula, (var,), frozenset(alphabet), _build)


def figure6_evaluate(
    d: DeterministicUnrankedAutomaton, tree: Tree
) -> frozenset[Path]:
    """The Figure 6 algorithm run directly (any arity) — the reference.

    Identical in content to
    :func:`repro.unranked.dbta.evaluate_marked_query` but organized
    level-by-level exactly as the paper's pseudo-code.
    """
    states: dict[Path, State] = {}
    for path in tree.postorder():
        node = tree.subtree(path)
        children = [states[path + (i,)] for i in range(len(node.children))]
        states[path] = d.classifiers[(node.label, 0)].result(children)

    contexts: dict[Path, Context] = {(): frozenset(d.accepting)}
    selected: set[Path] = set()
    for level in tree.nodes_by_depth():
        for path in level:
            node = tree.subtree(path)
            context = contexts[path]
            child_states = [states[path + (i,)] for i in range(len(node.children))]
            marked = d.classifiers[(node.label, 1)].result(child_states)
            if marked in context:
                selected.add(path)
            classifier = d.classifiers[(node.label, 0)]
            dfa = classifier.dfa
            forward = [dfa.initial]
            for s in child_states:
                forward.append(dfa.transitions[(forward[-1], s)])
            good = frozenset(
                h for h, v in classifier.classify.items() if v in context
            )
            backward = [good]
            for s in reversed(child_states):
                previous = backward[-1]
                backward.append(
                    frozenset(
                        h
                        for h in dfa.states
                        if dfa.transitions[(h, s)] in previous
                    )
                )
            backward.reverse()
            for i in range(len(node.children)):
                contexts[path + (i,)] = frozenset(
                    q
                    for q in d.states
                    if dfa.transitions[(forward[i], q)] in backward[i + 1]
                )
    return frozenset(selected)
