"""Beyond MSO: unrestricted stay transitions (the Definition 5.12 rationale).

Section 5.3: generalized two-way automata (G2DTA^u) with *unbounded* stay
transitions "are much more expressive than MSO — they can for instance
simulate linear space Turing machines on trees of depth one".  The strong
restriction (one stay per node) is exactly what keeps query automata
MSO-bounded.

This module makes the expressiveness gap executable with a linear-space
computation in the paper's style: :func:`anbn_acceptor` is a G2DTA^u
accepting the depth-1 trees whose leaf word lies in the **non-regular**
language ``{aⁿbⁿ : n ≥ 1}``.  The set of such trees is not recognizable,
so by Proposition 5.15 no 2DTA^u — and hence no S2DTA^u — accepts it:
removing the stay bound strictly increases power.

Mechanics (a crossing-off linear-space procedure):

* the children's states are tape cells ``a, b, x, y`` (``x``/``y`` are
  crossed-off ``a``/``b``);
* each **stay transition** crosses off the leftmost live ``a`` and the
  rightmost live ``b`` simultaneously — computed by a Lemma 3.10 GSQA
  combining a forward "a-count" DFA with a backward "b-count" DFA;
* the classifier keeps staying while the word matches ``x* a⁺ b⁺ y*``,
  accepts on ``x⁺ y⁺``, and sticks (rejects) on anything else — which is
  precisely where interleavings like ``abab`` or imbalances like ``aab``
  die.

The run makes ``n`` stay transitions on ``aⁿbⁿ`` — linear, unbounded, and
fatal for any fixed stay budget (:class:`~repro.unranked.twoway.StayLimitError`
fires if you impose one; the tests do).
"""

from __future__ import annotations

from ..strings.dfa import DFA
from ..strings.hopcroft_ullman import hopcroft_ullman_gsqa
from ..strings.simple_regex import constant_sequence
from ..strings.twoway import GeneralizedStringQA
from .twoway import (
    STAY,
    TwoWayUnrankedAutomaton,
    UP,
    UpClassifier,
)

#: Tape-cell states of the children.
def cell(symbol: str) -> tuple:
    """The child state representing an un-headed tape cell."""
    return ("cell", symbol)


_TAPE = ("a", "b", "x", "y")
_LABELS = ("a", "b", "r")


def _pair_alphabet() -> frozenset:
    return frozenset(
        (cell(symbol), label) for symbol in _TAPE for label in _LABELS
    )


def _count_dfa(symbol: str, pair_alphabet) -> DFA:
    """Counts occurrences of ``cell(symbol)`` read so far, capped at 2."""
    transitions = {}
    for letter in pair_alphabet:
        hit = letter[0] == cell(symbol)
        for count in (0, 1, 2):
            transitions[(count, letter)] = min(2, count + 1) if hit else count
    return DFA.build({0, 1, 2}, pair_alphabet, transitions, 0, set())


def _cross_off_gsqa(pair_alphabet) -> GeneralizedStringQA:
    """One crossing-off step, via Lemma 3.10.

    The forward DFA counts ``a``-cells (so position ``i`` is the *first*
    live ``a`` iff its letter is an ``a``-cell and the count through ``i``
    is 1); the backward DFA counts ``b``-cells from the right (the *last*
    live ``b`` dually).  The combined two-way transducer rewrites exactly
    those two positions and copies the rest.
    """
    forward = _count_dfa("a", pair_alphabet)
    backward = _count_dfa("b", pair_alphabet)

    def render(p, q, letter):
        state_part = letter[0]
        if state_part == cell("a") and p == 1:
            return cell("x")
        if state_part == cell("b") and q == 1:
            return cell("y")
        return state_part

    return hopcroft_ullman_gsqa(forward, backward, render=render)


def _phase_classifier(pair_alphabet) -> UpClassifier:
    """``x* a⁺ b⁺ y*`` → stay; ``x⁺ y⁺`` → accept; otherwise stuck.

    One DFA tracks the phase (x-prefix, a-block, b-block, y-suffix) with
    booleans for "saw an a"/"saw a b"; the outcome map reads off the
    verdict at the end of the children word.
    """
    # States: (phase, saw_a, saw_b) with phase ∈ x < a < b < y; "dead".
    order = {"x": 0, "a": 1, "b": 2, "y": 3}
    states = {("ok", phase, sa, sb) for phase in order for sa in (0, 1) for sb in (0, 1)}
    states.add("dead")
    transitions = {}
    for letter in pair_alphabet:
        symbol = letter[0][1]
        for state in states:
            if state == "dead":
                transitions[(state, letter)] = "dead"
                continue
            _ok, phase, sa, sb = state
            if order[symbol] < order[phase]:
                transitions[(state, letter)] = "dead"
            else:
                transitions[(state, letter)] = (
                    "ok",
                    symbol,
                    sa or int(symbol == "a"),
                    sb or int(symbol == "b"),
                )
    dfa = DFA.build(states, pair_alphabet, transitions, ("ok", "x", 0, 0), set())
    outcome = {}
    for state in states:
        if state == "dead":
            continue
        _ok, phase, sa, sb = state
        if sa and sb:
            outcome[state] = (STAY,)  # live letters remain: cross off more
        elif not sa and not sb and phase in ("y",):
            outcome[state] = (UP, "done")  # x⁺ y⁺ (or x⁺... see below)
        elif not sa and not sb and phase == "x":
            pass  # x⁺ alone: an all-a-was-never-there word — reject
        # one-sided leftovers (sa xor sb) are rejected by leaving them out
    return UpClassifier(dfa, outcome)


def anbn_acceptor() -> TwoWayUnrankedAutomaton:
    """A G2DTA^u for {r-rooted depth-1 trees with leaf word aⁿbⁿ}.

    Not recognizable ⇒ beyond every S2DTA^u (Proposition 5.15): the
    executable content of the paper's linear-space remark.
    """
    pair_alphabet = _pair_alphabet()
    states = frozenset({"go", "done", *(cell(s) for s in _TAPE)})
    return TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(_LABELS),
        initial="go",
        accepting=frozenset({"done"}),
        up_pairs=pair_alphabet,
        down_pairs=frozenset(("go", label) for label in _LABELS),
        delta_leaf={("go", "a"): cell("a"), ("go", "b"): cell("b")},
        delta_root={},
        up_classifier=_phase_classifier(pair_alphabet),
        down={("go", "r"): constant_sequence("go")},
        stay_gsqa=_cross_off_gsqa(pair_alphabet),
        stay_limit=None,  # the whole point: G2DTA^u, unbounded stays
    )


def anbn_reference(word: str) -> bool:
    """Ground truth for the accepted leaf words."""
    n = len(word) // 2
    return n >= 1 and word == "a" * n + "b" * n
