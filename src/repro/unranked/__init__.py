"""Unranked tree automata: NBTA^u, 2DTA^u, QA^u, SQA^u, Theorem 5.17 (Section 5)."""

from .nbta import UnrankedTreeAutomaton
from .dbta import (
    DeterministicUnrankedAutomaton,
    HorizontalClassifier,
    brute_force_marked_query,
    determinize,
    evaluate_marked_query,
)
from .twoway import (
    STAY,
    StayLimitError,
    TwoWayUnrankedAutomaton,
    UP,
    UnrankedQueryAutomaton,
    UpClassifier,
    up_classifier_from_languages,
)
from .behavior import evaluate_query_via_behavior
from .examples import (
    circuit_query_automaton,
    circuit_reference_query,
    first_one_sqa,
)
from .separation import (
    first_one_reference,
    flat_family_tree,
    impossibility_witness,
    pigeonhole_pair,
    root_state_sequence,
)
from .mso_to_sqa import (
    StrongQueryAutomatonBuilder,
    build_query_sqa,
    figure6_evaluate,
)

__all__ = [
    "UnrankedTreeAutomaton",
    "DeterministicUnrankedAutomaton",
    "HorizontalClassifier",
    "brute_force_marked_query",
    "determinize",
    "evaluate_marked_query",
    "STAY",
    "StayLimitError",
    "TwoWayUnrankedAutomaton",
    "UP",
    "UnrankedQueryAutomaton",
    "UpClassifier",
    "up_classifier_from_languages",
    "evaluate_query_via_behavior",
    "circuit_query_automaton",
    "circuit_reference_query",
    "first_one_sqa",
    "first_one_reference",
    "flat_family_tree",
    "impossibility_witness",
    "pigeonhole_pair",
    "root_state_sequence",
    "StrongQueryAutomatonBuilder",
    "build_query_sqa",
    "figure6_evaluate",
]
