"""Deterministic bottom-up unranked tree automata and determinization.

A DBTA^u (paper §5.1) is an NBTA^u whose horizontal languages are pairwise
disjoint per label, so every tree gets exactly one state.  We use a more
convenient *classifier* representation: per label ``a``, a total horizontal
DFA ``H_a`` over the vertical state set together with a map from ``H_a``'s
states to vertical states.  Disjointness and totality are then structural
rather than checked.

:func:`determinize` implements the subset construction for unranked
automata (Brüggemann-Klein–Murata–Wood): vertical states of the result are
*sets* of original states; the horizontal DFA for label ``a`` tracks, for
every original state ``q``, the set of states the horizontal NFA
``δ(q, a)`` can be in, reading child *subsets* by "any member" steps.

The classifier form is what the two-phase query evaluator
(:func:`evaluate_marked_query`) and the Figure 5/6 constructions consume:
it gives, per node, deterministic bottom-up states and — via a forward /
backward sweep over each sibling word, the Lemma 3.10 pattern — the
"context" information flowing top-down.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from ..strings.dfa import DFA, AutomatonError
from ..strings.nfa import NFA
from ..trees.tree import Path, Tree
from .nbta import UnrankedTreeAutomaton

State = Hashable
Label = Hashable


@dataclass(frozen=True)
class HorizontalClassifier:
    """A total DFA over vertical states whose states classify to a vertical state.

    ``classify[h]`` is the vertical state assigned to a node whose
    children-word drives the DFA from its initial state to ``h``.
    """

    dfa: DFA
    classify: dict[State, State]

    def __post_init__(self) -> None:
        missing = self.dfa.states - self.classify.keys()
        if missing:
            raise AutomatonError(f"unclassified horizontal states {missing!r}")

    def result(self, children_states: list[State]) -> State:
        """The vertical state for a node with the given children states."""
        here = self.dfa.run(children_states)
        if here is None:
            raise AutomatonError("horizontal DFA is not total on this word")
        return self.classify[here]


@dataclass(frozen=True)
class DeterministicUnrankedAutomaton:
    """A DBTA^u in classifier form: exactly one state per tree."""

    states: frozenset[State]
    alphabet: frozenset[Label]
    accepting: frozenset[State]
    classifiers: dict[Label, HorizontalClassifier]

    def __post_init__(self) -> None:
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for label in self.alphabet:
            if label not in self.classifiers:
                raise AutomatonError(f"no classifier for label {label!r}")

    @property
    def size(self) -> int:
        """|Q| + |Σ| + Σ classifier DFA sizes."""
        return (
            len(self.states)
            + len(self.alphabet)
            + sum(c.dfa.size for c in self.classifiers.values())
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def run(self, tree: Tree) -> dict[Path, State]:
        """The unique state of every subtree, bottom-up."""
        result: dict[Path, State] = {}
        for path in tree.postorder():
            node = tree.subtree(path)
            children = [result[path + (i,)] for i in range(len(node.children))]
            result[path] = self.classifiers[node.label].result(children)
        return result

    def state_of(self, tree: Tree) -> State:
        """``δ*(t)``."""
        return self.run(tree)[()]

    def accepts(self, tree: Tree) -> bool:
        """Membership."""
        return self.state_of(tree) in self.accepting

    def complement(self) -> "DeterministicUnrankedAutomaton":
        """Flip acceptance (sound because the automaton is deterministic/total)."""
        return DeterministicUnrankedAutomaton(
            self.states,
            self.alphabet,
            self.states - self.accepting,
            self.classifiers,
        )

    def minimized(self) -> "DeterministicUnrankedAutomaton":
        """A language-equivalent automaton with merged vertical states and
        minimal horizontal classifier DFAs, by the joint congruence
        refinement of :func:`repro.perf.minimize.minimize_dbta`."""
        from ..perf.minimize import minimize_dbta

        return minimize_dbta(self)

    def to_nbta(self) -> UnrankedTreeAutomaton:
        """View as an NBTA^u (horizontal NFAs with disjoint languages)."""
        horizontal: dict[tuple[State, Label], NFA] = {}
        for label, classifier in self.classifiers.items():
            for vertical in self.states:
                accepting_h = frozenset(
                    h for h, v in classifier.classify.items() if v == vertical
                )
                if not accepting_h:
                    continue
                dfa = classifier.dfa
                horizontal[(vertical, label)] = NFA(
                    dfa.states,
                    dfa.alphabet,
                    {
                        key: frozenset({target})
                        for key, target in dfa.transitions.items()
                    },
                    frozenset({dfa.initial}),
                    accepting_h,
                )
        return UnrankedTreeAutomaton(
            self.states, self.alphabet, self.accepting, horizontal
        )


def determinize(nbta: UnrankedTreeAutomaton) -> DeterministicUnrankedAutomaton:
    """The BMW subset construction for unranked tree automata.

    Vertical states of the result are frozensets of original states (only
    those realized by some tree are materialized).  The horizontal DFA for
    label ``a`` has states that are *profiles*: tuples assigning to each
    original vertical state ``q`` the subset of ``δ(q, a)``'s NFA states
    reachable on the children word read so far (child letters are subsets;
    a step takes the union over their members).
    """
    originals = sorted(nbta.states, key=repr)

    def initial_profile(label: Label) -> tuple:
        parts = []
        for q in originals:
            nfa = nbta.horizontal.get((q, label))
            parts.append(
                frozenset() if nfa is None else nfa.epsilon_closure(nfa.initials)
            )
        return tuple(parts)

    def step_profile(label: Label, profile: tuple, child: frozenset) -> tuple:
        parts = []
        for index, q in enumerate(originals):
            nfa = nbta.horizontal.get((q, label))
            if nfa is None:
                parts.append(frozenset())
                continue
            moved: set = set()
            for symbol in child:
                moved.update(nfa.step(profile[index], symbol))
            parts.append(frozenset(moved))
        return tuple(parts)

    def classify_profile(label: Label, profile: tuple) -> frozenset:
        out = set()
        for index, q in enumerate(originals):
            nfa = nbta.horizontal.get((q, label))
            if nfa is not None and profile[index] & nfa.accepting:
                out.add(q)
        return frozenset(out)

    # Discover realizable subsets and horizontal profiles simultaneously,
    # memoizing every transition computed (they form the final DFAs).
    subsets: set[frozenset] = set()
    profiles: dict[Label, set[tuple]] = {}
    step_cache: dict[Label, dict[tuple, tuple]] = {label: {} for label in nbta.alphabet}
    for label in nbta.alphabet:
        start = initial_profile(label)
        profiles[label] = {start}
        subsets.add(classify_profile(label, start))

    changed = True
    while changed:
        changed = False
        for label in nbta.alphabet:
            cache = step_cache[label]
            for profile in list(profiles[label]):
                for child in list(subsets):
                    key = (profile, child)
                    if key in cache:
                        continue
                    target = step_profile(label, profile, child)
                    cache[key] = target
                    changed = True
                    if target not in profiles[label]:
                        profiles[label].add(target)
                    classified = classify_profile(label, target)
                    if classified not in subsets:
                        subsets.add(classified)

    classifiers: dict[Label, HorizontalClassifier] = {}
    for label in nbta.alphabet:
        cache = step_cache[label]
        transitions = {
            (profile, child): cache.get(
                (profile, child), step_profile(label, profile, child)
            )
            for profile in profiles[label]
            for child in subsets
        }
        dfa = DFA.build(
            profiles[label],
            subsets,
            transitions,
            initial_profile(label),
            set(),  # acceptance is irrelevant; classification matters
        )
        classify = {
            profile: classify_profile(label, profile) for profile in profiles[label]
        }
        classifiers[label] = HorizontalClassifier(dfa, classify)

    accepting = frozenset(
        subset for subset in subsets if subset & nbta.accepting
    )
    return DeterministicUnrankedAutomaton(
        frozenset(subsets), nbta.alphabet, accepting, classifiers
    )


# ----------------------------------------------------------------------
# Two-pass unary query evaluation (marked alphabet)
# ----------------------------------------------------------------------


def evaluate_marked_query(
    automaton: DeterministicUnrankedAutomaton, tree: Tree, mark
) -> frozenset[Path]:
    """Evaluate a unary query given by a marked-alphabet DBTA^u.

    ``automaton`` runs over labels ``mark(σ, bit)``; it must accept exactly
    the trees with one marked node satisfying the query.  Selection of node
    ``v`` is decided without materializing marked trees: one bottom-up pass
    computes unmarked subtree states ``s_v``; one top-down pass computes
    context sets ``C_v`` (the subtree states at ``v`` that would make the
    whole unmarked-elsewhere tree accepted) using a forward/backward sweep
    over each sibling word — the same two-DFA pattern Lemma 3.10 packages
    into a single two-way automaton.  Then ``v`` is selected iff the state
    of ``v``'s subtree *with v's own label marked* lies in ``C_v``.
    """
    states = automaton.run(
        tree.relabel(lambda _path, label: mark(label, 0))
    )

    # marked_state[v]: state of t_v when v itself carries the marked label.
    marked_state: dict[Path, State] = {}
    for path in tree.nodes():
        node = tree.subtree(path)
        children = [states[path + (i,)] for i in range(len(node.children))]
        marked_state[path] = automaton.classifiers[mark(node.label, 1)].result(
            children
        )

    context: dict[Path, frozenset[State]] = {(): frozenset(automaton.accepting)}
    for path in tree.nodes():
        node = tree.subtree(path)
        arity = len(node.children)
        if arity == 0:
            continue
        classifier = automaton.classifiers[mark(node.label, 0)]
        dfa = classifier.dfa
        child_states = [states[path + (i,)] for i in range(arity)]
        good_results = context[path]

        # Forward pass: horizontal DFA state before each child.
        forward = [dfa.initial]
        for q in child_states:
            forward.append(dfa.transitions[(forward[-1], q)])

        # Backward pass: horizontal states from which the remaining suffix
        # classifies into a good vertical state.
        good_horizontal = frozenset(
            h for h, v in classifier.classify.items() if v in good_results
        )
        backward: list[frozenset] = [good_horizontal]
        for q in reversed(child_states):
            previous = backward[-1]
            backward.append(
                frozenset(
                    h for h in dfa.states if dfa.transitions[(h, q)] in previous
                )
            )
        backward.reverse()

        for i in range(arity):
            child_context = frozenset(
                q
                for q in automaton.states
                if dfa.transitions[(forward[i], q)] in backward[i + 1]
            )
            context[path + (i,)] = child_context

    return frozenset(
        path for path in tree.nodes() if marked_state[path] in context[path]
    )


def brute_force_marked_query(
    automaton: DeterministicUnrankedAutomaton, tree: Tree, mark
) -> frozenset[Path]:
    """Reference: test each node by materializing the marked tree (O(n²))."""
    selected = set()
    for target in tree.nodes():
        marked = tree.relabel(
            lambda path, label: mark(label, 1 if path == target else 0)
        )
        if automaton.accepts(marked):
            selected.add(target)
    return frozenset(selected)
