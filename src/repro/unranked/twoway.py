"""Two-way automata over unranked trees: 2DTA^u, G2DTA^u, S2DTA^u, QA^u, SQA^u.

Definitions 5.7–5.13 of the paper.  Compared to the ranked model
(Definition 4.1), the transition tables become *infinite* and are
represented finitely:

* ``δ_↓(q, a, n)`` is the unique length-``n`` string of the slender
  language ``L_↓(q, a)`` — a :class:`~repro.strings.simple_regex.SimpleRegex`
  (finite union of ``x y* z``, at most one string per length, following
  Shallit's normal form as the paper prescribes);
* ``δ_↑`` is given by the disjoint regular languages ``L_↑(q)`` over the
  pair alphabet ``U ⊆ Q × Σ``.  We represent the whole family by one total
  *classifier DFA* with a partial map from its states to outcomes — this
  makes the disjointness the paper requires structural, and matches its
  insistence (proof of Theorem 6.3) that up transitions be given by DFAs;
* **stay transitions** (Definition 5.11) extend the classifier with a
  ``stay`` outcome on the regular set ``U_stay``; the replacement states of
  the children are computed by a GSQA (a deterministic two-way string
  automaton with output, Definition 3.5) reading the children's
  (state, label) word.

A *strong* automaton (S2DTA^u, Definition 5.12) makes at most one stay
transition at the children of each node; the runner enforces the
declared ``stay_limit`` and raises :class:`StayLimitError` on violation
(the paper shows unrestricted stay transitions simulate linear-space
Turing machines, so the limit is what keeps the model MSO-bounded).

Query automata (QA^u, Definition 5.8; SQA^u, Definition 5.13) add a
selection function λ, with the usual semantics: a node is selected iff the
accepting run visits it at least once in a selecting (state, label) pair.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from ..strings.dfa import DFA, AutomatonError
from ..strings.simple_regex import SimpleRegex
from ..strings.twoway import GeneralizedStringQA, NonTerminatingRunError
from ..trees.tree import Path, Tree

State = Hashable
Label = Hashable
UPair = tuple[State, Label]
Configuration = dict[Path, State]


class StayLimitError(RuntimeError):
    """The automaton attempted more stay transitions than its declared limit."""


#: Classifier outcomes.
UP = "up"
STAY = "stay"


@dataclass(frozen=True)
class UpClassifier:
    """The up/stay transition family as one total DFA with outcomes.

    ``dfa`` runs over the pair alphabet ``U``; ``outcome`` maps (some of)
    its states to either ``("up", q)`` — the word lies in ``L_↑(q)`` — or
    ``("stay",)`` — the word lies in ``U_stay``.  Unmapped states mean "no
    transition".  Disjointness of the languages is structural.
    """

    dfa: DFA
    outcome: dict[State, tuple]

    def __post_init__(self) -> None:
        for state, value in self.outcome.items():
            if state not in self.dfa.states:
                raise AutomatonError(f"outcome for unknown DFA state {state!r}")
            if value[0] not in (UP, STAY):
                raise AutomatonError(f"bad outcome {value!r}")

    def classify(self, word: Sequence[UPair]) -> tuple | None:
        """``("up", q)``, ``("stay",)``, or ``None`` for the children word."""
        state = self.dfa.run(word)
        if state is None:
            return None
        return self.outcome.get(state)

    @property
    def size(self) -> int:
        """Size of the classifier DFA (part of the automaton's size)."""
        return self.dfa.size


@dataclass(frozen=True)
class TwoWayUnrankedAutomaton:
    """A generalized two-way deterministic unranked tree automaton.

    With ``stay_limit = 0`` this is a plain 2DTA^u (Definition 5.7); with
    ``stay_limit = 1`` and a stay-capable classifier it is an S2DTA^u
    (Definition 5.12); ``stay_limit = None`` means unrestricted (G2DTA^u).

    ``down`` maps ``(q, a) ∈ D`` to the slender language ``L_↓(q, a)``;
    ``up_classifier`` realizes ``δ_↑`` (and ``δ_-`` via ``stay_gsqa``).
    """

    states: frozenset[State]
    alphabet: frozenset[Label]
    initial: State
    accepting: frozenset[State]
    up_pairs: frozenset[UPair]
    down_pairs: frozenset[UPair]
    delta_leaf: dict[UPair, State]
    delta_root: dict[UPair, State]
    up_classifier: UpClassifier
    down: dict[UPair, SimpleRegex]
    stay_gsqa: GeneralizedStringQA | None = None
    stay_limit: int | None = 0

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError("initial state unknown")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        if self.up_pairs & self.down_pairs:
            raise AutomatonError("U and D must be disjoint")
        for pair in self.delta_leaf:
            if pair not in self.down_pairs:
                raise AutomatonError(f"δ_leaf outside D at {pair!r}")
        for pair in self.delta_root:
            if pair not in self.up_pairs:
                raise AutomatonError(f"δ_root outside U at {pair!r}")
        for pair in self.down:
            if pair not in self.down_pairs:
                raise AutomatonError(f"L_↓ outside D at {pair!r}")
        if any(
            value[0] == STAY for value in self.up_classifier.outcome.values()
        ) and self.stay_gsqa is None:
            raise AutomatonError("stay outcomes require a stay GSQA")

    @property
    def size(self) -> int:
        """States + alphabet + transition representations (paper's measure)."""
        total = len(self.states) + len(self.alphabet)
        total += len(self.delta_leaf) + len(self.delta_root)
        total += self.up_classifier.size
        total += sum(regex.size for regex in self.down.values())
        if self.stay_gsqa is not None:
            total += self.stay_gsqa.size
        return total

    # ------------------------------------------------------------------
    # Transition helpers
    # ------------------------------------------------------------------

    def delta_down(self, state: State, label: Label, arity: int):
        """``δ_↓(q, a, n)`` or ``None``."""
        regex = self.down.get((state, label))
        if regex is None:
            return None
        return regex.string_of_length(arity)

    def children_word(
        self, tree: Tree, configuration: Configuration, path: Path
    ) -> tuple[UPair, ...] | None:
        """The (state, label) word of ``path``'s children, if all in the cut."""
        arity = tree.arity_at(path)
        word = []
        for i in range(arity):
            child = path + (i,)
            if child not in configuration:
                return None
            word.append((configuration[child], tree.label_at(child)))
        return tuple(word)

    # ------------------------------------------------------------------
    # Run semantics (cut-based, as in §4.1 / §5.2)
    # ------------------------------------------------------------------

    def _enabled(
        self, tree: Tree, configuration: Configuration, stays: dict[Path, int]
    ) -> tuple[str, Path] | None:
        cut = sorted(configuration)
        if cut == [()]:
            pair = (configuration[()], tree.label_at(()))
            if pair in self.up_pairs and pair in self.delta_root:
                return ("root", ())
        candidate_parents: set[Path] = set()
        for path in cut:
            state = configuration[path]
            label = tree.label_at(path)
            pair = (state, label)
            arity = tree.arity_at(path)
            if pair in self.down_pairs:
                if arity == 0:
                    if pair in self.delta_leaf:
                        return ("leaf", path)
                elif self.delta_down(state, label, arity) is not None:
                    return ("down", path)
            if pair in self.up_pairs and path:
                candidate_parents.add(path[:-1])
        for parent in sorted(candidate_parents):
            word = self.children_word(tree, configuration, parent)
            if word is None or not all(pair in self.up_pairs for pair in word):
                continue
            outcome = self.up_classifier.classify(word)
            if outcome is None:
                continue
            if outcome[0] == UP:
                return ("up", parent)
            if outcome[0] == STAY:
                if (
                    self.stay_limit is not None
                    and stays.get(parent, 0) >= self.stay_limit
                ):
                    raise StayLimitError(
                        f"more than {self.stay_limit} stay transition(s) at "
                        f"{parent!r} ({stays.get(parent, 0)} already taken, "
                        f"{len(configuration)} pebbled nodes in the "
                        f"current configuration)"
                    )
                return ("stay", parent)
        return None

    def _fire(
        self,
        tree: Tree,
        configuration: Configuration,
        stays: dict[Path, int],
        kind: str,
        path: Path,
    ) -> Configuration:
        new = dict(configuration)
        label = tree.label_at(path)
        if kind == "root":
            new[()] = self.delta_root[(configuration[()], label)]
        elif kind == "leaf":
            new[path] = self.delta_leaf[(configuration[path], label)]
        elif kind == "down":
            arity = tree.arity_at(path)
            targets = self.delta_down(configuration[path], label, arity)
            assert targets is not None
            del new[path]
            for i, target in enumerate(targets):
                new[path + (i,)] = target
        elif kind == "up":
            word = self.children_word(tree, configuration, path)
            assert word is not None
            outcome = self.up_classifier.classify(word)
            assert outcome is not None and outcome[0] == UP
            for i in range(tree.arity_at(path)):
                del new[path + (i,)]
            new[path] = outcome[1]
        elif kind == "stay":
            word = self.children_word(tree, configuration, path)
            assert word is not None and self.stay_gsqa is not None
            replacements = self.stay_gsqa.transduce(word)
            for i, state in enumerate(replacements):
                if state not in self.states:
                    raise AutomatonError(
                        f"stay GSQA produced unknown state {state!r}"
                    )
                new[path + (i,)] = state
            stays[path] = stays.get(path, 0) + 1
        else:  # pragma: no cover - internal
            raise AssertionError(kind)
        return new

    def run(
        self, tree: Tree, max_steps: int | None = None
    ) -> list[Configuration]:
        """The canonical maximal run (a list of configurations).

        The default step budget scales with ``|Q| · |t|`` and is
        configurable via ``max_steps``; exceeding it raises
        :class:`NonTerminatingRunError` reporting the number of visited
        configurations (the paper only considers automata that halt on
        every input).
        """
        from .. import obs

        if max_steps is None:
            max_steps = 6 * max(1, len(self.states)) * tree.size + 6
        configuration: Configuration = {(): self.initial}
        stays: dict[Path, int] = {}
        trace = [dict(configuration)]
        for _ in range(max_steps):
            enabled = self._enabled(tree, configuration, stays)
            if enabled is None:
                sink = obs.SINK
                if sink.enabled:
                    sink.incr("twoway.tree_runs")
                    sink.incr("twoway.tree_steps", len(trace) - 1)
                return trace
            configuration = self._fire(tree, configuration, stays, *enabled)
            trace.append(dict(configuration))
        sink = obs.SINK
        if sink.enabled:
            sink.incr("twoway.budget_trips")
            sink.incr("twoway.tree_steps", len(trace) - 1)
        raise NonTerminatingRunError(
            f"run exceeded the step budget of {max_steps} after visiting "
            f"{len(trace)} configurations on a tree of size {tree.size}"
        )

    def accepts(self, tree: Tree) -> bool:
        """Maximal run ends with ``{root ↦ q}``, ``q ∈ F``."""
        final = self.run(tree)[-1]
        return list(final) == [()] and final[()] in self.accepting


@dataclass(frozen=True)
class UnrankedQueryAutomaton:
    """A QA^u / SQA^u: a two-way unranked automaton plus selection λ.

    With ``automaton.stay_limit == 0`` this is a QA^u (Definition 5.8);
    with limit 1 and stay transitions, an SQA^u (Definition 5.13).
    """

    automaton: TwoWayUnrankedAutomaton
    selecting: frozenset[UPair]

    def __post_init__(self) -> None:
        for state, label in self.selecting:
            if state not in self.automaton.states:
                raise AutomatonError(f"selection uses unknown state {state!r}")
            if label not in self.automaton.alphabet:
                raise AutomatonError(f"selection uses unknown label {label!r}")

    @property
    def size(self) -> int:
        """Size of the underlying automaton (λ adds nothing)."""
        return self.automaton.size

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """The computed query ``A(t)``."""
        trace = self.automaton.run(tree)
        final = trace[-1]
        if list(final) != [()] or final[()] not in self.automaton.accepting:
            return frozenset()
        selected: set[Path] = set()
        for configuration in trace:
            for path, state in configuration.items():
                if (state, tree.label_at(path)) in self.selecting:
                    selected.add(path)
        return frozenset(selected)

    def accepts(self, tree: Tree) -> bool:
        """The underlying tree language."""
        return self.automaton.accepts(tree)


def up_classifier_from_languages(
    languages: dict[State, DFA],
    stay_language: DFA | None,
    pair_alphabet: Iterable[UPair],
) -> UpClassifier:
    """Build a classifier from per-state DFAs (checking disjointness).

    ``languages[q]`` is a DFA for ``L_↑(q)``; ``stay_language`` (optional)
    recognizes ``U_stay``.  All must be over the same pair alphabet.  The
    classifier is their product; a word in two languages at once raises
    :class:`AutomatonError` (the paper's determinism requirement).
    """
    pair_alphabet = frozenset(pair_alphabet)
    entries: list[tuple[tuple, DFA]] = []
    for state, dfa in sorted(languages.items(), key=lambda item: repr(item[0])):
        entries.append(((UP, state), dfa.completed()))
    if stay_language is not None:
        entries.append(((STAY,), stay_language.completed()))
    if not entries:
        everything = DFA.build({0}, pair_alphabet, {}, 0, set()).completed()
        return UpClassifier(everything, {})

    # Product of all the DFAs; outcome per product state.
    initial = tuple(dfa.initial for _tag, dfa in entries)
    states = {initial}
    transitions: dict[tuple[tuple, UPair], tuple] = {}
    frontier = [initial]
    while frontier:
        source = frontier.pop()
        for pair in pair_alphabet:
            target = tuple(
                dfa.transitions[(component, pair)]
                for (component, (_tag, dfa)) in zip(source, entries)
            )
            transitions[(source, pair)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)
    outcome: dict[tuple, tuple] = {}
    for product_state in states:
        hits = [
            tag
            for component, (tag, dfa) in zip(product_state, entries)
            if component in dfa.accepting
        ]
        if len(hits) > 1:
            raise AutomatonError(
                f"up/stay languages overlap (outcomes {hits!r}); "
                "the model requires disjoint L_↑ languages"
            )
        if hits:
            full = hits[0]
            outcome[product_state] = (UP, full[1]) if full[0] == UP else (STAY,)
    dfa = DFA.build(states, pair_alphabet, transitions, initial, set())
    return UpClassifier(dfa, outcome)
