"""Bottom-up tree automata over unranked trees (Definition 5.1).

A nondeterministic bottom-up unranked tree automaton (NBTA^u) assigns
states to nodes leaf-to-root; a node may take state ``q`` when the word of
its children's states belongs to the *horizontal language* ``δ(q, a)``,
a regular language over the state set represented here by an NFA.

This is the Brüggemann-Klein–Murata–Wood model the paper builds on; we
provide the full toolkit the later sections need:

* :meth:`UnrankedTreeAutomaton.reachable_states` /
  :meth:`~UnrankedTreeAutomaton.is_empty` — the PTIME fixpoint of
  Lemma 5.2, with witness-tree extraction;
* products (intersection/union), homomorphic relabeling (the projection
  step of the MSO compiler);
* :meth:`~UnrankedTreeAutomaton.run` — the inductive semantics ``δ*``.

Determinization lives in :mod:`repro.unranked.dbta`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..strings.dfa import AutomatonError
from ..strings.nfa import NFA, intersection_nfa, union_nfa
from ..trees.tree import Path, Tree

State = Hashable
Label = Hashable

#: Lazily-created identity-keyed cache of :class:`~repro.perf.bitset.PackedNFA`
#: wrappers for horizontal NFAs, shared by ``run``/emptiness/witness search.
#: Created on first use to keep ``repro.perf`` out of the import cycle.
_PACKED_NFAS = None


def _packed_nfa(nfa: NFA):
    global _PACKED_NFAS
    if _PACKED_NFAS is None:
        from ..perf.bitset import PackedNFA
        from ..perf.registry import EngineRegistry

        _PACKED_NFAS = EngineRegistry(PackedNFA, capacity=512)
    return _PACKED_NFAS.get(nfa)


def _numpy_kernel(engine: str | None):
    """Resolve ``engine=`` to the numpy kernel module, or ``None``.

    ``None`` / ``"bitset"`` select the Python-int bitset kernel;
    ``"numpy"`` the packbits kernel of :mod:`repro.perf.npkernel`,
    degrading (with an ``npkernel.fallbacks`` count) when numpy is not
    installed.
    """
    if engine is None or engine == "bitset":
        return None
    if engine != "numpy":
        raise AutomatonError(f"unknown NBTA engine {engine!r}")
    from ..perf import npkernel

    if npkernel.available():
        return npkernel
    from .. import obs

    obs.SINK.incr("npkernel.fallbacks")
    return None


def empty_word_nfa(alphabet: Iterable[State]) -> NFA:
    """An NFA accepting only the empty word (leaf transitions)."""
    return NFA.build({0}, frozenset(alphabet), {}, {0}, {0})


def all_words_nfa(alphabet: Iterable[State]) -> NFA:
    """An NFA accepting every word over the alphabet."""
    alphabet = frozenset(alphabet)
    return NFA.build(
        {0}, alphabet, {(0, symbol): frozenset({0}) for symbol in alphabet}, {0}, {0}
    )


@dataclass(frozen=True)
class UnrankedTreeAutomaton:
    """An NBTA^u: ``(Q, Σ, F, δ)`` with regular horizontal languages.

    ``horizontal`` maps ``(q, a)`` to an NFA over ``Q`` recognizing
    ``δ(q, a)``; absent entries denote the empty language.
    """

    states: frozenset[State]
    alphabet: frozenset[Label]
    accepting: frozenset[State]
    horizontal: dict[tuple[State, Label], NFA]

    def __post_init__(self) -> None:
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for (state, label), nfa in self.horizontal.items():
            if state not in self.states:
                raise AutomatonError(f"unknown vertical state {state!r}")
            if label not in self.alphabet:
                raise AutomatonError(f"unknown label {label!r}")
            if not nfa.alphabet <= self.states:
                raise AutomatonError(
                    "horizontal language must be over the vertical state set"
                )

    @property
    def size(self) -> int:
        """|Q| + |Σ| + Σ sizes of the horizontal NFAs (paper's measure)."""
        return (
            len(self.states)
            + len(self.alphabet)
            + sum(nfa.size for nfa in self.horizontal.values())
        )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def run(
        self, tree: Tree, engine: str | None = None
    ) -> dict[Path, frozenset[State]]:
        """``δ*`` at every node: the possible states of each subtree.

        ``engine="numpy"`` advances the horizontal frontiers on the
        packbits kernel instead of Python-int bitsets.
        """
        kernel = _numpy_kernel(engine)
        result: dict[Path, frozenset[State]] = {}
        for path in tree.postorder():
            node = tree.subtree(path)
            child_sets = [result[path + (i,)] for i in range(len(node.children))]
            possible: set[State] = set()
            for state in self.states:
                nfa = self.horizontal.get((state, node.label))
                if nfa is None:
                    continue
                if _word_of_sets_intersects(nfa, child_sets, kernel):
                    possible.add(state)
            result[path] = frozenset(possible)
        return result

    def states_of(self, tree: Tree, engine: str | None = None) -> frozenset[State]:
        """``δ*(t)``: the possible root states."""
        return self.run(tree, engine=engine)[()]

    def accepts(self, tree: Tree, engine: str | None = None) -> bool:
        """``δ*(t) ∩ F ≠ ∅``."""
        return bool(self.states_of(tree, engine=engine) & self.accepting)

    # ------------------------------------------------------------------
    # Lemma 5.2: PTIME non-emptiness
    # ------------------------------------------------------------------

    def reachable_states(self, engine: str | None = None) -> frozenset[State]:
        """States ``q`` with ``q ∈ δ*(t)`` for some tree (the ``R`` fixpoint)."""
        return frozenset(self._reachable_with_witnesses(engine=engine))

    def _reachable_with_witnesses(
        self, engine: str | None = None
    ) -> dict[State, Tree]:
        """The Lemma 5.2 fixpoint, remembering a witness tree per state."""
        kernel = _numpy_kernel(engine)
        witnesses: dict[State, Tree] = {}
        changed = True
        while changed:
            changed = False
            for state in self.states:
                if state in witnesses:
                    continue
                for label in self.alphabet:
                    nfa = self.horizontal.get((state, label))
                    if nfa is None:
                        continue
                    word = _shortest_word_over(nfa, witnesses.keys(), kernel)
                    if word is None:
                        continue
                    witnesses[state] = Tree(label, [witnesses[q] for q in word])
                    changed = True
                    break
        return witnesses

    def is_empty(self, engine: str | None = None) -> bool:
        """Is ``L(B)`` empty?  Polynomial time (Lemma 5.2)."""
        return not (self.reachable_states(engine=engine) & self.accepting)

    def witness(self, engine: str | None = None) -> Tree | None:
        """Some accepted tree, or ``None`` when the language is empty."""
        witnesses = self._reachable_with_witnesses(engine=engine)
        for state in self.accepting:
            if state in witnesses:
                return witnesses[state]
        return None

    # ------------------------------------------------------------------
    # Boolean operations / relabeling
    # ------------------------------------------------------------------

    def intersection(self, other: "UnrankedTreeAutomaton") -> "UnrankedTreeAutomaton":
        """Product automaton for the intersection."""
        return _product(self, other, accept_both=True)

    def union(self, other: "UnrankedTreeAutomaton") -> "UnrankedTreeAutomaton":
        """Disjoint-union automaton for the union."""
        if self.alphabet != other.alphabet:
            raise AutomatonError("union requires identical alphabets")

        def tag(which: int, state: State) -> State:
            return (which, state)

        states = frozenset(tag(0, q) for q in self.states) | frozenset(
            tag(1, q) for q in other.states
        )
        horizontal: dict[tuple[State, Label], NFA] = {}
        for which, automaton in ((0, self), (1, other)):
            for (state, label), nfa in automaton.horizontal.items():
                horizontal[(tag(which, state), label)] = _relabel_nfa(
                    nfa, lambda q, w=which: tag(w, q), states
                )
        accepting = frozenset(tag(0, q) for q in self.accepting) | frozenset(
            tag(1, q) for q in other.accepting
        )
        return UnrankedTreeAutomaton(states, self.alphabet, accepting, horizontal)

    def trimmed(self) -> "UnrankedTreeAutomaton":
        """Restrict to *useful* vertical states (reachable and co-reachable).

        A state is reachable when some tree realizes it (the Lemma 5.2
        fixpoint) and co-reachable when some context can extend it to an
        accepted tree.  Trimming dramatically shrinks the profile spaces of
        the BMW determinization, keeping the MSO compiler tractable.
        Horizontal NFAs are trimmed to their live parts as well.
        """
        reachable = self.reachable_states()
        # Co-reachability fixpoint: a state is useful if it can appear as a
        # letter of an accepted horizontal word of a useful parent state
        # (with the siblings all reachable), or is accepting itself.
        useful: set[State] = set(self.accepting & reachable)
        changed = True
        while changed:
            changed = False
            for (parent, _label), nfa in self.horizontal.items():
                if parent not in useful:
                    continue
                for symbol in _live_symbols(nfa, reachable):
                    if symbol not in useful and symbol in reachable:
                        useful.add(symbol)
                        changed = True
        horizontal: dict[tuple[State, Label], NFA] = {}
        for (parent, label), nfa in self.horizontal.items():
            if parent not in useful:
                continue
            restricted = _restrict_nfa(nfa, frozenset(useful))
            if restricted is not None:
                horizontal[(parent, label)] = restricted
        return UnrankedTreeAutomaton(
            frozenset(useful),
            self.alphabet,
            self.accepting & frozenset(useful),
            horizontal,
        )

    def relabel(
        self, mapping: dict[Label, Label]
    ) -> "UnrankedTreeAutomaton":
        """Image under an alphabet homomorphism (projection of tracks).

        The new automaton accepts ``h(t)`` for every accepted ``t``; its
        horizontal language for ``(q, b)`` is the union over the preimages
        of ``b``.
        """
        new_alphabet = frozenset(mapping.values())
        merged: dict[tuple[State, Label], NFA] = {}
        for (state, label), nfa in self.horizontal.items():
            key = (state, mapping[label])
            if key in merged:
                merged[key] = union_nfa(merged[key], nfa)
            else:
                merged[key] = nfa
        return UnrankedTreeAutomaton(
            self.states, new_alphabet, self.accepting, merged
        )


def _relabel_nfa(nfa: NFA, mapping, new_alphabet: frozenset[State]) -> NFA:
    """Rename the alphabet symbols of an NFA (injective mapping)."""
    from ..strings.nfa import EPSILON

    transitions = {}
    for (source, symbol), targets in nfa.transitions.items():
        key_symbol = symbol if symbol is EPSILON else mapping(symbol)
        transitions[(source, key_symbol)] = targets
    return NFA(
        nfa.states, new_alphabet, transitions, nfa.initials, nfa.accepting
    )


def _product(
    left: UnrankedTreeAutomaton,
    right: UnrankedTreeAutomaton,
    accept_both: bool,
) -> UnrankedTreeAutomaton:
    if left.alphabet != right.alphabet:
        raise AutomatonError("product requires identical alphabets")
    states = frozenset(
        (p, q) for p in left.states for q in right.states
    )
    horizontal: dict[tuple[State, Label], NFA] = {}
    for p in left.states:
        for q in right.states:
            for label in left.alphabet:
                left_nfa = left.horizontal.get((p, label))
                right_nfa = right.horizontal.get((q, label))
                if left_nfa is None or right_nfa is None:
                    continue
                horizontal[((p, q), label)] = _pair_word_intersection(
                    left_nfa, right_nfa, states
                )
    accepting = frozenset(
        (p, q)
        for p in left.states
        for q in right.states
        if p in left.accepting and q in right.accepting
    )
    return UnrankedTreeAutomaton(states, left.alphabet, accepting, horizontal)


def _pair_word_intersection(
    left_nfa: NFA, right_nfa: NFA, pair_alphabet: frozenset
) -> NFA:
    """NFA over pair states accepting ``(p_1,q_1)..(p_n,q_n)`` with both
    projections accepted by the respective horizontal NFAs."""
    from ..strings.nfa import EPSILON

    def lift(nfa: NFA, project) -> NFA:
        transitions: dict[tuple, frozenset] = {}
        for (source, symbol), targets in nfa.transitions.items():
            if symbol is EPSILON:
                transitions[(source, EPSILON)] = targets
                continue
            for pair in pair_alphabet:
                if project(pair) == symbol:
                    key = (source, pair)
                    transitions[key] = transitions.get(key, frozenset()) | targets
        return NFA(nfa.states, pair_alphabet, transitions, nfa.initials, nfa.accepting)

    return intersection_nfa(
        lift(left_nfa, lambda pair: pair[0]),
        lift(right_nfa, lambda pair: pair[1]),
    )


def _live_symbols(nfa: NFA, allowed: frozenset[State]) -> frozenset[State]:
    """Symbols (⊆ allowed) occurring on some accepting path of the NFA
    restricted to the allowed alphabet."""
    from ..strings.nfa import EPSILON

    # Forward-reachable NFA states under allowed symbols.
    forward = set(nfa.epsilon_closure(nfa.initials))
    frontier = list(forward)
    while frontier:
        state = frontier.pop()
        for symbol in list(allowed) + [EPSILON]:
            for target in nfa.transitions.get((state, symbol), ()):
                if target not in forward:
                    forward.add(target)
                    frontier.append(target)
    # Backward-reachable from accepting states.
    inverse: dict[State, set[tuple[State, State]]] = {}
    for (source, symbol), targets in nfa.transitions.items():
        if symbol is not EPSILON and symbol not in allowed:
            continue
        for target in targets:
            inverse.setdefault(target, set()).add((source, symbol))
    backward = set(nfa.accepting)
    frontier = list(backward)
    while frontier:
        state = frontier.pop()
        for source, _symbol in inverse.get(state, ()):
            if source not in backward:
                backward.add(source)
                frontier.append(source)
    live = forward & backward
    symbols: set[State] = set()
    for (source, symbol), targets in nfa.transitions.items():
        if symbol is EPSILON or symbol not in allowed or source not in live:
            continue
        if targets & live:
            symbols.add(symbol)
    return frozenset(symbols)


def _restrict_nfa(nfa: NFA, allowed: frozenset[State]) -> NFA | None:
    """The NFA with non-allowed alphabet symbols removed and dead states
    trimmed; ``None`` when the restricted language is empty."""
    from ..strings.nfa import EPSILON

    transitions = {
        key: targets
        for key, targets in nfa.transitions.items()
        if key[1] is EPSILON or key[1] in allowed
    }
    restricted = NFA(
        nfa.states, allowed, transitions, nfa.initials, nfa.accepting
    ).trimmed()
    if restricted.is_empty():
        return None
    return restricted


def _word_of_sets_intersects(
    nfa: NFA, child_sets: list[frozenset[State]], kernel=None
) -> bool:
    """Is some word ``q_1..q_n`` with ``q_i ∈ child_sets[i]`` accepted?

    Runs on the bitset kernel: the frontier is a Python-int mask advanced
    by the precomputed (ε-closed) per-symbol successor rows of the cached
    :class:`~repro.perf.bitset.PackedNFA` — or, with a numpy ``kernel``,
    on its packbits twin.
    """
    from ..perf.bitset import iter_bits

    packed = _packed_nfa(nfa)
    if kernel is not None:
        return kernel.word_of_sets_intersects(packed, child_sets)
    current = packed.initial_mask
    for options in child_sets:
        moved = 0
        for symbol in options:
            rows = packed.succ.get(symbol)
            if rows is None:
                continue
            for i in iter_bits(current):
                moved |= rows[i]
        current = moved
        if not current:
            return False
    return bool(current & packed.accepting_mask)


def _shortest_word_over(
    nfa: NFA, allowed: Iterable[State], kernel=None
) -> tuple[State, ...] | None:
    """A shortest accepted word using only ``allowed`` symbols.

    Level-order BFS over bitset frontiers with *antichain* pruning: a
    frontier contained in an already-explored frontier can reach
    acceptance no sooner (reachability is monotone in the state set), so
    only ⊆-maximal frontiers are kept.  Level order preserves minimality
    of the returned word's length.  A numpy ``kernel`` runs the identical
    BFS on packbits masks with vectorized antichain domination tests.
    """
    from .. import obs
    from ..perf.bitset import iter_bits

    packed = _packed_nfa(nfa)
    if kernel is not None:
        return kernel.shortest_word_over(packed, allowed)
    sink = obs.SINK
    sink.incr("antichain.searches")
    allowed_set = set(allowed)
    symbols = [
        symbol
        for symbol in packed.symbols
        if symbol in allowed_set and symbol in packed.succ
    ]
    rows = [packed.succ[symbol] for symbol in symbols]
    start = packed.initial_mask
    accepting = packed.accepting_mask
    if start & accepting:
        return ()
    antichain = [start]
    frontier: list[tuple[int, tuple]] = [(start, ())]
    while frontier:
        next_frontier: list[tuple[int, tuple]] = []
        for mask, word in frontier:
            for symbol, row in zip(symbols, rows):
                target = 0
                for i in iter_bits(mask):
                    target |= row[i]
                if not target:
                    continue
                if target & accepting:
                    return word + (symbol,)
                if any(target & ~seen == 0 for seen in antichain):
                    sink.incr("antichain.prunes")
                    continue
                antichain = [seen for seen in antichain if seen & ~target != 0]
                antichain.append(target)
                if sink.enabled:
                    sink.incr("antichain.expansions")
                    sink.gauge_max("antichain.max_size", len(antichain))
                next_frontier.append((target, word + (symbol,)))
        frontier = next_frontier
    return None
