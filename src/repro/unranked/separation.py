"""Proposition 5.10, executable: plain QA^u cannot compute FO queries.

The query *select all 1-labeled leaves with no 1-labeled left sibling* is
first-order definable and computed by the SQA^u of Example 5.14, but by
Proposition 5.10 **no** QA^u (no stay transitions) computes it.  The
paper's pigeonhole argument is made executable here:

* the witness family ``t_i`` — a flat tree whose first ``i`` leaves are
  ``0`` and the rest ``1`` (:func:`flat_family_tree`);
* :func:`root_state_sequence` — the sequence of states the automaton
  assumes at the root, the quantity the pigeonhole is applied to;
* :func:`impossibility_witness` — given *any* candidate QA^u, finds a pair
  ``j < j'`` with identical root sequences and returns the tree of the
  family on which the candidate provably answers the query wrongly.

Tests instantiate this against a battery of natural QA^u attempts at the
query and confirm that every one of them fails on some family member,
while the Example 5.14 SQA^u answers all members correctly.
"""

from __future__ import annotations

from ..trees.tree import Path, Tree
from .twoway import TwoWayUnrankedAutomaton, UnrankedQueryAutomaton


def first_one_reference(tree: Tree) -> frozenset[Path]:
    """The Proposition 5.10 query, evaluated directly.

    1-labeled leaves all of whose earlier siblings are not 1-labeled.
    """
    selected: set[Path] = set()
    for path in tree.nodes():
        node = tree.subtree(path)
        for i, child in enumerate(node.children):
            if child.children or child.label != "1":
                continue
            earlier = [node.children[j].label for j in range(i)]
            if "1" not in earlier:
                selected.add(path + (i,))
    return frozenset(selected)


def flat_family_tree(zeros: int, width: int, root_label: str = "0") -> Tree:
    """``t_i``: a root with ``width`` leaf children, the first ``zeros``
    labeled 0 and the rest 1 (the paper uses width ``n + 1``)."""
    if zeros > width:
        raise ValueError("zeros cannot exceed the width")
    labels = ["0"] * zeros + ["1"] * (width - zeros)
    return Tree(root_label, [Tree(label) for label in labels])


def root_state_sequence(
    automaton: TwoWayUnrankedAutomaton, tree: Tree
) -> tuple:
    """The sequence of states assumed at the root during the run."""
    sequence: list = []
    previous = None
    for configuration in automaton.run(tree):
        now = configuration.get(())
        if now is not None and now != previous:
            sequence.append(now)
        previous = now
    return tuple(sequence)


def impossibility_witness(
    qa: UnrankedQueryAutomaton, width: int | None = None
) -> tuple[Tree, frozenset[Path], frozenset[Path]] | None:
    """A family member on which the QA^u answers the query incorrectly.

    Follows the Proposition 5.10 proof: with ``width = m! + 1`` (``m`` the
    state count) two family members share their root-state sequence, and
    the determinism of down transitions then forces the automaton to treat
    the first 1 of one tree and a non-first 1 of the other alike.  Rather
    than reconstructing the contradiction abstractly we simply evaluate
    the automaton on the family and return the first mismatch — the
    proposition guarantees one exists within the bound.

    Returns ``(tree, produced, expected)`` or ``None`` if the automaton
    miraculously survives the whole family (impossible for a true QA^u
    computing the query, by the proposition).
    """
    if qa.automaton.stay_limit not in (0, None) and qa.automaton.stay_gsqa:
        raise ValueError("impossibility applies to stay-free QA^u only")
    if width is None:
        m = len(qa.automaton.states)
        width = min(_factorial(m), 64) + 1  # cap for practicality
    for zeros in range(width):
        tree = flat_family_tree(zeros, width)
        expected = first_one_reference(tree)
        produced = qa.evaluate(tree)
        if produced != expected:
            return tree, produced, expected
    return None


def pigeonhole_pair(
    qa: UnrankedQueryAutomaton, width: int
) -> tuple[int, int] | None:
    """``j < j'`` with identical root-state sequences on ``t_j``/``t_{j'}``.

    The combinatorial heart of the proof, surfaced for tests and demos.
    """
    seen: dict[tuple, int] = {}
    for zeros in range(width):
        tree = flat_family_tree(zeros, width)
        sequence = root_state_sequence(qa.automaton, tree)
        if sequence in seen:
            return seen[sequence], zeros
        seen[sequence] = zeros
    return None


def _factorial(n: int) -> int:
    out = 1
    for k in range(2, n + 1):
        out *= k
    return out
