"""Behavior functions of two-way unranked automata (Lemma 5.16 machinery).

The unranked analogue of :mod:`repro.ranked.behavior`: the behavior
function ``f^A_{t_v}`` of every subtree is computed bottom-up — a node's
function depends on its children's functions, the slender down language,
the up classifier, and (for strong automata) at most one application of
the stay GSQA, exactly the case analysis (2a)/(2b) in the proof of
Lemma 5.16.  ``Assumed`` sets then flow top-down, yielding a linear-time
SQA^u query evaluator whose agreement with the cut simulation is
property-tested.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..trees.tree import Path, Tree
from ..strings.twoway import NonTerminatingRunError
from .twoway import (
    STAY,
    StayLimitError,
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UP,
)

State = Hashable
BehaviorFunction = dict[State, State]


def states_closure(behavior: BehaviorFunction, state: State) -> list[State]:
    """``States(f, q)``: the orbit of ``q`` under ``f``."""
    orbit = [state]
    seen = {state}
    current = state
    while current in behavior:
        nxt = behavior[current]
        if nxt == current:
            break
        if nxt in seen:
            raise NonTerminatingRunError(f"behavior cycles from {state!r}")
        orbit.append(nxt)
        seen.add(nxt)
        current = nxt
    return orbit


def up_state(behavior: BehaviorFunction, state: State) -> State | None:
    """``up(f, q)``: the fixed point reached from ``q``, if any."""
    orbit = states_closure(behavior, state)
    last = orbit[-1]
    return last if behavior.get(last) == last else None


def _excursion_result(
    automaton: TwoWayUnrankedAutomaton,
    node: Tree,
    child_functions: list[BehaviorFunction],
    state: State,
) -> tuple[State | None, tuple | None]:
    """Resolve one down excursion from ``state`` at ``node``.

    Returns ``(return_state, stay_states)`` where ``return_state`` is the
    state in which the head comes back up to the node (None if the
    excursion gets stuck) and ``stay_states`` is the tuple the stay
    transition assigned (None if no stay happened) — the latter feeds the
    ``Assumed`` computation.
    """
    arity = len(node.children)
    down = automaton.delta_down(state, node.label, arity)
    if down is None:
        return None, None

    def settle(entry_states) -> tuple | None:
        """Children enter in these states; the word at their up moment."""
        word = []
        for i, child_state in enumerate(entry_states):
            settled = up_state(child_functions[i], child_state)
            if settled is None:
                return None
            word.append((settled, node.children[i].label))
        return tuple(word)

    word = settle(down)
    if word is None:
        return None, None
    outcome = automaton.up_classifier.classify(word)
    if outcome is None:
        return None, None
    if outcome[0] == UP:
        return outcome[1], None
    # Stay transition (case 2b of Lemma 5.16): at most one for a strong
    # automaton, then the re-settled word must classify as an up.
    assert outcome[0] == STAY and automaton.stay_gsqa is not None
    stay_states = automaton.stay_gsqa.transduce(word)
    word2 = settle(stay_states)
    if word2 is None:
        return None, stay_states
    outcome2 = automaton.up_classifier.classify(word2)
    if outcome2 is None:
        return None, stay_states
    if outcome2[0] == STAY:
        if automaton.stay_limit is not None and automaton.stay_limit <= 1:
            raise StayLimitError(
                "second stay transition at the children of one node"
            )
        raise NotImplementedError(
            "behavior evaluation supports at most one stay per node"
        )
    return outcome2[1], stay_states


def behavior_functions(
    automaton: TwoWayUnrankedAutomaton, tree: Tree
) -> dict[Path, BehaviorFunction]:
    """``f^A_{t_v}`` for every node, bottom-up (Lemma 5.16)."""
    functions: dict[Path, BehaviorFunction] = {}
    for path in tree.postorder():
        node = tree.subtree(path)
        child_functions = [
            functions[path + (i,)] for i in range(len(node.children))
        ]
        behavior: BehaviorFunction = {}
        for state in automaton.states:
            pair = (state, node.label)
            if pair in automaton.up_pairs:
                behavior[state] = state
            elif pair in automaton.down_pairs:
                if not node.children:
                    target = automaton.delta_leaf.get(pair)
                    if target is not None:
                        behavior[state] = target
                else:
                    result, _stays = _excursion_result(
                        automaton, node, child_functions, state
                    )
                    if result is not None:
                        behavior[state] = result
        functions[path] = behavior
    return functions


def root_trajectory(
    automaton: TwoWayUnrankedAutomaton,
    tree: Tree,
    root_behavior: BehaviorFunction,
) -> tuple[list[State], State | None]:
    """States assumed at the root; the halting state there (None = stuck inside)."""
    label = tree.label_at(())
    arity = tree.arity_at(())
    assumed: list[State] = []
    seen: set[State] = set()
    state = automaton.initial
    while True:
        if state in seen:
            raise NonTerminatingRunError("root trajectory cycles")
        seen.add(state)
        assumed.append(state)
        pair = (state, label)
        if pair in automaton.down_pairs:
            if state in root_behavior:
                state = root_behavior[state]
                continue
            fires = (
                pair in automaton.delta_leaf
                if arity == 0
                else automaton.delta_down(state, label, arity) is not None
            )
            return assumed, (None if fires else state)
        if pair in automaton.up_pairs:
            target = automaton.delta_root.get(pair)
            if target is None:
                return assumed, state
            state = target
            continue
        return assumed, state


def assumed_sets(
    automaton: TwoWayUnrankedAutomaton,
    tree: Tree,
    functions: dict[Path, BehaviorFunction] | None = None,
) -> tuple[dict[Path, set[State]], State | None]:
    """``Assumed`` at every node plus the root halting state.

    Children receive the orbit of their down-transition state and — when a
    stay transition fires for their sibling word — also the orbit of their
    stay-assigned state.
    """
    if functions is None:
        functions = behavior_functions(automaton, tree)
    assumed: dict[Path, set[State]] = {path: set() for path in tree.nodes()}

    root_states, halting = root_trajectory(automaton, tree, functions[()])
    assumed[()] = set(root_states)

    for path in tree.nodes():
        node = tree.subtree(path)
        arity = len(node.children)
        if arity == 0:
            continue
        child_functions = [functions[path + (i,)] for i in range(arity)]
        for parent_state in assumed[path]:
            if (parent_state, node.label) not in automaton.down_pairs:
                continue
            down = automaton.delta_down(parent_state, node.label, arity)
            if down is None:
                continue
            _result, stay_states = _excursion_result(
                automaton, node, child_functions, parent_state
            )
            for i, child_state in enumerate(down):
                assumed[path + (i,)].update(
                    states_closure(child_functions[i], child_state)
                )
            if stay_states is not None:
                for i, child_state in enumerate(stay_states):
                    assumed[path + (i,)].update(
                        states_closure(child_functions[i], child_state)
                    )
    return assumed, halting


def evaluate_query_via_behavior(
    qa: UnrankedQueryAutomaton, tree: Tree
) -> frozenset[Path]:
    """Linear-time SQA^u evaluation from the Lemma 5.16 data."""
    automaton = qa.automaton
    functions = behavior_functions(automaton, tree)
    assumed, halting = assumed_sets(automaton, tree, functions)
    if halting is None or halting not in automaton.accepting:
        return frozenset()
    selected: set[Path] = set()
    for path in tree.nodes():
        label = tree.label_at(path)
        if any((state, label) in qa.selecting for state in assumed[path]):
            selected.add(path)
    return frozenset(selected)
