"""Regular expressions with Thompson construction to NFAs.

Used in two places the paper calls for regular languages given by
expressions: the right-hand sides of extended context-free grammar (DTD)
productions, and human-friendly specification of the transition languages
``L_↑(q)`` of unranked automata (e.g., Example 5.14's ``up* 1 up* + up*``).

The expression AST is alphabet-generic; :func:`parse_regex` offers a textual
syntax whose atoms are identifier tokens (so multi-character symbols such as
element names work naturally):

=============  =====================
syntax         meaning
=============  =====================
``a``          the symbol ``a``
``(e)``        grouping
``e f``        concatenation (juxtaposition; ``,`` also allowed)
``e | f``      union (``+`` also allowed, DTD-style ``|`` preferred)
``e*``         Kleene star
``e+``         one or more
``e?``         optional
``%e``         epsilon (the empty word) — written ``%``
``~``          the empty language — written ``~``
=============  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

from .nfa import EPSILON, NFA

Symbol = Hashable


class RegexError(ValueError):
    """Raised for malformed regular expressions."""


@dataclass(frozen=True)
class Empty:
    """The empty language ∅."""


@dataclass(frozen=True)
class Epsilon:
    """The language {ε}."""


@dataclass(frozen=True)
class Atom:
    """A single symbol."""

    symbol: Symbol


@dataclass(frozen=True)
class Concat:
    """Concatenation of two languages."""

    left: "Regex"
    right: "Regex"


@dataclass(frozen=True)
class Union:
    """Union of two languages."""

    left: "Regex"
    right: "Regex"


@dataclass(frozen=True)
class Star:
    """Kleene star."""

    inner: "Regex"


Regex = Union  # forward declaration aid (overwritten below)
Regex = Empty | Epsilon | Atom | Concat | Union | Star  # type: ignore[misc]


def concat_all(*parts: Regex) -> Regex:
    """Concatenation of any number of expressions (ε when empty)."""
    result: Regex = Epsilon()
    for part in parts:
        result = part if isinstance(result, Epsilon) else Concat(result, part)
    return result


def union_all(*parts: Regex) -> Regex:
    """Union of any number of expressions (∅ when empty)."""
    if not parts:
        return Empty()
    result = parts[0]
    for part in parts[1:]:
        result = Union(result, part)
    return result


def plus(inner: Regex) -> Regex:
    """``e+`` as ``e e*``."""
    return Concat(inner, Star(inner))


def optional(inner: Regex) -> Regex:
    """``e?`` as ``e | ε``."""
    return Union(inner, Epsilon())


def literal(word: tuple[Symbol, ...] | list[Symbol] | str) -> Regex:
    """The singleton language of one word (characters when given a str)."""
    return concat_all(*(Atom(symbol) for symbol in word))


def symbols_of(expr: Regex) -> frozenset[Symbol]:
    """All symbols occurring in the expression."""
    if isinstance(expr, Atom):
        return frozenset({expr.symbol})
    if isinstance(expr, (Concat, Union)):
        return symbols_of(expr.left) | symbols_of(expr.right)
    if isinstance(expr, Star):
        return symbols_of(expr.inner)
    return frozenset()


# ----------------------------------------------------------------------
# Thompson construction
# ----------------------------------------------------------------------


def to_nfa(expr: Regex, alphabet: frozenset[Symbol] | None = None) -> NFA:
    """Compile an expression to an ε-NFA by Thompson's construction.

    >>> to_nfa(parse_regex("a b* c")).accepts(["a", "b", "b", "c"])
    True
    """
    if alphabet is None:
        alphabet = symbols_of(expr)
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0]

    transitions: dict[tuple[int, Symbol], set[int]] = {}

    def add(source: int, symbol: Symbol, target: int) -> None:
        transitions.setdefault((source, symbol), set()).add(target)

    def build(node: Regex) -> tuple[int, int]:
        start, end = fresh(), fresh()
        if isinstance(node, Empty):
            pass  # no path from start to end
        elif isinstance(node, Epsilon):
            add(start, EPSILON, end)
        elif isinstance(node, Atom):
            add(start, node.symbol, end)
        elif isinstance(node, Concat):
            left_start, left_end = build(node.left)
            right_start, right_end = build(node.right)
            add(start, EPSILON, left_start)
            add(left_end, EPSILON, right_start)
            add(right_end, EPSILON, end)
        elif isinstance(node, Union):
            left_start, left_end = build(node.left)
            right_start, right_end = build(node.right)
            add(start, EPSILON, left_start)
            add(start, EPSILON, right_start)
            add(left_end, EPSILON, end)
            add(right_end, EPSILON, end)
        elif isinstance(node, Star):
            inner_start, inner_end = build(node.inner)
            add(start, EPSILON, inner_start)
            add(inner_end, EPSILON, inner_start)
            add(start, EPSILON, end)
            add(inner_end, EPSILON, end)
        else:
            raise RegexError(f"unknown regex node {node!r}")
        return start, end

    start, end = build(expr)
    states = frozenset(range(1, counter[0] + 1))
    return NFA(
        states,
        frozenset(alphabet),
        {key: frozenset(value) for key, value in transitions.items()},
        frozenset({start}),
        frozenset({end}),
    )


def to_dfa(expr: Regex, alphabet: frozenset[Symbol] | None = None):
    """Compile an expression to a (trimmed, minimized) DFA."""
    return to_nfa(expr, alphabet).determinized().minimized()


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def parse_regex(text: str) -> Regex:
    """Parse the textual regex syntax documented in the module docstring.

    >>> parse_regex("up* 1 up* | up*")  # doctest: +ELLIPSIS
    Union(...)
    """
    tokens = _tokenize(text)
    pos = [0]

    def peek() -> str | None:
        return tokens[pos[0]] if pos[0] < len(tokens) else None

    def advance() -> str:
        token = tokens[pos[0]]
        pos[0] += 1
        return token

    def parse_union() -> Regex:
        left = parse_concat()
        while peek() in ("|", "+") and _is_infix_plus(tokens, pos[0]):
            advance()
            left = Union(left, parse_concat())
        return left

    def parse_concat() -> Regex:
        parts = [parse_postfix()]
        while peek() not in (None, "|", ")") and not (
            peek() == "+" and _is_infix_plus(tokens, pos[0])
        ):
            if peek() == ",":
                advance()
                continue
            parts.append(parse_postfix())
        return concat_all(*parts)

    def parse_postfix() -> Regex:
        node = parse_atom()
        while True:
            token = peek()
            if token == "*":
                advance()
                node = Star(node)
            elif token == "?":
                advance()
                node = optional(node)
            elif token == "+" and not _is_infix_plus(tokens, pos[0]):
                advance()
                node = plus(node)
            else:
                return node

    def parse_atom() -> Regex:
        token = peek()
        if token is None:
            raise RegexError(f"unexpected end of regex {text!r}")
        if token == "(":
            advance()
            node = parse_union()
            if peek() != ")":
                raise RegexError(f"missing ')' in {text!r}")
            advance()
            return node
        if token == "%":
            advance()
            return Epsilon()
        if token == "~":
            advance()
            return Empty()
        if token in (")", "|", "*", "?", ","):
            raise RegexError(f"unexpected {token!r} in {text!r}")
        advance()
        return Atom(token)

    result = parse_union()
    if pos[0] != len(tokens):
        raise RegexError(f"trailing tokens in {text!r}")
    return result


def _is_infix_plus(tokens: list[str], index: int) -> bool:
    """Disambiguate ``+``: infix union when followed by an atom-starter."""
    if tokens[index] == "|":
        return True
    nxt = tokens[index + 1] if index + 1 < len(tokens) else None
    return nxt is not None and nxt not in (")", "|", "*", "+", "?", ",")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char.isspace():
            i += 1
        elif char in "()|*+?,%~":
            tokens.append(char)
            i += 1
        else:
            start = i
            while i < len(text) and not text[i].isspace() and text[i] not in "()|*+?,%~":
                i += 1
            tokens.append(text[start:i])
    return tokens
