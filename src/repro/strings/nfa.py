"""Nondeterministic finite automata (with ε-transitions) and determinization.

Matches Section 2.2's definition (a set of initial states, transition
function into the powerset) extended with ε-moves for convenient Thompson
construction from regular expressions.  The subset construction
(:meth:`NFA.determinized`) realizes the classical NFA→DFA translation the
paper relies on implicitly whenever it says "represented by NFAs".
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from .dfa import DFA, AutomatonError

State = Hashable
Symbol = Hashable

#: Sentinel used as the "symbol" of ε-transitions.
EPSILON = ("__epsilon__",)


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton, possibly with ε-moves.

    ``transitions`` maps ``(state, symbol)`` to a frozenset of successor
    states; the symbol :data:`EPSILON` marks ε-transitions.
    """

    states: frozenset[State]
    alphabet: frozenset[Symbol]
    transitions: dict[tuple[State, Symbol], frozenset[State]]
    initials: frozenset[State]
    accepting: frozenset[State]

    def __post_init__(self) -> None:
        if not self.initials <= self.states:
            raise AutomatonError("initial states must be a subset of states")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for (source, symbol), targets in self.transitions.items():
            if source not in self.states or not targets <= self.states:
                raise AutomatonError("transition uses unknown states")
            if symbol is not EPSILON and symbol not in self.alphabet:
                raise AutomatonError(f"transition symbol {symbol!r} not in alphabet")

    @staticmethod
    def build(
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: dict[tuple[State, Symbol], Iterable[State]],
        initials: Iterable[State],
        accepting: Iterable[State],
    ) -> "NFA":
        """Convenience constructor accepting any iterables."""
        return NFA(
            frozenset(states),
            frozenset(alphabet),
            {key: frozenset(value) for key, value in transitions.items()},
            frozenset(initials),
            frozenset(accepting),
        )

    @property
    def size(self) -> int:
        """|states| + |alphabet| (paper's size measure)."""
        return len(self.states) + len(self.alphabet)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """All states reachable from ``states`` by ε-moves."""
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for target in self.transitions.get((state, EPSILON), ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: Symbol) -> frozenset[State]:
        """The ε-closed successor set after reading one symbol."""
        moved: set[State] = set()
        for state in states:
            moved |= self.transitions.get((state, symbol), frozenset())
        return self.epsilon_closure(moved)

    def run(self, word: Iterable[Symbol]) -> frozenset[State]:
        """The set of states reachable on the word."""
        current = self.epsilon_closure(self.initials)
        for symbol in word:
            current = self.step(current, symbol)
        return current

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Membership test."""
        return bool(self.run(word) & self.accepting)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def determinized(self) -> DFA:
        """Subset construction; result states are frozensets of NFA states.

        Only reachable subsets are materialized, so the output is often far
        smaller than :math:`2^{|Q|}` in practice (the benchmarks in
        ``bench_twoway_conversion`` measure the actual blowup).  The search
        runs on the bitset kernel (:mod:`repro.perf.bitset`): subsets are
        Python-int masks advanced by precomputed per-symbol successor
        tables, and are thawed to frozensets only once, at the end.
        """
        from ..perf.bitset import PackedNFA, iter_bits

        packed = PackedNFA(self)
        initial = packed.initial_mask
        seen: dict[int, frozenset[State]] = {initial: packed.subset_of(initial)}
        transitions: dict[tuple[State, Symbol], State] = {}
        frontier = [initial]
        symbols = sorted(self.alphabet, key=repr)
        rows = [packed.succ.get(symbol) for symbol in symbols]
        while frontier:
            mask = frontier.pop()
            source = seen[mask]
            for symbol, row in zip(symbols, rows):
                if row is None:
                    target_mask = 0
                else:
                    target_mask = 0
                    for i in iter_bits(mask):
                        target_mask |= row[i]
                subset = seen.get(target_mask)
                if subset is None:
                    subset = packed.subset_of(target_mask)
                    seen[target_mask] = subset
                    frontier.append(target_mask)
                transitions[(source, symbol)] = subset
        states = frozenset(seen.values())
        accepting = frozenset(
            subset for subset in states if subset & self.accepting
        )
        return DFA(
            states,
            self.alphabet,
            transitions,
            seen[initial],
            accepting,
        )

    def is_empty(self) -> bool:
        """True iff no word is accepted (reachability check)."""
        seen = set(self.epsilon_closure(self.initials))
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            if state in self.accepting:
                return False
            for (source, _symbol), targets in self.transitions.items():
                if source != state:
                    continue
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return not (seen & self.accepting)

    def trimmed(self) -> "NFA":
        """Restrict to states reachable from the initial states.

        Keeps nested product constructions (MSO compilation) from carrying
        dead Cartesian-product states through further products.
        """
        reachable = set(self.epsilon_closure(self.initials))
        frontier = list(reachable)
        while frontier:
            state = frontier.pop()
            for symbol in list(self.alphabet) + [EPSILON]:
                for target in self.transitions.get((state, symbol), ()):
                    if target not in reachable:
                        reachable.add(target)
                        frontier.append(target)
        return NFA(
            frozenset(reachable),
            self.alphabet,
            {
                key: targets & frozenset(reachable)
                for key, targets in self.transitions.items()
                if key[0] in reachable
            },
            self.initials & frozenset(reachable),
            self.accepting & frozenset(reachable),
        )

    def reversed_nfa(self) -> "NFA":
        """NFA for the reversal of the language."""
        transitions: dict[tuple[State, Symbol], set[State]] = {}
        for (source, symbol), targets in self.transitions.items():
            for target in targets:
                transitions.setdefault((target, symbol), set()).add(source)
        return NFA.build(
            self.states,
            self.alphabet,
            {key: frozenset(value) for key, value in transitions.items()},
            self.accepting,
            self.initials,
        )

    @staticmethod
    def from_dfa(dfa: DFA) -> "NFA":
        """View a DFA as an NFA."""
        return NFA(
            dfa.states,
            dfa.alphabet,
            {
                key: frozenset({target})
                for key, target in dfa.transitions.items()
            },
            frozenset({dfa.initial}),
            dfa.accepting,
        )


def intersection_nfa(left: NFA, right: NFA) -> NFA:
    """Product NFA for the intersection of the two languages.

    Only product states reachable from the initial pairs are materialized,
    which keeps nested products (the MSO compiler) tractable.
    """
    if left.alphabet != right.alphabet:
        raise AutomatonError("product requires identical alphabets")
    # ε-eliminate by determinizing when ε-moves are present (simplest correct path).
    if any(symbol is EPSILON for _, symbol in left.transitions):
        left = NFA.from_dfa(left.determinized().trimmed())
    if any(symbol is EPSILON for _, symbol in right.transitions):
        right = NFA.from_dfa(right.determinized().trimmed())
    initials = frozenset((a, b) for a in left.initials for b in right.initials)
    states: set[State] = set(initials)
    transitions: dict[tuple[State, Symbol], frozenset[State]] = {}
    frontier = list(initials)
    while frontier:
        a, b = frontier.pop()
        for symbol in left.alphabet:
            targets_a = left.transitions.get((a, symbol), frozenset())
            targets_b = right.transitions.get((b, symbol), frozenset())
            if not targets_a or not targets_b:
                continue
            targets = frozenset((ta, tb) for ta in targets_a for tb in targets_b)
            transitions[((a, b), symbol)] = targets
            for target in targets:
                if target not in states:
                    states.add(target)
                    frontier.append(target)
    accepting = frozenset(
        (a, b) for (a, b) in states if a in left.accepting and b in right.accepting
    )
    return NFA(frozenset(states), left.alphabet, transitions, initials, accepting)


def union_nfa(left: NFA, right: NFA) -> NFA:
    """Disjoint-union NFA for the union of the two languages."""
    if left.alphabet != right.alphabet:
        raise AutomatonError("union requires identical alphabets")

    def tag(which: int, state: State) -> State:
        return (which, state)

    states = frozenset(tag(0, s) for s in left.states) | frozenset(
        tag(1, s) for s in right.states
    )
    transitions: dict[tuple[State, Symbol], frozenset[State]] = {}
    for (source, symbol), targets in left.transitions.items():
        transitions[(tag(0, source), symbol)] = frozenset(tag(0, t) for t in targets)
    for (source, symbol), targets in right.transitions.items():
        transitions[(tag(1, source), symbol)] = frozenset(tag(1, t) for t in targets)
    initials = frozenset(tag(0, s) for s in left.initials) | frozenset(
        tag(1, s) for s in right.initials
    )
    accepting = frozenset(tag(0, s) for s in left.accepting) | frozenset(
        tag(1, s) for s in right.accepting
    )
    return NFA(states, left.alphabet, transitions, initials, accepting)
