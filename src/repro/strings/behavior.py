"""Behavior functions of two-way string automata (Theorem 3.9 machinery).

For a 2DFA ``M`` and input ``w``, the *behavior function*
``f⁻_{w_1...w_i} : S → S`` records what an excursion into the prefix does:
``f(s) = s`` when ``(s, w_i) ∈ R``, and otherwise the first state in which
``M`` returns to position ``i`` after moving left in state ``s`` (undefined
when it never returns).  The proof of Theorem 3.9 shows that the functions
``f⁻``, the states ``first(w, i)`` (the first state in which position ``i``
is reached) and the sets ``Assumed(w, i)`` are determined by *local*
recurrences — its items (1)–(4) — which we implement verbatim here.

This yields a **linear-time query evaluator** for ``QA^string``
(:func:`evaluate_query_via_behavior`): one left-to-right pass fixes ``f⁻``
and ``first``, one right-to-left pass fixes ``Assumed``, and a position is
selected iff some assumed state is selecting.  Its agreement with direct
simulation is the executable content of Theorem 3.9's "only if" direction
and is property-tested.

Positions use the marked-string convention of :mod:`repro.strings.twoway`:
index 0 is ``⊳``, indices ``1..n`` the word, ``n+1`` is ``⊲``.  The
evaluator requires the paper's standing convention that the automaton
always halts *at the right endmarker*; a run that would halt elsewhere
raises :class:`BehaviorError` (direct simulation remains available for such
automata).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .twoway import (
    LEFT_MARKER,
    NonTerminatingRunError,
    StringQueryAutomaton,
    TwoWayDFA,
)

State = Hashable
Symbol = Hashable

#: A behavior function: a partial map from states to states.
BehaviorFunction = dict[State, State]


class BehaviorError(RuntimeError):
    """The run does not conform to the halt-at-``⊲`` convention."""


def states_closure(behavior: BehaviorFunction, state: State) -> list[State]:
    """``States(f, s)``: the orbit of ``s`` under ``f`` (Theorem 3.9).

    Returned in iteration order; stops when ``f`` is undefined or a state
    repeats with ``f(s') = s'`` (a proper cycle raises — the automaton
    would not halt).
    """
    orbit = [state]
    seen = {state}
    current = state
    while current in behavior:
        nxt = behavior[current]
        if nxt == current:
            break  # fixed point: (current, cell) ∈ R
        if nxt in seen:
            raise NonTerminatingRunError(
                f"behavior function cycles on state {state!r}"
            )
        orbit.append(nxt)
        seen.add(nxt)
        current = nxt
    return orbit


def right_state(
    automaton: TwoWayDFA,
    behavior: BehaviorFunction,
    state: State,
    cell: Hashable,
) -> State | None:
    """``right(f, s, σ)``: the state in which the next right move happens.

    Iterates the behavior function from ``s`` until reaching a state ``s'``
    with ``(s', σ) ∈ R``; ``None`` when the machine instead halts (or the
    excursion never returns).
    """
    for candidate in states_closure(behavior, state):
        if automaton.in_right(candidate, cell):
            return candidate
    return None


def left_behavior_functions(
    automaton: TwoWayDFA, word: Sequence[Symbol]
) -> list[BehaviorFunction]:
    """All prefix behavior functions ``f⁻_0 .. f⁻_{n+1}`` (items 1–2).

    Index ``i`` is the behavior function *at* marked position ``i`` (for
    the prefix of cells ``0..i``).
    """
    cells = automaton.cells(word)
    functions: list[BehaviorFunction] = []

    # Base: at ⊳ only right moves exist (left moves off ⊳ are illegal).
    base: BehaviorFunction = {
        state: state
        for state in automaton.states
        if automaton.in_right(state, LEFT_MARKER)
    }
    functions.append(base)

    for i in range(1, len(cells)):
        cell, previous_cell = cells[i], cells[i - 1]
        previous = functions[-1]
        current: BehaviorFunction = {}
        for state in automaton.states:
            if automaton.in_right(state, cell):
                current[state] = state
                continue
            if not automaton.in_left(state, cell):
                continue  # halting pair: f undefined
            entered = automaton.left_moves[(state, cell)]
            returner = right_state(automaton, previous, entered, previous_cell)
            if returner is None:
                continue
            current[state] = automaton.right_moves[(returner, previous_cell)]
        functions.append(current)
    return functions


def first_states(
    automaton: TwoWayDFA,
    word: Sequence[Symbol],
    functions: list[BehaviorFunction] | None = None,
) -> list[State | None]:
    """``first(w, i)`` for every marked position (item 1 and item 2).

    ``None`` means the run halts before ever reaching position ``i``.
    """
    cells = automaton.cells(word)
    if functions is None:
        functions = left_behavior_functions(automaton, word)
    firsts: list[State | None] = [automaton.initial]
    for i in range(1, len(cells)):
        previous = firsts[-1]
        if previous is None:
            firsts.append(None)
            continue
        mover = right_state(automaton, functions[i - 1], previous, cells[i - 1])
        if mover is None:
            firsts.append(None)
        else:
            firsts.append(automaton.right_moves[(mover, cells[i - 1])])
    return firsts


def assumed_via_behavior(
    automaton: TwoWayDFA, word: Sequence[Symbol]
) -> tuple[list[set[State]], State]:
    """``Assumed(w, i)`` for all marked positions, plus the halting state.

    Implements items (3) and (4) of Theorem 3.9: the ``Assumed`` sets are
    fixed right-to-left from the behavior functions and the ``first``
    states.  Unlike the paper's presentation we do not require halting at
    ``⊲``: the recurrence is seeded at the rightmost position the run
    reaches, which makes the evaluator total over halting 2DFAs (the run of
    Example 3.4, for instance, ends at ``⊳``).
    """
    cells = automaton.cells(word)
    functions = left_behavior_functions(automaton, word)
    firsts = first_states(automaton, word, functions)

    rightmost = max(i for i, state in enumerate(firsts) if state is not None)

    assumed: list[set[State]] = [set() for _ in cells]
    assumed[rightmost] = set(states_closure(functions[rightmost], firsts[rightmost]))
    for i in range(rightmost - 1, -1, -1):
        bucket: set[State] = set()
        if firsts[i] is not None:
            bucket.update(states_closure(functions[i], firsts[i]))
        for later in assumed[i + 1]:
            if automaton.in_left(later, cells[i + 1]):
                entered = automaton.left_moves[(later, cells[i + 1])]
                bucket.update(states_closure(functions[i], entered))
        assumed[i] = bucket

    # The halting configuration is the unique assumed (position, state)
    # with no applicable transition; the Assumed sets are exact, so exactly
    # one exists for a halting automaton.
    halting_configurations = [
        (i, state)
        for i in range(rightmost + 1)
        for state in assumed[i]
        if automaton.move(state, cells[i]) is None
    ]
    if len(halting_configurations) != 1:
        raise BehaviorError(
            f"expected one halting configuration, found {halting_configurations!r}"
        )
    _position, halting = halting_configurations[0]
    return assumed, halting


def evaluate_query_via_behavior(
    qa: StringQueryAutomaton, word: Sequence[Symbol]
) -> frozenset[int]:
    """Evaluate a ``QA^string`` in linear time via Theorem 3.9's data.

    Returns the selected 1-based positions of ``w``; agrees with
    :meth:`StringQueryAutomaton.evaluate` on automata that halt at ``⊲``.
    """
    assumed, halting = assumed_via_behavior(qa.automaton, word)
    if halting not in qa.automaton.accepting:
        return frozenset()
    selected: set[int] = set()
    for position in range(1, len(word) + 1):
        symbol = word[position - 1]
        if any((state, symbol) in qa.selecting for state in assumed[position]):
            selected.add(position)
    return frozenset(selected)
