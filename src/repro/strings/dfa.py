"""Deterministic finite automata over arbitrary hashable alphabets.

The workhorse representation for regular string languages throughout the
library: DTD content models, the transition languages ``L_↑(q)`` of unranked
two-way tree automata (the paper requires these to be *deterministic*, see
the discussion at the end of Theorem 6.3), and the targets of the MSO
compiler of Theorem 2.5.

A DFA here may be *partial*: a missing transition means the word is
rejected.  :meth:`DFA.completed` adds an explicit sink when totality is
needed (e.g., before complementation).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

State = Hashable
Symbol = Hashable


class AutomatonError(ValueError):
    """Raised for ill-formed automata."""


@dataclass(frozen=True)
class DFA:
    """A (possibly partial) deterministic finite automaton.

    Parameters
    ----------
    states:
        Finite set of states.
    alphabet:
        Finite input alphabet.
    transitions:
        Mapping ``(state, symbol) -> state``; pairs may be absent.
    initial:
        The start state.
    accepting:
        The set of final states.
    """

    states: frozenset[State]
    alphabet: frozenset[Symbol]
    transitions: dict[tuple[State, Symbol], State]
    initial: State
    accepting: frozenset[State]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError(f"initial state {self.initial!r} not in states")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for (source, symbol), target in self.transitions.items():
            if source not in self.states or target not in self.states:
                raise AutomatonError(
                    f"transition {source!r} --{symbol!r}--> {target!r} uses unknown states"
                )
            if symbol not in self.alphabet:
                raise AutomatonError(f"transition symbol {symbol!r} not in alphabet")

    @staticmethod
    def build(
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: dict[tuple[State, Symbol], State],
        initial: State,
        accepting: Iterable[State],
    ) -> "DFA":
        """Convenience constructor accepting any iterables."""
        return DFA(
            frozenset(states),
            frozenset(alphabet),
            dict(transitions),
            initial,
            frozenset(accepting),
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self, state: State, symbol: Symbol) -> State | None:
        """One transition; ``None`` when undefined."""
        return self.transitions.get((state, symbol))

    def run(self, word: Iterable[Symbol]) -> State | None:
        """The state ``δ*(initial, word)``, or ``None`` if the run dies."""
        state: State | None = self.initial
        for symbol in word:
            if state is None:
                return None
            state = self.step(state, symbol)
        return state

    def run_states(self, word: Iterable[Symbol]) -> list[State | None]:
        """The full state sequence (length ``|word| + 1``, starting state first)."""
        states: list[State | None] = [self.initial]
        for symbol in word:
            prev = states[-1]
            states.append(None if prev is None else self.step(prev, symbol))
        return states

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Membership test."""
        state = self.run(word)
        return state is not None and state in self.accepting

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """|states| + |alphabet| (the paper's size measure for automata)."""
        return len(self.states) + len(self.alphabet)

    def is_total(self) -> bool:
        """True iff every (state, symbol) pair has a transition."""
        return all(
            (state, symbol) in self.transitions
            for state in self.states
            for symbol in self.alphabet
        )

    def completed(self, sink: State = ("__sink__",)) -> "DFA":
        """Return a total DFA, adding a non-accepting sink if needed."""
        if self.is_total():
            return self
        if sink in self.states:
            raise AutomatonError(f"sink name {sink!r} collides with a state")
        transitions = dict(self.transitions)
        states = self.states | {sink}
        for state in states:
            for symbol in self.alphabet:
                transitions.setdefault((state, symbol), sink)
        return DFA(states, self.alphabet, transitions, self.initial, self.accepting)

    def reachable_states(self) -> frozenset[State]:
        """States reachable from the initial state."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for symbol in self.alphabet:
                target = self.step(state, symbol)
                if target is not None and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def trimmed(self) -> "DFA":
        """Restrict to reachable states."""
        reachable = self.reachable_states()
        return DFA(
            reachable,
            self.alphabet,
            {
                key: target
                for key, target in self.transitions.items()
                if key[0] in reachable
            },
            self.initial,
            self.accepting & reachable,
        )

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def complement(self) -> "DFA":
        """DFA for the complement language (w.r.t. this alphabet)."""
        total = self.completed()
        return DFA(
            total.states,
            total.alphabet,
            total.transitions,
            total.initial,
            total.states - total.accepting,
        )

    def _product(self, other: "DFA", accept_both: bool, accept_either: bool) -> "DFA":
        if self.alphabet != other.alphabet:
            raise AutomatonError("product requires identical alphabets")
        left = self.completed()
        right = other.completed()
        initial = (left.initial, right.initial)
        states: set[tuple[State, State]] = {initial}
        transitions: dict[tuple[State, Symbol], State] = {}
        frontier = [initial]
        while frontier:
            a, b = frontier.pop()
            for symbol in self.alphabet:
                target = (left.transitions[(a, symbol)], right.transitions[(b, symbol)])
                transitions[((a, b), symbol)] = target
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        states = frozenset(states)
        if accept_both:
            accepting = frozenset(
                (a, b) for a, b in states if a in left.accepting and b in right.accepting
            )
        elif accept_either:
            accepting = frozenset(
                (a, b) for a, b in states if a in left.accepting or b in right.accepting
            )
        else:  # symmetric difference — used for equivalence checking
            accepting = frozenset(
                (a, b)
                for a, b in states
                if (a in left.accepting) != (b in right.accepting)
            )
        return DFA(states, self.alphabet, transitions, initial, accepting)

    def intersection(self, other: "DFA") -> "DFA":
        """DFA for the intersection of the two languages."""
        return self._product(other, accept_both=True, accept_either=False)

    def union(self, other: "DFA") -> "DFA":
        """DFA for the union of the two languages."""
        return self._product(other, accept_both=False, accept_either=True)

    # ------------------------------------------------------------------
    # Decision procedures
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the language is empty."""
        return not (self.reachable_states() & self.accepting)

    def shortest_accepted(self) -> list[Symbol] | None:
        """A shortest accepted word, or ``None`` when the language is empty."""
        if self.initial in self.accepting:
            return []
        parent: dict[State, tuple[State, Symbol]] = {}
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            next_frontier: list[State] = []
            for state in frontier:
                for symbol in sorted(self.alphabet, key=repr):
                    target = self.step(state, symbol)
                    if target is None or target in seen:
                        continue
                    seen.add(target)
                    parent[target] = (state, symbol)
                    if target in self.accepting:
                        word: list[Symbol] = []
                        node = target
                        while node != self.initial:
                            node, sym = parent[node]
                            word.append(sym)
                        return list(reversed(word))
                    next_frontier.append(target)
            frontier = next_frontier
        return None

    def is_disjoint(self, other: "DFA") -> bool:
        """True iff the two languages have no common word."""
        return self.intersection(other).is_empty()

    def equivalent(self, other: "DFA") -> bool:
        """Language equality, by Hopcroft–Karp union-find.

        Merges states that must be language-equal, starting from the two
        initial states, and fails as soon as an accepting state is merged
        with a rejecting one — near-linear in the reachable product,
        without materializing the symmetric-difference automaton.
        """
        if self.alphabet != other.alphabet:
            raise AutomatonError("equivalence requires identical alphabets")
        left = self.completed()
        right = other.completed()
        symbols = sorted(self.alphabet, key=repr)

        parent: dict[tuple[int, State], tuple[int, State]] = {}

        def find(node: tuple[int, State]) -> tuple[int, State]:
            root = node
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(node, node) != node:
                parent[node], node = root, parent[node]
            return root

        def accepts(node: tuple[int, State]) -> bool:
            side, state = node
            return state in (left.accepting if side == 0 else right.accepting)

        pending = [((0, left.initial), (1, right.initial))]
        while pending:
            a, b = pending.pop()
            ra, rb = find(a), find(b)
            if ra == rb:
                continue
            if accepts(a) != accepts(b):
                return False
            parent[ra] = rb
            for symbol in symbols:
                side_a, state_a = a
                side_b, state_b = b
                next_a = (
                    (0, left.transitions[(state_a, symbol)])
                    if side_a == 0
                    else (1, right.transitions[(state_a, symbol)])
                )
                next_b = (
                    (0, left.transitions[(state_b, symbol)])
                    if side_b == 0
                    else (1, right.transitions[(state_b, symbol)])
                )
                pending.append((next_a, next_b))
        return True

    # ------------------------------------------------------------------
    # Minimization (partition refinement)
    # ------------------------------------------------------------------

    def minimized(self, engine: str = "hopcroft") -> "DFA":
        """The canonical minimal DFA for this language.

        ``engine`` selects the partition-refinement implementation in
        :mod:`repro.perf.minimize` — ``"hopcroft"`` (default, the n·log n
        splitter-worklist algorithm over integer-indexed states) or
        ``"moore"`` (the quadratic signature refinement, retained as the
        differential oracle; same convention as ``engine="naive"`` in
        :mod:`repro.decision.closure`).  Both complete and trim first and
        return identical automata up to state naming: states of the result
        are frozensets of original states (the equivalence blocks).
        """
        from ..perf.minimize import hopcroft_minimized, moore_minimized

        if engine == "hopcroft":
            return hopcroft_minimized(self)
        if engine == "moore":
            return moore_minimized(self)
        raise AutomatonError(f"unknown minimization engine {engine!r}")

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def words_of_length(self, length: int) -> Iterator[tuple[Symbol, ...]]:
        """Enumerate all accepted words of exactly the given length."""
        symbols = sorted(self.alphabet, key=repr)

        def extend(state: State, remaining: int) -> Iterator[tuple[Symbol, ...]]:
            if remaining == 0:
                if state in self.accepting:
                    yield ()
                return
            for symbol in symbols:
                target = self.step(state, symbol)
                if target is None:
                    continue
                for suffix in extend(target, remaining - 1):
                    yield (symbol,) + suffix

        yield from extend(self.initial, length)

    def reversed_dfa(self) -> "DFA":
        """A DFA for the reversal of the language (via reverse-NFA subset construction)."""
        from .nfa import NFA

        reverse_transitions: dict[tuple[State, Symbol], frozenset[State]] = {}
        grouped: dict[tuple[State, Symbol], set[State]] = {}
        for (source, symbol), target in self.transitions.items():
            grouped.setdefault((target, symbol), set()).add(source)
        for key, sources in grouped.items():
            reverse_transitions[key] = frozenset(sources)
        nfa = NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=reverse_transitions,
            initials=self.accepting,
            accepting=frozenset({self.initial}),
        )
        return nfa.determinized()


def singleton_dfa(alphabet: Iterable[Symbol], word: Iterable[Symbol]) -> DFA:
    """A DFA accepting exactly one word."""
    word = tuple(word)
    states: set[State] = set(range(len(word) + 1))
    transitions = {(i, symbol): i + 1 for i, symbol in enumerate(word)}
    return DFA.build(states, alphabet, transitions, 0, {len(word)})


def universal_dfa(alphabet: Iterable[Symbol]) -> DFA:
    """A DFA accepting every word over the alphabet."""
    alphabet = frozenset(alphabet)
    return DFA.build(
        {0}, alphabet, {(0, symbol): 0 for symbol in alphabet}, 0, {0}
    )


def empty_dfa(alphabet: Iterable[Symbol]) -> DFA:
    """A DFA accepting nothing."""
    return DFA.build({0}, frozenset(alphabet), {}, 0, set())
