"""Two-way deterministic finite automata on strings (Definition 3.1).

A 2DFA reads its input between endmarkers ``⊳ w ⊲`` and may move its head
left or right.  The move direction is determined by disjoint sets ``L`` and
``R`` of (state, symbol) pairs; the transition functions ``δ_←`` and ``δ_→``
are defined on ``L`` and ``R`` respectively.  The automaton never moves left
off ``⊳`` nor right off ``⊲`` (enforced at construction).

Positions
---------
We index the marked string ``⊳ w_1 ... w_n ⊲`` by ``0 .. n+1`` where
position 0 carries ``⊳`` and position ``n+1`` carries ``⊲``; positions
``1 .. n`` carry the input word, matching the paper's 1-based positions of
``w``.  A *run* starts at position 0 in the initial state and ends when no
transition applies; it is *accepting* when the final state is in ``F``.

The paper assumes every automaton halts on every input (a decidable
property; see :mod:`repro.decision`).  Direct simulation enforces this
dynamically: a run revisiting a configuration raises
:class:`NonTerminatingRunError`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field
from enum import Enum

from .dfa import AutomatonError

State = Hashable
Symbol = Hashable


class Marker(Enum):
    """The endmarkers ``⊳`` (LEFT) and ``⊲`` (RIGHT)."""

    LEFT = "⊳"
    RIGHT = "⊲"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


LEFT_MARKER = Marker.LEFT
RIGHT_MARKER = Marker.RIGHT

#: What a transition table cell may read: an input symbol or an endmarker.
Cell = Symbol


class NonTerminatingRunError(RuntimeError):
    """A two-way run revisited a configuration (the automaton cycles),
    or exceeded its configurable step budget."""


def as_symbol_sequence(word: Sequence[Symbol]) -> tuple[Symbol, ...]:
    """Any ``Sequence[Symbol]`` — including a ``str`` — as a symbol tuple.

    Strings are treated as sequences of their characters, so callers may
    pass ``"0110"`` and ``["0", "1", "1", "0"]`` interchangeably.
    """
    if isinstance(word, tuple):
        return word
    return tuple(word)


@dataclass(frozen=True)
class TwoWayDFA:
    """A two-way deterministic finite automaton with endmarkers.

    Parameters
    ----------
    states:
        Finite state set ``S``.
    alphabet:
        Input alphabet ``Σ`` (endmarkers are implicit and must not occur).
    initial:
        The start state ``s_0``.
    accepting:
        The final states ``F``.
    left_moves:
        ``δ_← : L → S`` given as ``{(state, cell): next_state}``; cells range
        over ``Σ ∪ {⊲}`` (a left move from ``⊳`` is illegal).
    right_moves:
        ``δ_→ : R → S``; cells range over ``Σ ∪ {⊳}`` (no right move off ``⊲``).
    """

    states: frozenset[State]
    alphabet: frozenset[Symbol]
    initial: State
    accepting: frozenset[State]
    left_moves: dict[tuple[State, Cell], State]
    right_moves: dict[tuple[State, Cell], State]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError("initial state unknown")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        if LEFT_MARKER in self.alphabet or RIGHT_MARKER in self.alphabet:
            raise AutomatonError("endmarkers may not occur in the alphabet")
        overlap = self.left_moves.keys() & self.right_moves.keys()
        if overlap:
            raise AutomatonError(f"L and R overlap on {sorted(overlap, key=repr)!r}")
        for (state, cell), target in self.left_moves.items():
            if state not in self.states or target not in self.states:
                raise AutomatonError("left move uses unknown state")
            if cell == LEFT_MARKER:
                raise AutomatonError("cannot move left from ⊳")
            if cell != RIGHT_MARKER and cell not in self.alphabet:
                raise AutomatonError(f"left move on unknown cell {cell!r}")
        for (state, cell), target in self.right_moves.items():
            if state not in self.states or target not in self.states:
                raise AutomatonError("right move uses unknown state")
            if cell == RIGHT_MARKER:
                raise AutomatonError("cannot move right from ⊲")
            if cell != LEFT_MARKER and cell not in self.alphabet:
                raise AutomatonError(f"right move on unknown cell {cell!r}")

    @staticmethod
    def build(
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        initial: State,
        accepting: Iterable[State],
        left_moves: dict[tuple[State, Cell], State],
        right_moves: dict[tuple[State, Cell], State],
    ) -> "TwoWayDFA":
        """Convenience constructor accepting any iterables."""
        return TwoWayDFA(
            frozenset(states),
            frozenset(alphabet),
            initial,
            frozenset(accepting),
            dict(left_moves),
            dict(right_moves),
        )

    @property
    def size(self) -> int:
        """|S| + |Σ| (the paper's automaton size)."""
        return len(self.states) + len(self.alphabet)

    # ------------------------------------------------------------------
    # Cells and moves
    # ------------------------------------------------------------------

    @staticmethod
    def cells(word: Sequence[Symbol]) -> list[Cell]:
        """The marked string ``⊳ w ⊲`` as a list indexed ``0 .. n+1``."""
        return [LEFT_MARKER, *word, RIGHT_MARKER]

    def move(self, state: State, cell: Cell) -> tuple[int, State] | None:
        """The (direction, next state) of the unique applicable transition.

        Direction is ``-1`` (left) or ``+1`` (right); ``None`` when the
        automaton halts on this (state, cell) pair.
        """
        target = self.left_moves.get((state, cell))
        if target is not None:
            return (-1, target)
        target = self.right_moves.get((state, cell))
        if target is not None:
            return (+1, target)
        return None

    def in_left(self, state: State, cell: Cell) -> bool:
        """Is ``(state, cell) ∈ L``?"""
        return (state, cell) in self.left_moves

    def in_right(self, state: State, cell: Cell) -> bool:
        """Is ``(state, cell) ∈ R``?"""
        return (state, cell) in self.right_moves

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(
        self, word: Sequence[Symbol], max_steps: int | None = None
    ) -> list[tuple[State, int]]:
        """The full run on ``word`` as a list of (state, position) pairs.

        Positions refer to the marked string (0 = ``⊳``).  Raises
        :class:`NonTerminatingRunError` when a configuration repeats, or —
        when the configurable budget ``max_steps`` is given — when the run
        takes more than that many steps (the error reports how many
        configurations were visited).
        """
        from .. import obs

        word = as_symbol_sequence(word)
        cells = self.cells(word)
        state, position = self.initial, 0
        trace = [(state, position)]
        seen = {(state, position)}
        while True:
            if max_steps is not None and len(trace) > max_steps:
                sink = obs.SINK
                if sink.enabled:
                    sink.incr("twoway.budget_trips")
                    sink.incr("twoway.steps", len(trace) - 1)
                raise NonTerminatingRunError(
                    f"run exceeded the step budget of {max_steps} after "
                    f"visiting {len(seen)} configurations on input {word!r}"
                )
            step = self.move(state, cells[position])
            if step is None:
                sink = obs.SINK
                if sink.enabled:
                    sink.incr("twoway.runs")
                    sink.incr("twoway.steps", len(trace) - 1)
                return trace
            direction, state = step
            position += direction
            configuration = (state, position)
            if configuration in seen:
                raise NonTerminatingRunError(
                    f"configuration {configuration!r} repeats on input {word!r} "
                    f"after visiting {len(seen)} configurations"
                )
            seen.add(configuration)
            trace.append(configuration)

    def final_configuration(
        self, word: Sequence[Symbol], max_steps: int | None = None
    ) -> tuple[State, int]:
        """The halting (state, position) of the run."""
        return self.run(word, max_steps)[-1]

    def accepts(
        self, word: Sequence[Symbol], max_steps: int | None = None
    ) -> bool:
        """True iff the run halts in an accepting state."""
        state, _position = self.final_configuration(word, max_steps)
        return state in self.accepting

    def assumed_states(self, word: Sequence[Symbol]) -> list[set[State]]:
        """``Assumed(w, i)`` for every marked position ``i`` (Theorem 3.9).

        Index 0 is ``⊳``; indices ``1 .. n`` are the word; ``n+1`` is ``⊲``.
        """
        assumed: list[set[State]] = [set() for _ in range(len(word) + 2)]
        for state, position in self.run(word):
            assumed[position].add(state)
        return assumed


@dataclass(frozen=True)
class StringQueryAutomaton:
    """A query automaton on strings, ``QA^string`` (Definition 3.2).

    A 2DFA plus a selection function ``λ : S × Σ → {⊥, 1}``; we represent λ
    as the set of selecting (state, symbol) pairs.  The automaton selects
    position ``i`` of ``w`` iff the (accepting) run visits ``i`` at least
    once in a selecting state.
    """

    automaton: TwoWayDFA
    selecting: frozenset[tuple[State, Symbol]]

    def __post_init__(self) -> None:
        for state, symbol in self.selecting:
            if state not in self.automaton.states:
                raise AutomatonError(f"selection uses unknown state {state!r}")
            if symbol not in self.automaton.alphabet:
                raise AutomatonError(f"selection uses unknown symbol {symbol!r}")

    def evaluate(self, word: Sequence[Symbol]) -> frozenset[int]:
        """The selected positions of ``w`` (1-based), per Definition 3.2.

        When the run is not accepting, no position is selected.  Any
        ``Sequence[Symbol]`` is accepted uniformly; a ``str`` is treated as
        a sequence of characters.
        """
        word = as_symbol_sequence(word)
        trace = self.automaton.run(word)
        final_state, _ = trace[-1]
        if final_state not in self.automaton.accepting:
            return frozenset()
        selected: set[int] = set()
        for state, position in trace:
            if 1 <= position <= len(word) and (state, word[position - 1]) in self.selecting:
                selected.add(position)
        return frozenset(selected)

    @property
    def size(self) -> int:
        """|S| + |Σ| (selection adds no states)."""
        return self.automaton.size


#: Output value meaning "no output at this visit" (the paper's ⊥).
BOTTOM = None


@dataclass(frozen=True)
class GeneralizedStringQA:
    """A generalized string query automaton, GSQA (Definition 3.5).

    A 2DFA with an output function ``λ : S × Σ → Γ ∪ {⊥}``.  Following the
    paper's convention we require that an accepting run outputs *exactly
    one* Γ-symbol at every position of the input; :meth:`transduce` checks
    this dynamically and raises otherwise.
    """

    automaton: TwoWayDFA
    output: dict[tuple[State, Symbol], Hashable]
    gamma: frozenset[Hashable] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for (state, symbol), value in self.output.items():
            if state not in self.automaton.states:
                raise AutomatonError(f"output uses unknown state {state!r}")
            if symbol not in self.automaton.alphabet:
                raise AutomatonError(f"output uses unknown symbol {symbol!r}")
            if self.gamma and value not in self.gamma:
                raise AutomatonError(f"output symbol {value!r} not in Γ")

    def transduce(self, word: Sequence[Symbol]) -> tuple[Hashable, ...]:
        """Compute ``M(w) = M(w, 1) ... M(w, |w|)``.

        Raises :class:`AutomatonError` if some position receives zero or two
        distinct output symbols (the well-formedness convention of §3).  Any
        ``Sequence[Symbol]`` is accepted uniformly; a ``str`` is treated as
        a sequence of characters.
        """
        word = as_symbol_sequence(word)
        trace = self.automaton.run(word)
        outputs: list[Hashable] = [BOTTOM] * len(word)
        for state, position in trace:
            if not 1 <= position <= len(word):
                continue
            value = self.output.get((state, word[position - 1]), BOTTOM)
            if value is BOTTOM:
                continue
            current = outputs[position - 1]
            if current is not BOTTOM and current != value:
                raise AutomatonError(
                    f"two outputs {current!r} and {value!r} at position {position}"
                )
            outputs[position - 1] = value
        missing = [index + 1 for index, value in enumerate(outputs) if value is BOTTOM]
        if missing:
            raise AutomatonError(f"no output at positions {missing!r} of {word!r}")
        return tuple(outputs)

    @property
    def size(self) -> int:
        """|S| + |Σ| (paper's measure)."""
        return self.automaton.size
