"""String-automata substrate: regular languages and two-way machines (§2.2, §3).

Public surface:

* :class:`~repro.strings.dfa.DFA`, :class:`~repro.strings.nfa.NFA` — one-way
  automata with the full boolean/decision toolkit.
* :mod:`~repro.strings.regex` — regular expressions; Thompson construction.
* :class:`~repro.strings.simple_regex.SimpleRegex` — slender ``x y* z``
  unions used by unranked down transitions (Shallit normal form).
* :class:`~repro.strings.twoway.TwoWayDFA` — two-way DFAs with endmarkers
  (Definition 3.1), :class:`~repro.strings.twoway.StringQueryAutomaton`
  (Definition 3.2) and :class:`~repro.strings.twoway.GeneralizedStringQA`
  (Definition 3.5).
* :mod:`~repro.strings.behavior` — behavior functions and the linear-time
  Theorem 3.9 query evaluator.
* :func:`~repro.strings.hopcroft_ullman.hopcroft_ullman_gsqa` — Lemma 3.10.
* :func:`~repro.strings.shepherdson.to_one_way_dfa` — 2DFA → DFA.
"""

from .dfa import DFA, AutomatonError, empty_dfa, singleton_dfa, universal_dfa
from .nfa import EPSILON, NFA, intersection_nfa, union_nfa
from .regex import parse_regex, to_dfa, to_nfa
from .simple_regex import Branch, SimpleRegex, constant_sequence, fixed_sequences
from .twoway import (
    GeneralizedStringQA,
    LEFT_MARKER,
    NonTerminatingRunError,
    RIGHT_MARKER,
    StringQueryAutomaton,
    TwoWayDFA,
)
from .behavior import evaluate_query_via_behavior
from .hopcroft_ullman import hopcroft_ullman_gsqa, reference_pairs
from .shepherdson import accepts_via_tables, to_one_way_dfa

__all__ = [
    "DFA",
    "NFA",
    "EPSILON",
    "AutomatonError",
    "empty_dfa",
    "singleton_dfa",
    "universal_dfa",
    "intersection_nfa",
    "union_nfa",
    "parse_regex",
    "to_dfa",
    "to_nfa",
    "Branch",
    "SimpleRegex",
    "constant_sequence",
    "fixed_sequences",
    "GeneralizedStringQA",
    "LEFT_MARKER",
    "RIGHT_MARKER",
    "NonTerminatingRunError",
    "StringQueryAutomaton",
    "TwoWayDFA",
    "evaluate_query_via_behavior",
    "hopcroft_ullman_gsqa",
    "reference_pairs",
    "accepts_via_tables",
    "to_one_way_dfa",
]
