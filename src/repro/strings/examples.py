"""The paper's worked string-automaton examples, verbatim.

* Example 3.4 — a ``QA^string`` selecting every position labeled ``1`` that
  occurs at an odd position counting from the right end.
* Example 3.6 — the same machine as a GSQA copying the input but replacing
  each such ``1`` by ``*``.
* Remark 3.3 — the "select first and last symbol if the string contains a
  σ" query, as a two-way QA (no one-way QA computes it).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .twoway import (
    GeneralizedStringQA,
    LEFT_MARKER,
    RIGHT_MARKER,
    StringQueryAutomaton,
    TwoWayDFA,
)

Symbol = Hashable


def _odd_position_2dfa() -> TwoWayDFA:
    """The underlying 2DFA of Examples 3.4/3.6.

    Walks right in ``s0``; bounces off ``⊲`` and walks back alternating
    ``s1``/``s2`` (``s1`` marks odd distance from the right end).  Unlike
    the paper's version, it ends with an explicit halt at ``⊳`` so the run
    is maximal there.
    """
    states = {"s0", "s1", "s2"}
    alphabet = {"0", "1"}
    right_moves = {
        ("s0", LEFT_MARKER): "s0",
        ("s0", "0"): "s0",
        ("s0", "1"): "s0",
    }
    left_moves = {
        ("s0", RIGHT_MARKER): "s1",
        ("s1", "0"): "s2",
        ("s1", "1"): "s2",
        ("s2", "0"): "s1",
        ("s2", "1"): "s1",
    }
    return TwoWayDFA.build(
        states, alphabet, "s0", {"s1", "s2"}, left_moves, right_moves
    )


def odd_ones_query_automaton() -> StringQueryAutomaton:
    """Example 3.4: select 1-labeled positions at odd distance from the right.

    >>> odd_ones_query_automaton().evaluate(list("0110"))
    frozenset({2})
    """
    return StringQueryAutomaton(
        _odd_position_2dfa(), frozenset({("s1", "1")})
    )


def odd_ones_gsqa() -> GeneralizedStringQA:
    """Example 3.6: copy the input, starring the odd-position 1s.

    >>> "".join(odd_ones_gsqa().transduce(list("0110")))
    '0*10'
    """
    output = {
        ("s1", "0"): "0",
        ("s1", "1"): "*",
        ("s2", "0"): "0",
        ("s2", "1"): "1",
    }
    return GeneralizedStringQA(
        _odd_position_2dfa(), output, frozenset({"0", "1", "*"})
    )


def endpoints_if_contains(
    alphabet: Sequence[Symbol], needle: Symbol
) -> StringQueryAutomaton:
    """Remark 3.3: select the first and last position iff ``needle`` occurs.

    A genuinely two-way query: a one-way QA would have to decide about the
    first position before seeing the input (the paper's argument for why
    two-wayness matters for *queries* even though it does not for
    *languages*).
    """
    alphabet = list(alphabet)
    if needle not in alphabet:
        raise ValueError("needle must belong to the alphabet")
    # Phase 1 (seek): walk right looking for the needle.
    # Phase 2 (found): continue right to ⊲, walk back to ⊳ in `back`,
    #   flagging the position next to each marker via `at_first`/`at_last`.
    states = {"seek", "found", "back", "report_last", "done"}
    right_moves: dict[tuple[str, Symbol], str] = {
        ("seek", LEFT_MARKER): "seek",
        ("report_last", LEFT_MARKER): "done",
    }
    left_moves: dict[tuple[str, Symbol], str] = {
        ("found", RIGHT_MARKER): "report_last",
    }
    for symbol in alphabet:
        right_moves[("seek", symbol)] = "found" if symbol == needle else "seek"
        right_moves[("found", symbol)] = "found"
        left_moves[("report_last", symbol)] = "back"
        left_moves[("back", symbol)] = "back"
    # From ⊳ the head re-enters position 1 in `report_first`, which has no
    # moves on symbols — the run halts there, with the first position
    # having been visited in the selecting state.
    right_moves[("back", LEFT_MARKER)] = "report_first"
    states.add("report_first")
    selecting = frozenset(
        {("report_last", symbol) for symbol in alphabet}
        | {("report_first", symbol) for symbol in alphabet}
    )
    automaton = TwoWayDFA.build(
        states,
        alphabet,
        "seek",
        {"report_first", "seek", "done"},
        left_moves,
        right_moves,
    )
    return StringQueryAutomaton(automaton, selecting)


def sweep_right_dfa_as_qa(
    alphabet: Sequence[Symbol],
    selecting_symbols: Sequence[Symbol],
) -> StringQueryAutomaton:
    """A trivial one-way QA selecting all positions with given labels.

    Used as a baseline in benchmarks (one left-to-right sweep, no
    two-way behavior).
    """
    alphabet = list(alphabet)
    right_moves: dict[tuple[str, Symbol], str] = {("go", LEFT_MARKER): "go"}
    for symbol in alphabet:
        right_moves[("go", symbol)] = "go"
    automaton = TwoWayDFA.build(
        {"go"}, alphabet, "go", {"go"}, {}, right_moves
    )
    return StringQueryAutomaton(
        automaton, frozenset(("go", symbol) for symbol in selecting_symbols)
    )


def multi_sweep_query_automaton(passes: int = 4) -> StringQueryAutomaton:
    """A QA^string making ``passes`` full head sweeps before selecting.

    The machine bounces between the endmarkers ``passes`` times, then
    walks right once more tracking the parity of ``1``\\ s read so far and
    halts at ``⊲``; it selects every ``1`` preceded by an odd number of
    ones.  Direct simulation costs about ``(2·passes + 1)·n`` head moves,
    while the behavior-composition fast path (:mod:`repro.perf`) does two
    passes regardless of ``passes`` — the benchmark workload for the
    cached evaluator.
    """
    if passes < 1:
        raise ValueError("need at least one pass")
    alphabet = ("0", "1")
    states: set = set()
    right_moves: dict[tuple[Hashable, Symbol], Hashable] = {}
    left_moves: dict[tuple[Hashable, Symbol], Hashable] = {}
    even, odd = ("count", 0), ("count", 1)
    for k in range(1, passes + 1):
        rightward, leftward = ("sweep", k, "→"), ("sweep", k, "←")
        states |= {rightward, leftward}
        right_moves[(rightward, LEFT_MARKER)] = rightward
        for symbol in alphabet:
            right_moves[(rightward, symbol)] = rightward
            left_moves[(leftward, symbol)] = leftward
        left_moves[(rightward, RIGHT_MARKER)] = leftward
        after = ("sweep", k + 1, "→") if k < passes else even
        right_moves[(leftward, LEFT_MARKER)] = after
    states |= {even, odd}
    right_moves[(even, "0")] = even
    right_moves[(even, "1")] = odd
    right_moves[(odd, "0")] = odd
    right_moves[(odd, "1")] = even
    automaton = TwoWayDFA.build(
        states,
        alphabet,
        ("sweep", 1, "→"),
        {even, odd},
        left_moves,
        right_moves,
    )
    return StringQueryAutomaton(automaton, frozenset({(odd, "1")}))
