"""Shepherdson's construction: two-way DFAs are no more powerful than DFAs.

The paper leans on this classical fact twice: Remark 3.3 cites it to
contrast *language* equivalence with *query* inequivalence of one-way and
two-way automata, and Proposition 6.2 (Globerman–Harel) bounds the size of
the resulting one-way automaton — our benchmarks measure that exponential
blowup empirically.

The construction here uses *exit tables*.  For a prefix ``⊳ w_1 .. w_i``,
the table ``E_i : S → Exit`` records, for a machine started at position
``i`` in state ``s`` with only the prefix available, whether it eventually

* makes a right move off position ``i`` arriving at ``i+1`` in state
  ``s'`` — ``("exit", s')``, or
* halts somewhere inside the prefix in state ``h`` — ``("halt", h)``, or
* loops forever — ``("loop",)``.

``E_{i+1}`` is computable from ``E_i`` and the symbol ``w_{i+1}`` alone, so
a one-way DFA whose states are pairs (exit table, run status) simulates the
two-way machine.  Unlike the classical presentation we keep explicit
"halt inside" and "loop" outcomes, so the conversion is *total*: it is
correct for every 2DFA, not only those that halt at ``⊲``.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .dfa import DFA
from .twoway import LEFT_MARKER, RIGHT_MARKER, TwoWayDFA

State = Hashable
Symbol = Hashable

#: Exit-table outcomes.
EXIT = "exit"
HALT = "halt"
LOOP = "loop"

#: An exit table: maps each state to ("exit", s') | ("halt", h) | ("loop",).
ExitTable = tuple[tuple[State, tuple], ...]


def _exit_table_for_left_marker(automaton: TwoWayDFA) -> dict[State, tuple]:
    """``E_0``: behavior at ``⊳`` (only right moves or halts are possible)."""
    table: dict[State, tuple] = {}
    for state in automaton.states:
        if automaton.in_right(state, LEFT_MARKER):
            table[state] = (EXIT, automaton.right_moves[(state, LEFT_MARKER)])
        else:
            table[state] = (HALT, state)
    return table


def _extend_exit_table(
    automaton: TwoWayDFA, table: dict[State, tuple], cell: Hashable
) -> dict[State, tuple]:
    """``E_{i+1}`` from ``E_i`` and the cell at position ``i+1``.

    Started at ``i+1`` in state ``s``: a right pair exits immediately; a
    left pair excursions into the prefix, whose outcome ``E_i`` gives; a
    return to ``i+1`` recurses (with cycle detection → ``loop``).
    """
    extended: dict[State, tuple] = {}
    for start in automaton.states:
        current = start
        seen = {current}
        outcome: tuple | None = None
        while True:
            if automaton.in_right(current, cell):
                outcome = (EXIT, automaton.right_moves[(current, cell)])
                break
            if not automaton.in_left(current, cell):
                outcome = (HALT, current)
                break
            entered = automaton.left_moves[(current, cell)]
            prefix_outcome = table[entered]
            if prefix_outcome[0] != EXIT:
                outcome = prefix_outcome  # halt inside or loop inside
                break
            current = prefix_outcome[1]
            if current in seen:
                outcome = (LOOP,)
                break
            seen.add(current)
        extended[start] = outcome
    return extended


def _freeze(table: dict[State, tuple]) -> ExitTable:
    return tuple(sorted(table.items(), key=lambda item: repr(item[0])))


def _resolve(
    table: dict[State, tuple], status: tuple
) -> tuple:
    """Advance the run status across the current prefix boundary.

    ``status`` is ``("at", s)`` — the head just arrived at the rightmost
    prefix position in state ``s`` — or a terminal ``("halt", h)`` /
    ``("loop",)``.  Returns the status at the *next* boundary.
    """
    if status[0] != "at":
        return status
    outcome = table[status[1]]
    if outcome[0] == EXIT:
        return ("at", outcome[1])
    return outcome


def to_one_way_dfa(automaton: TwoWayDFA) -> DFA:
    """A one-way DFA accepting the same language as the 2DFA.

    States are triples (exit table, status, last cell); only reachable
    states are materialized.  The benchmarks in
    ``benchmarks/bench_twoway_conversion.py`` measure the state blowup
    against the exponential bound of Proposition 6.2.
    """
    base = _exit_table_for_left_marker(automaton)
    initial_status = _resolve(base, ("at", automaton.initial))
    initial = (_freeze(base), initial_status, LEFT_MARKER)

    states = {initial}
    transitions: dict[tuple, tuple] = {}
    frontier = [initial]
    while frontier:
        source = frontier.pop()
        table_frozen, status, _last_cell = source
        table = dict(table_frozen)
        for symbol in automaton.alphabet:
            extended = _extend_exit_table(automaton, table, symbol)
            new_status = _resolve(extended, status)
            target = (_freeze(extended), new_status, symbol)
            transitions[(source, symbol)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)

    def accepts_state(state: tuple) -> bool:
        """Finish the run at ``⊲`` and test acceptance."""
        table_frozen, status, _last_cell = state
        final_table = _extend_exit_table(
            automaton, dict(table_frozen), RIGHT_MARKER
        )
        final_status = _resolve(final_table, status)
        if final_status[0] == "at":
            # An EXIT at ⊲ is impossible (no right moves off ⊲); _extend
            # never produces one, so "at" cannot survive.  Defensive only.
            return False
        if final_status[0] == LOOP:
            return False
        return final_status[1] in automaton.accepting

    accepting = frozenset(state for state in states if accepts_state(state))
    return DFA(
        frozenset(states),
        automaton.alphabet,
        transitions,
        initial,
        accepting,
    )


def accepts_via_tables(automaton: TwoWayDFA, word: Sequence[Symbol]) -> bool:
    """Membership by streaming the exit tables (no DFA materialization).

    Linear in ``|word|`` for a fixed automaton; total — handles runs that
    halt inside the word or loop (loop ⇒ reject).
    """
    table = _exit_table_for_left_marker(automaton)
    status = _resolve(table, ("at", automaton.initial))
    for symbol in word:
        table = _extend_exit_table(automaton, table, symbol)
        status = _resolve(table, status)
    table = _extend_exit_table(automaton, table, RIGHT_MARKER)
    status = _resolve(table, status)
    return status[0] == HALT and status[1] in automaton.accepting
