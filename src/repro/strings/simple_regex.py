"""Slender regular languages in Shallit normal form: unions of ``x y* z``.

Section 5.2 of the paper: each down-transition language ``L_↓(q, a)``
contains *at most one string of each length* (the automaton must assign a
unique state sequence to the ``n`` children).  Shallit showed such
languages are finite unions of expressions ``x y* z`` with ``x, y, z``
plain strings; looking up "the string of length n, if any" then takes time
linear in ``n``, which is what makes each down transition of a 2DTA^u
linear-time (the paper's remark after Definition 5.7).

:class:`SimpleRegex` stores the union of branches, *validates* the
one-string-per-length property on construction, and provides the
:meth:`SimpleRegex.string_of_length` lookup the automata use.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass

Symbol = Hashable


class SlendernessError(ValueError):
    """Raised when a union of ``x y* z`` branches has two strings of one length."""


@dataclass(frozen=True)
class Branch:
    """One ``x y* z`` component: prefix ``x``, pumped block ``y``, suffix ``z``."""

    prefix: tuple[Symbol, ...]
    pump: tuple[Symbol, ...]
    suffix: tuple[Symbol, ...]

    def string_of_length(self, length: int) -> tuple[Symbol, ...] | None:
        """The unique string of the given length in ``x y* z``, if any."""
        base = len(self.prefix) + len(self.suffix)
        if length < base:
            return None
        if not self.pump:
            return self.prefix + self.suffix if length == base else None
        extra = length - base
        if extra % len(self.pump) != 0:
            return None
        repeats = extra // len(self.pump)
        return self.prefix + self.pump * repeats + self.suffix

    def lengths(self) -> tuple[int, int]:
        """(offset, period): realized lengths are offset + k*period (period 0 = single)."""
        return (len(self.prefix) + len(self.suffix), len(self.pump))


class SimpleRegex:
    """A finite union of ``x y* z`` branches with ≤ 1 string per length.

    >>> r = SimpleRegex([Branch(("s",), ("s",), ())])
    >>> r.string_of_length(3)
    ('s', 's', 's')
    >>> r.string_of_length(0) is None
    True
    """

    def __init__(self, branches: Sequence[Branch]) -> None:
        self.branches = tuple(branches)
        self._check_slender()

    def _check_slender(self) -> None:
        """Reject the union if two branches can produce distinct strings of one length.

        For each pair of branches we check all lengths up to
        ``offset_max + lcm(period_i, period_j)`` — beyond that, length
        coincidences repeat periodically with identical string pairs, so a
        finite check suffices.
        """
        for i, left in enumerate(self.branches):
            for right in self.branches[i + 1 :]:
                off_l, per_l = left.lengths()
                off_r, per_r = right.lengths()
                horizon = max(off_l, off_r) + _lcm(max(per_l, 1), max(per_r, 1)) * max(
                    per_l, per_r, 1
                )
                for length in range(horizon + 1):
                    a = left.string_of_length(length)
                    b = right.string_of_length(length)
                    if a is not None and b is not None and a != b:
                        raise SlendernessError(
                            f"two strings of length {length}: {a!r} and {b!r}"
                        )
        # A single branch x y* z always has exactly one string per realized length.

    def string_of_length(self, length: int) -> tuple[Symbol, ...] | None:
        """The unique member of the language with the given length, if any."""
        for branch in self.branches:
            result = branch.string_of_length(length)
            if result is not None:
                return result
        return None

    def __contains__(self, word: Sequence[Symbol]) -> bool:
        word = tuple(word)
        return self.string_of_length(len(word)) == word

    def symbols(self) -> frozenset[Symbol]:
        """All symbols used by any branch."""
        out: set[Symbol] = set()
        for branch in self.branches:
            out.update(branch.prefix)
            out.update(branch.pump)
            out.update(branch.suffix)
        return frozenset(out)

    def realized_lengths(self, up_to: int) -> Iterator[int]:
        """All lengths ≤ ``up_to`` for which a string exists."""
        for length in range(up_to + 1):
            if self.string_of_length(length) is not None:
                yield length

    @property
    def size(self) -> int:
        """Total description length (symbol count across branches)."""
        return sum(
            len(branch.prefix) + len(branch.pump) + len(branch.suffix)
            for branch in self.branches
        )

    def __repr__(self) -> str:
        rendered = " + ".join(
            f"{list(b.prefix)}{list(b.pump)}*{list(b.suffix)}" for b in self.branches
        )
        return f"SimpleRegex({rendered})"


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b) if a and b else max(a, b, 1)


def constant_sequence(state: Symbol) -> SimpleRegex:
    """The language ``s+``: every child receives the same state.

    The most common down transition (Examples 4.2 and 5.9 use it: "walk to
    the leaves in state s").
    """
    return SimpleRegex([Branch((state,), (state,), ())])


def fixed_sequences(words: Sequence[Sequence[Symbol]]) -> SimpleRegex:
    """A finite language given explicitly (must have ≤ 1 word per length)."""
    return SimpleRegex([Branch(tuple(word), (), ()) for word in words])


def pattern(
    prefix: Sequence[Symbol], pump: Sequence[Symbol], suffix: Sequence[Symbol]
) -> SimpleRegex:
    """A single ``x y* z`` branch."""
    return SimpleRegex([Branch(tuple(prefix), tuple(pump), tuple(suffix))])
