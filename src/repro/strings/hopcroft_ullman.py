"""The Hopcroft–Ullman lemma (Lemma 3.10) as an executable construction.

Given a left-to-right DFA ``M1`` and a right-to-left DFA ``M2``, there is a
*generalized string query automaton* (a deterministic two-way machine with
per-position output) that outputs, at every position ``i`` of the input,
the pair ``(δ1*(p0, w_1..w_i), δ2*(q0, w_n..w_i))`` — both one-way state
sequences at once, even though the two sequences flow in opposite
directions.  The paper calls this "powerful and surprising" and uses it
twice: for Theorem 3.9 (combining the two type-computing DFAs) and inside
the Figure 5 / Figure 6 algorithms for unary chains and sibling sequences.

We implement the construction exactly as sketched in the paper (after
Engelfriet's survey):

* **Forward phase** — walk right simulating ``M1``; at ``⊲`` turn around.
* **Settle sweep** — walk left; at each position output the known pair and
  reconstruct ``M1``'s previous state from the *preimages* of the current
  one.  ``M2`` advances normally during this sweep (it runs right-to-left).
* **Backward excursion** — when the previous ``M1`` state is ambiguous
  (``k ≥ 2`` preimage candidates), walk further left maintaining, for each
  candidate ``p_t``, the γ-set of states that would lead to it.  Stop when
  a single γ-set survives, or at ``⊳`` (then the winner is the candidate
  whose γ-set contains ``M1``'s start state).
* **Way back** — return to the settle position by simulating two remembered
  states from *different* γ-sets forward until their runs first merge: by
  determinism and γ-disjointness that happens exactly one position to the
  right of the settle target.

The state space is exponential in ``|M1|`` in the worst case (γ-set
families), matching Proposition 6.2; only reachable states are built.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .dfa import DFA, AutomatonError
from .twoway import (
    GeneralizedStringQA,
    LEFT_MARKER,
    RIGHT_MARKER,
    TwoWayDFA,
)

State = Hashable
Symbol = Hashable

_LEFT, _RIGHT = -1, +1

#: Canonical sort key for states inside constructed tuples.
def _key(value: Hashable) -> str:
    return repr(value)


class _Builder:
    """Constructs the combined automaton's transition graph lazily."""

    def __init__(self, forward: DFA, backward: DFA) -> None:
        if forward.alphabet != backward.alphabet:
            raise AutomatonError("M1 and M2 must share an alphabet")
        self.m1 = forward.completed()
        self.m2 = backward.completed()
        self.alphabet = self.m1.alphabet
        # preimages[(t, σ)] = the set of M1-states p' with δ1(p', σ) = t.
        self.preimages: dict[tuple[State, Symbol], frozenset[State]] = {}
        for (source, symbol), target in self.m1.transitions.items():
            key = (target, symbol)
            self.preimages[key] = self.preimages.get(key, frozenset()) | {source}

    def preimage(self, target: State, symbol: Symbol) -> frozenset[State]:
        return self.preimages.get((target, symbol), frozenset())

    # -- state constructors -------------------------------------------

    @staticmethod
    def freeze_gamma(gamma: dict[State, frozenset[State]]) -> tuple:
        return tuple(sorted(gamma.items(), key=lambda item: _key(item[0])))

    def remembered_pair(
        self, gamma: dict[State, frozenset[State]]
    ) -> tuple[State, State] | None:
        """Two states from the first two nonempty γ-sets (canonical order)."""
        nonempty = [
            states for _t, states in sorted(gamma.items(), key=lambda i: _key(i[0]))
            if states
        ]
        if len(nonempty) < 2:
            return None
        first = min(nonempty[0], key=_key)
        second = min(nonempty[1], key=_key)
        return (first, second)

    # -- the transition function --------------------------------------

    def delta(self, state: tuple, cell: Hashable) -> tuple[int, tuple] | None:
        kind = state[0]
        if kind == "fwd":
            return self._delta_forward(state, cell)
        if kind == "set":
            return self._delta_settled(state, cell)
        if kind == "exc0":
            return self._delta_first_excursion(state, cell)
        if kind == "exc":
            return self._delta_excursion(state, cell)
        if kind == "wbf":
            return self._delta_wayback_fresh(state, cell)
        if kind == "wb":
            return self._delta_wayback(state, cell)
        return None

    def _delta_forward(self, state: tuple, cell: Hashable) -> tuple[int, tuple] | None:
        _, p = state
        if cell == LEFT_MARKER:
            return (_RIGHT, state)
        if cell == RIGHT_MARKER:
            # Turn around: position n settles immediately with carry q0.
            return (_LEFT, ("set", p, self.m2.initial))
        return (_RIGHT, ("fwd", self.m1.transitions[(p, cell)]))

    def _delta_settled(self, state: tuple, cell: Hashable) -> tuple[int, tuple] | None:
        _, p, q = state
        if cell in (LEFT_MARKER, RIGHT_MARKER):
            return None  # the sweep is complete: halt at ⊳
        carry = self.m2.transitions[(q, cell)]
        candidates = self.preimage(p, cell)
        if len(candidates) == 1:
            (only,) = candidates
            return (_LEFT, ("set", only, carry))
        if not candidates:
            return None  # unreachable on real inputs (M1 is total)
        return (_LEFT, ("exc0", candidates, carry))

    def _delta_first_excursion(
        self, state: tuple, cell: Hashable
    ) -> tuple[int, tuple] | None:
        _, candidates, q = state
        if cell == LEFT_MARKER:
            # The settle target would be ⊳ itself: every real position has
            # been output already, so the machine is done.
            return None
        if cell == RIGHT_MARKER:
            return None
        gamma_here = {t: frozenset({t}) for t in candidates}
        pair = self.remembered_pair(gamma_here)
        if pair is None:
            return None  # unreachable: exc0 always has ≥ 2 candidates
        next_gamma = {
            t: frozenset(
                p for p in self.m1.states if self.m1.transitions[(p, cell)] in states
            )
            for t, states in gamma_here.items()
        }
        return (_LEFT, ("exc", self.freeze_gamma(next_gamma), pair, q))

    def _delta_excursion(
        self, state: tuple, cell: Hashable
    ) -> tuple[int, tuple] | None:
        _, frozen_gamma, pair, q = state
        gamma = dict(frozen_gamma)
        if cell == RIGHT_MARKER:
            return None
        if cell == LEFT_MARKER:
            # Winner: the candidate whose γ-set contains M1's start state.
            winners = [t for t, states in gamma.items() if self.m1.initial in states]
            if len(winners) != 1:
                return None  # unreachable on real inputs
            return (_RIGHT, ("wbf", pair[0], pair[1], winners[0], q))
        nonempty = [t for t, states in gamma.items() if states]
        if len(nonempty) == 1:
            return (_RIGHT, ("wbf", pair[0], pair[1], nonempty[0], q))
        if not nonempty:
            return None  # unreachable on real inputs
        new_pair = self.remembered_pair(gamma)
        assert new_pair is not None
        next_gamma = {
            t: frozenset(
                p for p in self.m1.states if self.m1.transitions[(p, cell)] in states
            )
            for t, states in gamma.items()
        }
        return (_LEFT, ("exc", self.freeze_gamma(next_gamma), new_pair, q))

    def _delta_wayback_fresh(
        self, state: tuple, cell: Hashable
    ) -> tuple[int, tuple] | None:
        _, r1, r2, winner, q = state
        if cell in (LEFT_MARKER, RIGHT_MARKER):
            return None  # unreachable on real inputs
        # r1 and r2 are the flow values *at this position*; the first
        # update happens one step to the right.
        return (_RIGHT, ("wb", r1, r2, winner, q))

    def _delta_wayback(self, state: tuple, cell: Hashable) -> tuple[int, tuple] | None:
        _, x, y, winner, q = state
        if cell in (LEFT_MARKER, RIGHT_MARKER):
            return None  # unreachable on real inputs
        x_next = self.m1.transitions[(x, cell)]
        y_next = self.m1.transitions[(y, cell)]
        if x_next == y_next:
            # The flows merge exactly one position right of the settle
            # target: step back left and settle it with the winner.
            return (_LEFT, ("set", winner, q))
        return (_RIGHT, ("wb", x_next, y_next, winner, q))


def hopcroft_ullman_gsqa(
    forward: DFA, backward: DFA, render=None
) -> GeneralizedStringQA:
    """Build the Lemma 3.10 automaton for ``M1`` (→) and ``M2`` (←).

    The result outputs, at each position ``i`` of any input word ``w``, the
    pair ``(δ1*(p0, w_1..w_i), δ2*(q0, w_n..w_i))``, where both DFAs are
    first completed (so the pairs may mention sink states of partial
    inputs).

    ``render(p, q, letter)``, when given, postprocesses the pair into the
    actual output symbol — the form in which Theorem 5.17's stay
    transitions consume the lemma (the combined automaton computes the
    sibling contexts from the two one-way state streams).

    >>> from repro.strings.dfa import DFA
    >>> parity = DFA.build({0, 1}, {"a"}, {(0, "a"): 1, (1, "a"): 0}, 0, {0})
    >>> combined = hopcroft_ullman_gsqa(parity, parity)
    >>> combined.transduce(["a", "a", "a"])
    ((1, 1), (0, 0), (1, 1))
    """
    builder = _Builder(forward, backward)
    initial = ("fwd", builder.m1.initial)
    cells = list(builder.alphabet) + [LEFT_MARKER, RIGHT_MARKER]

    states: set[tuple] = {initial}
    left_moves: dict[tuple[tuple, Hashable], tuple] = {}
    right_moves: dict[tuple[tuple, Hashable], tuple] = {}
    frontier = [initial]
    while frontier:
        source = frontier.pop()
        for cell in cells:
            step = builder.delta(source, cell)
            if step is None:
                continue
            direction, target = step
            if direction == _LEFT:
                left_moves[(source, cell)] = target
            else:
                right_moves[(source, cell)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)

    automaton = TwoWayDFA(
        frozenset(states),
        builder.alphabet,
        initial,
        frozenset(states),  # acceptance is irrelevant for the transduction
        left_moves,
        right_moves,
    )
    output: dict[tuple[tuple, Symbol], Hashable] = {}
    gamma_alphabet: set[Hashable] = set()
    for state in states:
        if state[0] != "set":
            continue
        _, p, q = state
        for symbol in builder.alphabet:
            q_here = builder.m2.transitions[(q, symbol)]
            value = (p, q_here) if render is None else render(p, q_here, symbol)
            output[(state, symbol)] = value
            gamma_alphabet.add(value)
    return GeneralizedStringQA(automaton, output, frozenset(gamma_alphabet))


def mirror_gsqa(original: GeneralizedStringQA) -> GeneralizedStringQA:
    """The GSQA that behaves like ``original`` run on the reversed word.

    Every move direction and endmarker is swapped; a fresh start state
    first carries the head from ``⊳`` to ``⊲`` (our machines always start
    at the left marker).  Outputs land at mirrored positions — i.e., the
    mirrored machine computes ``reverse(original(reverse(w)))``.
    """
    h = original.automaton
    start = ("__mirror_start__",)
    if start in h.states:
        raise AutomatonError("mirror start state collides")

    def swap(cell):
        if cell == LEFT_MARKER:
            return RIGHT_MARKER
        if cell == RIGHT_MARKER:
            return LEFT_MARKER
        return cell

    left_moves: dict[tuple, Hashable] = {}
    right_moves: dict[tuple, Hashable] = {}
    for (state, cell), target in h.right_moves.items():
        left_moves[(state, swap(cell))] = target
    for (state, cell), target in h.left_moves.items():
        right_moves[(state, swap(cell))] = target

    # Pre-phase: walk from ⊳ to ⊲, then splice into the original's first
    # transition (which is a right move at its ⊳).
    right_moves[(start, LEFT_MARKER)] = start
    for symbol in h.alphabet:
        right_moves[(start, symbol)] = start
    first = h.right_moves.get((h.initial, LEFT_MARKER))
    if first is None:
        raise AutomatonError("the mirrored machine must start with a right move")
    left_moves[(start, RIGHT_MARKER)] = first

    automaton = TwoWayDFA(
        h.states | {start},
        h.alphabet,
        start,
        h.states | {start},
        left_moves,
        right_moves,
    )
    return GeneralizedStringQA(automaton, dict(original.output), original.gamma)


def reversed_hopcroft_ullman_gsqa(
    left_to_right: DFA, right_to_left: DFA, render=None
) -> GeneralizedStringQA:
    """Lemma 3.10 with the state-reconstruction burden on ``right_to_left``.

    Semantically identical to ``hopcroft_ullman_gsqa(left_to_right,
    right_to_left, render)`` — outputs ``render(p_i, q_i, w_i)`` with
    ``p_i = δ1*(p0, w_1..w_i)`` and ``q_i = δ2*(q0, w_n..w_i)`` — but the
    exponential γ-set machinery of the excursions runs over the
    *right-to-left* automaton's states.  Pick whichever variant has the
    smaller reconstructed machine (Theorem 5.17's stay transition uses
    this one: its suffix automaton is the small transition monoid).
    """
    swapped_render = None
    if render is not None:
        swapped_render = lambda p, q, letter: render(q, p, letter)
    else:
        swapped_render = lambda p, q, letter: (q, p)
    reversed_machine = hopcroft_ullman_gsqa(
        right_to_left, left_to_right, render=swapped_render
    )
    return mirror_gsqa(reversed_machine)


def reference_pairs(
    forward: DFA, backward: DFA, word: Sequence[Symbol]
) -> tuple[tuple[State, State], ...]:
    """The pairs the Lemma 3.10 automaton must output, computed directly.

    ``(δ1*(p0, w_1..w_i), δ2*(q0, w_n..w_i))`` for ``i = 1..n`` — the
    two-pass oracle used to test :func:`hopcroft_ullman_gsqa`.
    """
    m1 = forward.completed()
    m2 = backward.completed()
    forward_states = m1.run_states(word)[1:]  # state after each prefix
    backward_states = list(reversed(m2.run_states(list(reversed(word)))[1:]))
    return tuple(
        (p, q) for p, q in zip(forward_states, backward_states, strict=True)
    )
