"""Embedding ranked two-way automata into the unranked model.

Ranked trees are unranked trees with bounded arity, and a 2DTA^r's finite
transition tables are trivially regular, so every QA^r is a QA^u (the
paper uses this in Section 6: EXPTIME-membership is proved once, for
SQA^u, and inherited by the ranked automata).  This module performs the
embedding concretely:

* ``δ_↑`` (a finite map on (state, label)-tuples) becomes a trie-shaped
  classifier DFA;
* ``δ_↓(q, σ, n)`` (one string per arity) becomes the slender language
  ``⋃_n {δ_↓(q, σ, n)}`` — at most one string per length by determinism;
* ``δ_leaf``/``δ_root`` carry over unchanged.

The embedding lets one decision engine (:mod:`repro.decision.closure`)
serve QA^r, QA^u, and SQA^u alike.
"""

from __future__ import annotations

from ..ranked.twoway import RankedQueryAutomaton, TwoWayRankedAutomaton
from ..strings.dfa import DFA
from ..strings.simple_regex import Branch, SimpleRegex, SlendernessError
from ..unranked.twoway import (
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UpClassifier,
    UP,
)


def _trie_classifier(automaton: TwoWayRankedAutomaton) -> UpClassifier:
    """A trie DFA over (state, label) pairs realizing the finite ``δ_↑``."""
    pair_alphabet = frozenset(automaton.up_pairs)
    root: tuple = ()
    states = {root}
    transitions: dict[tuple, tuple] = {}
    outcome: dict[tuple, tuple] = {}
    for word, target in automaton.delta_up.items():
        prefix: tuple = ()
        for pair in word:
            nxt = prefix + (pair,)
            states.add(nxt)
            transitions[(prefix, pair)] = nxt
            prefix = nxt
        outcome[prefix] = (UP, target)
    dfa = DFA.build(states, pair_alphabet, transitions, root, set())
    return UpClassifier(dfa, outcome)


def _minimized_classifier(classifier: UpClassifier) -> UpClassifier:
    """Moore-minimize a partial classifier DFA respecting its outcomes.

    Two states merge only when they carry the same outcome (or both
    none), and their transition structure — including *missing*
    transitions, which kill a scan path — is equivalent.  The sink used
    to complete the DFA gets a private color, so partiality is preserved
    exactly: a path dies in the quotient at the same step it dies in the
    trie, keeping the closure's survivor bits bit-for-bit identical.
    """
    dfa = classifier.dfa
    sink = ("__classifier_sink__",)
    total = dfa.completed(sink)
    symbols = sorted(total.alphabet, key=repr)
    dead_color = ("__dead__",)

    def color(state) -> tuple:
        if state == sink:
            return dead_color
        outcome = classifier.outcome.get(state)
        return ("__plain__",) if outcome is None else ("__outcome__", outcome)

    groups: dict[tuple, list] = {}
    for state in sorted(total.states, key=repr):
        groups.setdefault(color(state), []).append(state)
    block_of: dict = {}
    for index, key in enumerate(sorted(groups, key=repr)):
        for state in groups[key]:
            block_of[state] = index
    while True:
        signatures: dict = {}
        for state in sorted(total.states, key=repr):
            signature = (
                block_of[state],
                tuple(
                    block_of[total.transitions[(state, symbol)]]
                    for symbol in symbols
                ),
            )
            signatures.setdefault(signature, []).append(state)
        if len(signatures) == len(set(block_of.values())):
            break
        block_of = {}
        for index, signature in enumerate(sorted(signatures)):
            for state in signatures[signature]:
                block_of[state] = index

    representative: dict[int, tuple] = {}
    for state in sorted(total.states, key=repr):
        representative.setdefault(block_of[state], state)
    dead_block = block_of[sink]
    states = {
        rep for block, rep in representative.items() if block != dead_block
    }
    transitions: dict[tuple, tuple] = {}
    outcome: dict[tuple, tuple] = {}
    for block, rep in representative.items():
        if block == dead_block:
            continue
        value = classifier.outcome.get(rep)
        if value is not None:
            outcome[rep] = value
        for symbol in symbols:
            target_block = block_of[total.transitions[(rep, symbol)]]
            if target_block == dead_block:
                continue
            transitions[(rep, symbol)] = representative[target_block]
    initial = representative[block_of[dfa.initial]]
    states.add(initial)
    minimized = DFA.build(states, total.alphabet, transitions, initial, set())
    return UpClassifier(minimized, outcome)


def _down_languages(
    automaton: TwoWayRankedAutomaton,
) -> dict[tuple, SimpleRegex]:
    """Group the per-arity down strings into slender languages."""
    grouped: dict[tuple, list[tuple]] = {}
    for (state, label, _arity), targets in automaton.delta_down.items():
        grouped.setdefault((state, label), []).append(tuple(targets))
    languages: dict[tuple, SimpleRegex] = {}
    for key, words in grouped.items():
        try:
            languages[key] = SimpleRegex(
                [Branch(word, (), ()) for word in words]
            )
        except SlendernessError as error:  # pragma: no cover - defensive
            raise AssertionError(
                "deterministic δ_↓ cannot have two strings of one length"
            ) from error
    return languages


def ranked_to_unranked(
    automaton: TwoWayRankedAutomaton,
) -> TwoWayUnrankedAutomaton:
    """View a 2DTA^r as a 2DTA^u accepting the same trees.

    The result behaves identically on every tree of rank ≤ ``max_rank``
    (and sticks on wider trees, which the ranked automaton rejects by
    definition).
    """
    return TwoWayUnrankedAutomaton(
        states=automaton.states,
        alphabet=automaton.alphabet,
        initial=automaton.initial,
        accepting=automaton.accepting,
        up_pairs=automaton.up_pairs,
        down_pairs=automaton.down_pairs,
        delta_leaf=dict(automaton.delta_leaf),
        delta_root=dict(automaton.delta_root),
        up_classifier=_minimized_classifier(_trie_classifier(automaton)),
        down=_down_languages(automaton),
        stay_gsqa=None,
        stay_limit=0,
    )


def ranked_query_to_unranked(qa: RankedQueryAutomaton) -> UnrankedQueryAutomaton:
    """View a QA^r as a QA^u computing the same query."""
    return UnrankedQueryAutomaton(
        ranked_to_unranked(qa.automaton), qa.selecting
    )
