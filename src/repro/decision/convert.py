"""Embedding ranked two-way automata into the unranked model.

Ranked trees are unranked trees with bounded arity, and a 2DTA^r's finite
transition tables are trivially regular, so every QA^r is a QA^u (the
paper uses this in Section 6: EXPTIME-membership is proved once, for
SQA^u, and inherited by the ranked automata).  This module performs the
embedding concretely:

* ``δ_↑`` (a finite map on (state, label)-tuples) becomes a trie-shaped
  classifier DFA;
* ``δ_↓(q, σ, n)`` (one string per arity) becomes the slender language
  ``⋃_n {δ_↓(q, σ, n)}`` — at most one string per length by determinism;
* ``δ_leaf``/``δ_root`` carry over unchanged.

The embedding lets one decision engine (:mod:`repro.decision.closure`)
serve QA^r, QA^u, and SQA^u alike.
"""

from __future__ import annotations

from ..ranked.twoway import RankedQueryAutomaton, TwoWayRankedAutomaton
from ..strings.dfa import DFA
from ..strings.simple_regex import Branch, SimpleRegex, SlendernessError
from ..unranked.twoway import (
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UpClassifier,
    UP,
)


def _trie_classifier(automaton: TwoWayRankedAutomaton) -> UpClassifier:
    """A trie DFA over (state, label) pairs realizing the finite ``δ_↑``."""
    pair_alphabet = frozenset(automaton.up_pairs)
    root: tuple = ()
    states = {root}
    transitions: dict[tuple, tuple] = {}
    outcome: dict[tuple, tuple] = {}
    for word, target in automaton.delta_up.items():
        prefix: tuple = ()
        for pair in word:
            nxt = prefix + (pair,)
            states.add(nxt)
            transitions[(prefix, pair)] = nxt
            prefix = nxt
        outcome[prefix] = (UP, target)
    dfa = DFA.build(states, pair_alphabet, transitions, root, set())
    return UpClassifier(dfa, outcome)


def _down_languages(
    automaton: TwoWayRankedAutomaton,
) -> dict[tuple, SimpleRegex]:
    """Group the per-arity down strings into slender languages."""
    grouped: dict[tuple, list[tuple]] = {}
    for (state, label, _arity), targets in automaton.delta_down.items():
        grouped.setdefault((state, label), []).append(tuple(targets))
    languages: dict[tuple, SimpleRegex] = {}
    for key, words in grouped.items():
        try:
            languages[key] = SimpleRegex(
                [Branch(word, (), ()) for word in words]
            )
        except SlendernessError as error:  # pragma: no cover - defensive
            raise AssertionError(
                "deterministic δ_↓ cannot have two strings of one length"
            ) from error
    return languages


def ranked_to_unranked(
    automaton: TwoWayRankedAutomaton,
) -> TwoWayUnrankedAutomaton:
    """View a 2DTA^r as a 2DTA^u accepting the same trees.

    The result behaves identically on every tree of rank ≤ ``max_rank``
    (and sticks on wider trees, which the ranked automaton rejects by
    definition).
    """
    return TwoWayUnrankedAutomaton(
        states=automaton.states,
        alphabet=automaton.alphabet,
        initial=automaton.initial,
        accepting=automaton.accepting,
        up_pairs=automaton.up_pairs,
        down_pairs=automaton.down_pairs,
        delta_leaf=dict(automaton.delta_leaf),
        delta_root=dict(automaton.delta_root),
        up_classifier=_trie_classifier(automaton),
        down=_down_languages(automaton),
        stay_gsqa=None,
        stay_limit=0,
    )


def ranked_query_to_unranked(qa: RankedQueryAutomaton) -> UnrankedQueryAutomaton:
    """View a QA^r as a QA^u computing the same query."""
    return UnrankedQueryAutomaton(
        ranked_to_unranked(qa.automaton), qa.selecting
    )
