"""Decision procedures of Section 6: non-emptiness, containment, equivalence."""

from .annotation import AnnotationNFA
from .closure import (
    BudgetExceededError,
    ClosureBudgetExceeded,
    JointClosure,
    PackedJointClosure,
    are_equivalent,
    containment_counterexample,
    is_contained,
    language_is_empty,
    language_witness,
    query_is_empty,
    query_witness,
)
from .convert import ranked_query_to_unranked, ranked_to_unranked
from .patterns import (
    pattern_containment_counterexample,
    pattern_queries_contained,
    pattern_query_witness,
)
from .strings import (
    selection_language,
    string_containment_counterexample,
    string_queries_equivalent,
    string_query_witness,
)
from .tiling import (
    TilingInstance,
    is_strategy_tree,
    strategy_tree,
    tiling_acceptor,
)

__all__ = [
    "AnnotationNFA",
    "BudgetExceededError",
    "ClosureBudgetExceeded",
    "JointClosure",
    "PackedJointClosure",
    "are_equivalent",
    "containment_counterexample",
    "is_contained",
    "language_is_empty",
    "language_witness",
    "query_is_empty",
    "query_witness",
    "pattern_containment_counterexample",
    "pattern_queries_contained",
    "pattern_query_witness",
    "ranked_query_to_unranked",
    "ranked_to_unranked",
    "selection_language",
    "string_containment_counterexample",
    "string_queries_equivalent",
    "string_query_witness",
    "TilingInstance",
    "is_strategy_tree",
    "strategy_tree",
    "tiling_acceptor",
]
