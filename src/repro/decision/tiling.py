"""TWO PERSON CORRIDOR TILING and the Proposition 6.1 reduction.

Non-emptiness of 2DTA^r is EXPTIME-hard, by reduction from the corridor
tiling game: given tiles ``T``, horizontal/vertical constraints ``H``/``V``
and bottom/top rows ``b̄``/``t̄``, player 1 wins iff some tree over
``{0,1,2} × {1..n} × T`` *represents a winning strategy* — and a tree
automaton can check the strategy conditions, so player 1 wins iff the
automaton's language is non-empty.

This module makes the whole chain executable:

* :class:`TilingInstance` with a direct game solver
  (:meth:`~TilingInstance.player_one_wins`, an attractor fixpoint on the
  finite game graph) and winning-strategy extraction;
* :func:`is_strategy_tree` — the paper's conditions (1)–(6), checked
  directly (the specification of the reduction);
* :func:`strategy_tree` — builds the strategy tree of a winning player 1
  (a witness for non-emptiness);
* :func:`tiling_acceptor` — a genuine
  :class:`~repro.ranked.twoway.TwoWayRankedAutomaton` accepting exactly
  the strategy trees.

**Deviation note.**  The paper's acceptor keeps only O(N) states by
*re-reading* the ancestor ``n`` levels up (level-by-level sweeps with
``n`` up transitions each); our executable acceptor instead carries the
last ``n`` tiles of the branch in its state (a sliding window), which is
exponential in ``n`` but makes the automaton a straightforward single
down-up traversal.  The reduction itself — instance ↦ automaton with
*(non-empty ⟺ player 1 wins)* — is reproduced exactly and tested against
the direct game solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..ranked.twoway import TwoWayRankedAutomaton
from ..trees.tree import Tree

Tile = str

#: Tree labels are rendered "player:column:tile" (components 1-based).
def _label(player: int, column: int, tile: Tile) -> str:
    return f"{player}:{column}:{tile}"


def _parse_label(label: str) -> tuple[int, int, Tile]:
    player, column, tile = label.split(":")
    return int(player), int(column), tile


@dataclass(frozen=True)
class TilingInstance:
    """A TWO PERSON CORRIDOR TILING instance."""

    tiles: tuple[Tile, ...]
    horizontal: frozenset[tuple[Tile, Tile]]
    vertical: frozenset[tuple[Tile, Tile]]
    bottom: tuple[Tile, ...]
    top: tuple[Tile, ...]

    def __post_init__(self) -> None:
        if len(self.bottom) != len(self.top):
            raise ValueError("bottom and top rows must have equal width")
        if not self.bottom:
            raise ValueError("the corridor must have positive width")

    @property
    def width(self) -> int:
        """The corridor width ``n``."""
        return len(self.bottom)

    # -- the game ----------------------------------------------------------

    def _ok_horizontal(self, row: tuple[Tile, ...], tile: Tile) -> bool:
        return not row or (row[-1], tile) in self.horizontal

    def _ok_vertical(self, below: tuple[Tile, ...], position: int, tile: Tile) -> bool:
        return (below[position], tile) in self.vertical

    def _legal_moves(self, below: tuple[Tile, ...], partial: tuple[Tile, ...]):
        for tile in self.tiles:
            if self._ok_horizontal(partial, tile) and self._ok_vertical(
                below, len(partial), tile
            ):
                yield tile

    def _row_complete_wins(self, row: tuple[Tile, ...]) -> bool:
        """Placing ``top`` above ``row`` finishes the corridor?"""
        return all((row[i], self.top[i]) in self.vertical for i in range(self.width))

    def player_one_wins(self) -> bool:
        """Attractor fixpoint on the (finite) game graph.

        Positions are ``(previous full row, partial current row)``; the
        player to move is determined by the total number of placed tiles
        (player 1 places the odd-numbered tiles).  Player 1 wins a
        position iff he can *force* completion: a row from which ``top``
        fits, or a false move by player 2.  A least fixpoint (win within
        ``k`` steps) captures exactly forced wins, so cycles count for
        player 2.
        """
        if self._row_complete_wins(self.bottom):
            return True

        # Enumerate positions lazily through the fixpoint.
        @lru_cache(maxsize=None)
        def moves(below: tuple, partial: tuple) -> tuple:
            return tuple(self._legal_moves(below, partial))

        winning: set[tuple] = set()
        changed = True
        # Bound iterations by the number of positions (|T|^(2n) · n).
        while changed:
            changed = False
            for below, partial in list(_positions(self)):
                position = (below, partial)
                if position in winning:
                    continue
                placed = len(partial)
                player_one_to_move = placed % 2 == 0
                options = moves(below, partial)
                results = []
                for tile in options:
                    nxt_partial = partial + (tile,)
                    if len(nxt_partial) == self.width:
                        if self._row_complete_wins(nxt_partial):
                            results.append(True)
                        else:
                            results.append((nxt_partial, ()) in winning)
                    else:
                        results.append((below, nxt_partial) in winning)
                if player_one_to_move:
                    win = any(results)
                else:
                    # Player 2 loses immediately on a false move, so "no
                    # legal move" is a player-1 win; otherwise player 1
                    # must win all continuations.
                    win = all(results) if options else True
                if win:
                    winning.add(position)
                    changed = True
        return (self.bottom, ()) in winning

    def winning_strategy(self):
        """The strategy map for player 1, or ``None`` when he loses.

        Maps positions-with-player-1-to-move to the tile he places.
        """
        if not self.player_one_wins():
            return None
        # Rank positions by "wins within k plies" to pick progress moves.
        rank: dict[tuple, int] = {}
        changed = True
        while changed:
            changed = False
            for below, partial in _positions(self):
                position = (below, partial)
                placed = len(partial)
                player_one_to_move = placed % 2 == 0
                options = list(self._legal_moves(below, partial))

                def value(tile: Tile) -> int | None:
                    nxt = partial + (tile,)
                    if len(nxt) == self.width:
                        if self._row_complete_wins(nxt):
                            return 0
                        nxt_position = (nxt, ())
                    else:
                        nxt_position = (below, nxt)
                    return rank.get(nxt_position)

                if player_one_to_move:
                    values = [v for v in (value(t) for t in options) if v is not None]
                    new = min(values) + 1 if values else None
                else:
                    if not options:
                        new = 0
                    else:
                        values = [value(t) for t in options]
                        new = (
                            max(values) + 1
                            if all(v is not None for v in values)
                            else None
                        )
                if new is not None and rank.get(position, new + 1) > new:
                    rank[position] = new
                    changed = True

        def choose(below: tuple, partial: tuple) -> Tile | None:
            best_tile, best_rank = None, None
            for tile in self._legal_moves(below, partial):
                nxt = partial + (tile,)
                if len(nxt) == self.width:
                    r = 0 if self._row_complete_wins(nxt) else rank.get((nxt, ()))
                else:
                    r = rank.get((below, nxt))
                if r is not None and (best_rank is None or r < best_rank):
                    best_tile, best_rank = tile, r
            return best_tile

        return choose


def _positions(instance: TilingInstance):
    """All game positions (previous row × partial row prefixes)."""
    from itertools import product

    rows = list(product(instance.tiles, repeat=instance.width))
    rows.append(instance.bottom)
    for below in rows:
        for length in range(instance.width):
            for partial in product(instance.tiles, repeat=length):
                yield (tuple(below), tuple(partial))


# ----------------------------------------------------------------------
# Strategy trees (the reduction's witness objects)
# ----------------------------------------------------------------------


def strategy_tree(instance: TilingInstance, max_nodes: int = 200_000) -> Tree | None:
    """The winning-strategy tree of Proposition 6.1, or ``None``.

    The first ``n`` nodes form a chain labeled with the bottom row; below
    it, player-1 nodes are only children (his strategy choice) and
    player-2 nodes enumerate all tiles.  A branch ends when the last
    placed row supports ``top`` or player 2 has just made a false move.
    """
    choose = instance.winning_strategy()
    if choose is None:
        return None
    n = instance.width
    count = [0]

    def build(below: tuple, partial: tuple, false_move: bool) -> list[Tree]:
        """Children below a node at position (below, partial)."""
        count[0] += 1
        if count[0] > max_nodes:
            raise MemoryError("strategy tree exceeds the node budget")
        if false_move:
            return []
        if not partial and instance._row_complete_wins(below):
            return []
        placed = len(partial)
        column = placed + 1
        player = 1 if placed % 2 == 0 else 2

        def advance(tile: Tile) -> tuple[tuple, tuple]:
            nxt = partial + (tile,)
            if len(nxt) == n:
                return nxt, ()
            return below, nxt

        if player == 1:
            tile = choose(below, partial)
            assert tile is not None, "winning strategy must offer a move"
            nxt_below, nxt_partial = advance(tile)
            return [
                Tree(
                    _label(1, column, tile),
                    build(nxt_below, nxt_partial, False),
                )
            ]
        children = []
        for tile in instance.tiles:
            legal = instance._ok_horizontal(partial, tile) and instance._ok_vertical(
                below, placed, tile
            )
            nxt_below, nxt_partial = advance(tile)
            children.append(
                Tree(
                    _label(2, column, tile),
                    build(nxt_below, nxt_partial, not legal),
                )
            )
        return children

    # The bottom chain.
    chain_children = build(instance.bottom, (), False)
    tree: Tree | None = None
    for j in range(n, 0, -1):
        node = Tree(
            _label(0, j, instance.bottom[j - 1]),
            [tree] if tree is not None else chain_children,
        )
        tree = node
    assert tree is not None
    return tree


def is_strategy_tree(instance: TilingInstance, tree: Tree) -> bool:
    """The paper's conditions (1)–(6), checked directly."""
    n = instance.width

    # (1) bottom chain.
    node = tree
    for j in range(1, n + 1):
        if node.label != _label(0, j, instance.bottom[j - 1]):
            return False
        if j < n:
            if len(node.children) != 1:
                return False
            node = node.children[0]

    def check(node: Tree, window: tuple, placed: int, false_seen: bool) -> bool:
        """Validate the subtree of a game node.

        ``window``: the last ``n`` tiles on the branch; ``placed``: tiles
        placed in the current row so far (the node itself included).
        """
        player, column, tile = _parse_label(node.label)
        expected_player = 1 if (placed - 1) % 2 == 0 else 2
        expected_column = (placed - 1) % n + 1
        if player != expected_player or column != expected_column:
            return False
        legal = True
        if placed % n != 1 and (window[-1], tile) not in instance.horizontal:
            legal = False
        if (window[-n], tile) not in instance.vertical:
            legal = False
        if not legal and player == 1:
            return False  # player 1 may not cheat in his own strategy
        now_false = false_seen or not legal
        new_window = (window + (tile,))[-n - 1 :]

        if not node.children:
            if now_false:
                return True
            # The branch must complete: full row supporting the top.
            if placed % n != 0:
                return False
            row = new_window[-n:]
            return all(
                (row[i], instance.top[i]) in instance.vertical for i in range(n)
            )

        children = node.children
        child_players = {_parse_label(c.label)[0] for c in children}
        if len(child_players) != 1:
            return False
        child_player = next(iter(child_players))
        if child_player == 1 and len(children) != 1:
            return False  # (4) player-1 nodes have no siblings
        if child_player == 2:
            tiles = [_parse_label(c.label)[2] for c in children]
            if len(set(tiles)) != len(tiles):
                return False  # (4) distinct siblings
            if set(tiles) != set(instance.tiles):
                return False  # (5) every alternative present
        return all(
            check(child, new_window, placed + 1, now_false) for child in children
        )

    if not node.children:
        # No second row: bottom must already support the top.
        return all(
            (instance.bottom[i], instance.top[i]) in instance.vertical
            for i in range(n)
        )
    if len(node.children) != 1:
        return False  # (2) exactly one depth-n node, played by player 1
    return check(node.children[0], instance.bottom, 1, False)


# ----------------------------------------------------------------------
# The 2DTA^r acceptor
# ----------------------------------------------------------------------


def tiling_acceptor(instance: TilingInstance) -> TwoWayRankedAutomaton:
    """A 2DTA^r whose language is the strategy trees of the instance.

    Non-empty ⟺ player 1 wins the corridor game (Proposition 6.1).  The
    automaton makes one down sweep (expectation states carrying the
    sliding tile window; see the module deviation note) and one up sweep
    (checking sibling completeness and returning to the root).
    """
    n = instance.width
    tiles = instance.tiles
    alphabet = {
        _label(player, column, tile)
        for player in (0, 1, 2)
        for column in range(1, n + 1)
        for tile in tiles
    }
    max_rank = max(len(tiles), 1)

    # Down states: ("chain", j) expects bottom-chain node j;
    # ("expect", player, column, window, false_seen) expects a game node.
    # Up states: "ok"; final: "accept".
    states: set = {"ok", "accept", "start"}
    down_pairs: set = set()
    up_pairs: set = set()
    delta_leaf: dict = {}
    delta_root: dict = {}
    delta_up: dict = {}
    delta_down: dict = {}

    def windows():
        from itertools import product as iproduct

        for size in range(n, n + 1):
            yield from iproduct(tiles, repeat=size)

    def expect(player: int, column: int, window: tuple, false_seen: bool):
        return ("expect", player, column, window, false_seen)

    def chain(j: int):
        return ("chain", j)

    for j in range(1, n + 1):
        states.add(chain(j))

    def row_done(window: tuple) -> bool:
        return all(
            (window[i], instance.top[i]) in instance.vertical for i in range(n)
        )

    # Chain handling.  chain(j) sits at the chain node j; its label must be
    # the bottom tile.
    for j in range(1, n + 1):
        label = _label(0, j, instance.bottom[j - 1])
        down_pairs.add((chain(j), label))
        if j < n:
            delta_down[(chain(j), label, 1)] = (chain(j + 1),)
        else:
            # After the chain: player 1 opens row 2, column 1.
            delta_down[(chain(n), label, 1)] = (
                expect(1, 1, tuple(instance.bottom), False),
            )
            # Or the tree ends here: b̄ and t̄ already tile the corridor.
            if row_done(tuple(instance.bottom)):
                delta_leaf[(chain(n), label)] = "ok"

    def legal(window: tuple, placed_in_row: int, tile: Tile) -> bool:
        ok = (window[-n], tile) in instance.vertical
        if placed_in_row > 1 and (window[-1], tile) not in instance.horizontal:
            ok = False
        return ok

    # Game-node expectations.  ``window`` is the last n tiles above.
    from itertools import product as iproduct

    for player in (1, 2):
        for column in range(1, n + 1):
            for window in windows():
                for false_seen in (False, True):
                    state = expect(player, column, window, false_seen)
                    states.add(state)
                    for tile in tiles:
                        label = _label(player, column, tile)
                        tile_legal = legal(window, column, tile)
                        if not tile_legal and player == 1:
                            continue  # player 1 may not cheat: stuck
                        now_false = false_seen or not tile_legal
                        new_window = (window + (tile,))[-n:]
                        down_pairs.add((state, label))
                        # Leaf endings.
                        if now_false or (column == n and row_done(new_window)):
                            delta_leaf[(state, label)] = "ok"
                        # Internal continuation.
                        next_player = 2 if player == 1 else 1
                        next_column = column % n + 1
                        child = expect(next_player, next_column, new_window, now_false)
                        if next_player == 1:
                            delta_down[(state, label, 1)] = (child,)
                        else:
                            for arity in (len(tiles),):
                                delta_down[(state, label, arity)] = tuple(
                                    child for _ in range(arity)
                                )

    # Up sweep: "ok" children collapse to "ok", checking (4)/(5).
    for label in alphabet:
        up_pairs.add(("ok", label))
    for arity in range(1, max_rank + 1):
        for labels in iproduct(sorted(alphabet), repeat=arity):
            players = {_parse_label(l)[0] for l in labels}
            if len(players) != 1:
                continue
            player = next(iter(players))
            word = tuple(("ok", l) for l in labels)
            if player in (0, 1):
                if arity == 1:
                    delta_up[word] = "ok"
                continue
            tile_list = [_parse_label(l)[2] for l in labels]
            columns = {_parse_label(l)[1] for l in labels}
            if (
                len(columns) == 1
                and len(set(tile_list)) == arity
                and set(tile_list) == set(tiles)
            ):
                delta_up[word] = "ok"

    # Root: accept once the sweep returns.
    root_label = _label(0, 1, instance.bottom[0])
    delta_root[("ok", root_label)] = "accept"
    up_pairs.add(("accept", root_label))

    return TwoWayRankedAutomaton.build(
        states,
        alphabet,
        max_rank,
        chain(1),
        {"accept"},
        up_pairs,
        down_pairs,
        delta_leaf,
        delta_root,
        delta_up,
        delta_down,
    )
