"""Decision problems for QA^string: the Section 6 questions on strings.

The paper states non-emptiness/containment/equivalence for tree QAs; the
string case falls out of the same machinery and is implemented here
directly: the graph of a ``QA^string``'s query — the set of *marked
words* ``mark(w, i)`` with ``i ∈ A(w)`` — is regular, recognized by a
one-way NFA that guesses the Theorem 3.9 data ``(f⁻, first, Assumed)``
per position and verifies it locally (the construction behind
Proposition 6.2's bound).  Boolean operations on these regular languages
then decide everything, with witnesses.

States of the selection NFA: ``(f⁻, first, Assumed, cell, marked,
halted)`` — the behavior function and first-state are determined
left-to-right; the Assumed component is guessed and checked against the
next position; ``marked`` records whether the marked position has been
passed and whether it was visited in a selecting state; ``halted``
remembers the unique inner halting state, if already seen.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .. import obs
from ..strings.dfa import DFA
from ..strings.nfa import NFA
from ..strings.twoway import (
    GeneralizedStringQA,
    LEFT_MARKER,
    RIGHT_MARKER,
    StringQueryAutomaton,
)
from .annotation import AnnotationNFA

State = Hashable

#: marked-position status: not seen / seen & selected / seen & not selected.
UNMARKED, SELECTED, UNSELECTED = 0, 1, 2


class StringSelectionNFA(AnnotationNFA):
    """Lazy NFA over ``Σ × {0,1}`` for the query graph of a QA^string."""

    def __init__(self, qa: StringQueryAutomaton) -> None:
        super().__init__(
            GeneralizedStringQA(qa.automaton, {}, frozenset())
        )
        self.qa = qa

    # -- helpers ---------------------------------------------------------

    def _halt_state(self, assumed: frozenset, cell) -> tuple[bool, State | None]:
        """(valid, halting state) among the assumed states at this cell."""
        halters = [
            state for state in assumed if self.automaton.move(state, cell) is None
        ]
        if len(halters) > 1:
            return False, None
        return True, (halters[0] if halters else None)

    def _assumed_options(self, frozen, first):
        if first is None:
            return [frozenset()]
        return self._assumed_candidates(frozen, first)

    def _consistent_chain(self, frozen, first, assumed, assumed_next, cell_next):
        if first is None:
            bucket = set()
        else:
            bucket = set(self._orbit(frozen, first))
        for later in assumed_next:
            if self.automaton.in_left(later, cell_next):
                entered = self.automaton.left_moves[(later, cell_next)]
                bucket.update(self._orbit(frozen, entered))
        return frozenset(bucket) == assumed

    # -- the NFA interface -------------------------------------------------

    def initial_states(self) -> frozenset[tuple]:
        """NFA start states: the ``⊳`` boundary data with guessed Assumed."""
        base = self._base_behavior()
        first = self.automaton.initial
        out = []
        for assumed in self._assumed_candidates(base, first):
            ok, halted = self._halt_state(assumed, LEFT_MARKER)
            if not ok:
                continue
            out.append((base, first, assumed, LEFT_MARKER, UNMARKED, halted))
        return frozenset(out)

    def step(self, state: tuple, letter: tuple) -> frozenset[tuple]:
        """Successors after one marked letter ``(σ, bit)``."""
        symbol, bit = letter
        frozen, first, assumed, cell, marked, halted = state
        if bit and marked != UNMARKED:
            return frozenset()
        extended = self._extend_behavior(frozen, cell, symbol)
        if first is None:
            first_next: State | None = None
        else:
            mover = self._right_state(frozen, first, cell)
            first_next = (
                None
                if mover is None
                else self.automaton.right_moves[(mover, cell)]
            )
        successors = []
        for assumed_next in self._assumed_options(extended, first_next):
            if not self._consistent_chain(
                frozen, first, assumed, assumed_next, symbol
            ):
                continue
            ok, new_halt = self._halt_state(assumed_next, symbol)
            if not ok:
                continue
            if new_halt is not None and halted is not None:
                continue  # a run halts exactly once
            combined_halt = halted if new_halt is None else new_halt
            if bit:
                selected = any(
                    (s, symbol) in self.qa.selecting for s in assumed_next
                )
                new_marked = SELECTED if selected else UNSELECTED
            else:
                new_marked = marked
            successors.append(
                (extended, first_next, assumed_next, symbol, new_marked, combined_halt)
            )
        return frozenset(successors)

    def accepting_status(self, state: tuple) -> tuple | None:
        """``(marked, halting_state)`` when the end-of-word data checks out."""
        frozen, first, assumed, cell, marked, halted = state
        extended = self._extend_behavior(frozen, cell, RIGHT_MARKER)
        if first is None:
            assumed_end: frozenset = frozenset()
        else:
            mover = self._right_state(frozen, first, cell)
            if mover is None:
                assumed_end = frozenset()
            else:
                first_end = self.automaton.right_moves[(mover, cell)]
                assumed_end = frozenset(self._orbit(extended, first_end))
        if not self._consistent_chain(
            frozen, first, assumed, assumed_end, RIGHT_MARKER
        ):
            return None
        ok, end_halt = self._halt_state(assumed_end, RIGHT_MARKER)
        if not ok:
            return None
        if end_halt is not None and halted is not None:
            return None
        final_halt = halted if end_halt is None else end_halt
        if final_halt is None:
            return None  # the run never halts: not a legal (halting) run
        return marked, final_halt

    # -- materialization ----------------------------------------------------

    def to_nfa(self, alphabet: Sequence) -> NFA:
        """The explicit NFA over ``Σ × {0,1}`` accepting the query graph."""
        letters = [(symbol, bit) for symbol in alphabet for bit in (0, 1)]
        initials = self.initial_states()
        states = set(initials)
        transitions: dict = {}
        frontier = list(initials)
        while frontier:
            source = frontier.pop()
            for letter in letters:
                targets = self.step(source, letter)
                if not targets:
                    continue
                transitions[(source, letter)] = targets
                for target in targets:
                    if target not in states:
                        states.add(target)
                        frontier.append(target)
        accepting = set()
        for state in states:
            status = self.accepting_status(state)
            if status is None:
                continue
            marked, halt = status
            if marked == SELECTED and halt in self.automaton.accepting:
                accepting.add(state)
        return NFA.build(
            states, frozenset(letters), transitions, initials, accepting
        )


def selection_language(qa: StringQueryAutomaton, alphabet: Sequence) -> DFA:
    """A DFA over ``Σ × {0,1}`` for ``{mark(w, i) : i ∈ A(w)}``."""
    return StringSelectionNFA(qa).to_nfa(alphabet).determinized().minimized()


def _decode_witness(word) -> tuple[list, int]:
    plain = [symbol for symbol, _bit in word]
    position = next(i + 1 for i, (_s, bit) in enumerate(word) if bit)
    return plain, position


def _marked_letters(alphabet: Sequence) -> list[tuple]:
    return [(symbol, bit) for symbol in alphabet for bit in (0, 1)]


def _frontier_step(snfa: StringSelectionNFA, frontier: frozenset, letter) -> frozenset:
    moved: set = set()
    for state in frontier:
        moved |= snfa.step(state, letter)
    return frozenset(moved)


def _frontier_accepts(snfa: StringSelectionNFA, frontier: frozenset) -> bool:
    for state in frontier:
        status = snfa.accepting_status(state)
        if status is None:
            continue
        marked, halt = status
        if marked == SELECTED and halt in snfa.automaton.accepting:
            return True
    return False


def _numpy_kernel(engine: str | None):
    """Resolve ``engine=`` ("antichain" default / "numpy") for the searches."""
    if engine is None or engine == "antichain":
        return None
    if engine != "numpy":
        raise ValueError(f"unknown decision engine {engine!r}")
    from ..perf import npkernel

    if npkernel.available():
        return npkernel
    obs.SINK.incr("npkernel.fallbacks")
    return None


def _query_witness_numpy(kernel, qa, alphabet):
    """:func:`string_query_witness` with vectorized antichain domination.

    Identical BFS order and pruning rule; frontier members are interned
    on the fly and the ⊆ tests run over the whole antichain at once.
    """
    from ..perf.bitset import Interner

    sink = obs.SINK
    sink.incr("antichain.searches")
    snfa = StringSelectionNFA(qa)
    letters = _marked_letters(alphabet)
    interner = Interner()
    antichain = kernel.MaskAntichain(1)

    def packed(states):
        ids = [interner.intern(state) for state in states]
        width = max(1, (len(interner) + 7) // 8)
        antichain.widen(width)
        return kernel.pack_ids(ids, width)

    start = snfa.initial_states()
    antichain.insert(packed(start))
    frontier: list[tuple[frozenset, tuple]] = [(start, ())]
    while frontier:
        next_frontier: list[tuple[frozenset, tuple]] = []
        for states, word in frontier:
            for letter in letters:
                target = _frontier_step(snfa, states, letter)
                if not target:
                    continue
                new_word = word + (letter,)
                if _frontier_accepts(snfa, target):
                    return _decode_witness(new_word)
                mask = packed(target)
                if antichain.covers(mask):
                    sink.incr("antichain.prunes")
                    continue
                antichain.insert(mask)
                if sink.enabled:
                    sink.incr("antichain.expansions")
                    sink.gauge_max("antichain.max_size", len(antichain))
                next_frontier.append((target, new_word))
        frontier = next_frontier
    return None


def _containment_numpy(kernel, first, second, alphabet):
    """:func:`string_containment_counterexample` on mask-pair antichains."""
    from ..perf.bitset import Interner

    sink = obs.SINK
    sink.incr("antichain.searches")
    left = StringSelectionNFA(first)
    right = StringSelectionNFA(second)
    letters = _marked_letters(alphabet)
    left_interner = Interner()
    right_interner = Interner()
    antichain = kernel.PairMaskAntichain(1, 1)

    def packed(pair):
        s1, s2 = pair
        ids1 = [left_interner.intern(state) for state in s1]
        ids2 = [right_interner.intern(state) for state in s2]
        w1 = max(1, (len(left_interner) + 7) // 8)
        w2 = max(1, (len(right_interner) + 7) // 8)
        antichain.widen(w1, w2)
        return kernel.pack_ids(ids1, w1), kernel.pack_ids(ids2, w2)

    start = (left.initial_states(), right.initial_states())
    antichain.insert(*packed(start))
    frontier: list[tuple[tuple, tuple]] = [(start, ())]
    while frontier:
        next_frontier: list[tuple[tuple, tuple]] = []
        for (s1, s2), word in frontier:
            for letter in letters:
                t1 = _frontier_step(left, s1, letter)
                if not t1:
                    continue  # the first query can never select this word
                t2 = _frontier_step(right, s2, letter)
                new_word = word + (letter,)
                if _frontier_accepts(left, t1) and not _frontier_accepts(
                    right, t2
                ):
                    return _decode_witness(new_word)
                m1, m2 = packed((t1, t2))
                if antichain.covers(m1, m2):
                    sink.incr("antichain.prunes")
                    continue
                antichain.insert(m1, m2)
                if sink.enabled:
                    sink.incr("antichain.expansions")
                    sink.gauge_max("antichain.max_size", len(antichain))
                next_frontier.append(((t1, t2), new_word))
        frontier = next_frontier
    return None


def string_query_witness(
    qa: StringQueryAutomaton, alphabet: Sequence, engine: str | None = None
) -> tuple[list, int] | None:
    """Non-emptiness: some ``(w, i)`` with ``i ∈ A(w)``, or ``None``.

    Level-order BFS on the lazy selection NFA's subset frontiers with
    antichain pruning (a frontier contained in an explored frontier can
    reach acceptance no sooner), never materializing or determinizing the
    exponential NFA.  ``engine="numpy"`` keeps the identical BFS but runs
    the antichain domination tests vectorized over packed masks.
    """
    kernel = _numpy_kernel(engine)
    if kernel is not None:
        return _query_witness_numpy(kernel, qa, alphabet)
    sink = obs.SINK
    sink.incr("antichain.searches")
    snfa = StringSelectionNFA(qa)
    letters = _marked_letters(alphabet)
    start = snfa.initial_states()
    antichain: list[frozenset] = [start]
    frontier: list[tuple[frozenset, tuple]] = [(start, ())]
    while frontier:
        next_frontier: list[tuple[frozenset, tuple]] = []
        for states, word in frontier:
            for letter in letters:
                target = _frontier_step(snfa, states, letter)
                if not target:
                    continue
                new_word = word + (letter,)
                if _frontier_accepts(snfa, target):
                    return _decode_witness(new_word)
                if any(target <= seen for seen in antichain):
                    sink.incr("antichain.prunes")
                    continue
                antichain = [
                    seen for seen in antichain if not seen <= target
                ]
                antichain.append(target)
                if sink.enabled:
                    sink.incr("antichain.expansions")
                    sink.gauge_max("antichain.max_size", len(antichain))
                next_frontier.append((target, new_word))
        frontier = next_frontier
    return None


def string_containment_counterexample(
    first: StringQueryAutomaton,
    second: StringQueryAutomaton,
    alphabet: Sequence,
    engine: str | None = None,
) -> tuple[list, int] | None:
    """A ``(w, i)`` selected by ``first`` but not ``second`` (Thm 6.4 on strings).

    Antichain product search (De Wulf–Doyen–Raskin style): pairs
    ``(S₁, S₂)`` of subset frontiers, accepting when ``S₁`` accepts and
    ``S₂`` does not; a pair with smaller ``S₁`` and larger ``S₂`` than an
    explored pair is dominated and pruned.  Avoids determinizing and
    complementing the second query's exponential selection NFA.
    ``engine="numpy"`` vectorizes the pair-domination tests.
    """
    kernel = _numpy_kernel(engine)
    if kernel is not None:
        return _containment_numpy(kernel, first, second, alphabet)
    sink = obs.SINK
    sink.incr("antichain.searches")
    left = StringSelectionNFA(first)
    right = StringSelectionNFA(second)
    letters = _marked_letters(alphabet)
    start = (left.initial_states(), right.initial_states())
    antichain: list[tuple[frozenset, frozenset]] = [start]
    frontier: list[tuple[tuple, tuple]] = [(start, ())]
    while frontier:
        next_frontier: list[tuple[tuple, tuple]] = []
        for (s1, s2), word in frontier:
            for letter in letters:
                t1 = _frontier_step(left, s1, letter)
                if not t1:
                    continue  # the first query can never select this word
                t2 = _frontier_step(right, s2, letter)
                new_word = word + (letter,)
                if _frontier_accepts(left, t1) and not _frontier_accepts(
                    right, t2
                ):
                    return _decode_witness(new_word)
                if any(
                    t1 <= a1 and a2 <= t2 for (a1, a2) in antichain
                ):
                    sink.incr("antichain.prunes")
                    continue
                antichain = [
                    (a1, a2)
                    for (a1, a2) in antichain
                    if not (a1 <= t1 and t2 <= a2)
                ]
                antichain.append((t1, t2))
                if sink.enabled:
                    sink.incr("antichain.expansions")
                    sink.gauge_max("antichain.max_size", len(antichain))
                next_frontier.append(((t1, t2), new_word))
        frontier = next_frontier
    return None


def string_queries_equivalent(
    first: StringQueryAutomaton,
    second: StringQueryAutomaton,
    alphabet: Sequence,
    engine: str | None = None,
) -> bool:
    """Do two QA^string compute the same query?  Two antichain containments."""
    return (
        string_containment_counterexample(first, second, alphabet, engine=engine)
        is None
        and string_containment_counterexample(
            second, first, alphabet, engine=engine
        )
        is None
    )
