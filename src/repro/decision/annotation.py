"""One-way annotation automata for two-way transducers (GSQAs).

The decision procedures of Section 6 need to reason about the stay
transitions of an S2DTA^u, which are computed by a *two-way* machine (a
GSQA) — but the bottom-up automaton ``B`` of Theorem 6.3 reads children
words *one way*.  The paper bridges the gap with Proposition 6.2
(two-way/pebble automata convert to exponential one-way NFAs); the
concrete construction behind that bound is the behavior-function
guess-and-check of Theorem 3.9, which we implement here.

:class:`AnnotationNFA` accepts exactly the streams
``(w_1, γ_1) ... (w_n, γ_n)`` such that the GSQA outputs ``γ_i`` at
position ``i`` of input ``w`` — i.e., the graph of the transduction,
recognized one-way.  States are tuples ``(f⁻, first, Assumed, cell)``:

* ``f⁻`` and ``first`` are *determined* left-to-right (items 1–2 of the
  Theorem 3.9 proof);
* the ``Assumed`` component is *guessed* (it depends on the future) and
  verified against item 4's recurrence at the next step;
* the output letter must match the unique non-⊥ value of λ on
  ``Assumed × {w_i}``.

The state space is exponential in the GSQA's, matching Proposition 6.2;
states are produced lazily via :meth:`step`, never materialized en masse.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..perf.bitset import Interner
from ..strings.behavior import BehaviorFunction, states_closure
from ..strings.twoway import (
    GeneralizedStringQA,
    LEFT_MARKER,
    RIGHT_MARKER,
    TwoWayDFA,
)

State = Hashable
Symbol = Hashable

#: A frozen behavior function (sorted item tuple) for hashability.
FrozenBehavior = tuple


def _freeze(behavior: BehaviorFunction) -> FrozenBehavior:
    return tuple(sorted(behavior.items(), key=repr))


def _thaw(frozen: FrozenBehavior) -> BehaviorFunction:
    return dict(frozen)


class AnnotationNFA:
    """Lazy one-way NFA for the graph of a GSQA's transduction.

    Drive it with :meth:`initial_states`, :meth:`step` (per position,
    with the input symbol and the *claimed* output symbol), and
    :meth:`accepting` at the end of the word.
    """

    def __init__(self, gsqa: GeneralizedStringQA) -> None:
        self.gsqa = gsqa
        self.automaton: TwoWayDFA = gsqa.automaton
        self._state_ids = Interner(sorted(gsqa.automaton.states, key=repr))
        self._orbit_cache: dict[tuple[FrozenBehavior, State], tuple] = {}
        self._candidates_cache: dict[tuple, list] = {}
        self._extend_cache: dict[tuple, FrozenBehavior] = {}
        self._step_cache: dict[tuple, frozenset] = {}
        self._accept_cache: dict[tuple, bool] = {}

    # -- behavior-function recurrences (items 1-2 of Theorem 3.9) -------

    def _orbit(self, frozen: FrozenBehavior, state: State) -> tuple:
        key = (frozen, state)
        if key not in self._orbit_cache:
            self._orbit_cache[key] = tuple(states_closure(_thaw(frozen), state))
        return self._orbit_cache[key]

    def _right_state(
        self, frozen: FrozenBehavior, state: State, cell
    ) -> State | None:
        for candidate in self._orbit(frozen, state):
            if self.automaton.in_right(candidate, cell):
                return candidate
        return None

    def _base_behavior(self) -> FrozenBehavior:
        return _freeze(
            {
                state: state
                for state in self.automaton.states
                if self.automaton.in_right(state, LEFT_MARKER)
            }
        )

    def _extend_behavior(
        self, frozen: FrozenBehavior, previous_cell, cell
    ) -> FrozenBehavior:
        key = (frozen, previous_cell, cell)
        cached = self._extend_cache.get(key)
        if cached is not None:
            return cached
        previous = _thaw(frozen)
        current: BehaviorFunction = {}
        for state in self.automaton.states:
            if self.automaton.in_right(state, cell):
                current[state] = state
                continue
            if not self.automaton.in_left(state, cell):
                continue
            entered = self.automaton.left_moves[(state, cell)]
            returner = self._right_state(frozen, entered, previous_cell)
            if returner is None:
                continue
            current[state] = self.automaton.right_moves[(returner, previous_cell)]
        result = _freeze(current)
        self._extend_cache[key] = result
        return result

    # -- Assumed guessing (items 3-4) ------------------------------------

    def _assumed_candidates(
        self, frozen: FrozenBehavior, first: State
    ) -> list[frozenset]:
        """All sets of the form ``States(f, first) ∪ ⋃ States(f, e)``.

        The entries ``e`` are the states future left moves may hand this
        position; the guess ranges over subsets of S.  Computed on
        bitsets: the distinct achievable unions of the orbit masks are
        explored as a fixpoint over *masks*, so the work is proportional
        to the number of distinct candidates rather than to the
        :math:`2^{|Q|}` subset enumeration.
        """
        cache_key = (frozen, first)
        cached = self._candidates_cache.get(cache_key)
        if cached is not None:
            return cached
        ids = self._state_ids
        base = ids.mask_of(self._orbit(frozen, first))
        orbit_masks = {
            ids.mask_of(self._orbit(frozen, entry))
            for entry in self.automaton.states
        }
        candidates = {base}
        frontier = [base]
        while frontier:
            mask = frontier.pop()
            for orbit_mask in orbit_masks:
                merged = mask | orbit_mask
                if merged not in candidates:
                    candidates.add(merged)
                    frontier.append(merged)
        result = sorted(
            (frozenset(ids.unpack(mask)) for mask in candidates), key=repr
        )
        self._candidates_cache[cache_key] = result
        return result

    def _consistent(
        self,
        frozen_prev: FrozenBehavior,
        first_prev: State,
        assumed_prev: frozenset,
        assumed_next: frozenset,
        cell_next,
    ) -> bool:
        """Item 4: ``Assumed_i`` determined by ``Assumed_{i+1}`` and the
        position-``i`` data."""
        bucket = set(self._orbit(frozen_prev, first_prev))
        for later in assumed_next:
            if self.automaton.in_left(later, cell_next):
                entered = self.automaton.left_moves[(later, cell_next)]
                bucket.update(self._orbit(frozen_prev, entered))
        return frozenset(bucket) == assumed_prev

    def _output_of(self, assumed: frozenset, symbol) -> Symbol | None:
        """The unique non-⊥ output over the assumed states, if exactly one."""
        values = {
            self.gsqa.output[(state, symbol)]
            for state in assumed
            if (state, symbol) in self.gsqa.output
        }
        if len(values) == 1:
            return next(iter(values))
        return None

    # -- the NFA interface ------------------------------------------------

    def initial_states(self) -> frozenset[tuple]:
        """States before reading position 1 (at the ``⊳`` boundary)."""
        base = self._base_behavior()
        first = self.automaton.initial
        return frozenset(
            (base, first, assumed, LEFT_MARKER)
            for assumed in self._assumed_candidates(base, first)
        )

    def step(
        self, state: tuple, input_symbol: Symbol, output_symbol: Symbol
    ) -> frozenset[tuple]:
        """All successor states after one (input, claimed output) letter."""
        cache_key = (state, input_symbol, output_symbol)
        cached = self._step_cache.get(cache_key)
        if cached is not None:
            return cached
        frozen, first, assumed, cell = state
        extended = self._extend_behavior(frozen, cell, input_symbol)
        if first is None:
            self._step_cache[cache_key] = frozenset()
            return frozenset()
        mover = self._right_state(frozen, first, cell)
        if mover is None:
            # The head never reaches this position.
            self._step_cache[cache_key] = frozenset()
            return frozenset()
        first_next = self.automaton.right_moves[(mover, cell)]
        successors = []
        for assumed_next in self._assumed_candidates(extended, first_next):
            if not self._consistent(
                frozen, first, assumed, assumed_next, input_symbol
            ):
                continue
            if self._output_of(assumed_next, input_symbol) != output_symbol:
                continue
            successors.append((extended, first_next, assumed_next, input_symbol))
        result = frozenset(successors)
        self._step_cache[cache_key] = result
        return result

    def accepting(self, state: tuple) -> bool:
        """End-of-word check at the ``⊲`` boundary."""
        cached = self._accept_cache.get(state)
        if cached is not None:
            return cached
        frozen, first, assumed, cell = state
        extended = self._extend_behavior(frozen, cell, RIGHT_MARKER)
        mover = self._right_state(frozen, first, cell)
        if mover is None:
            # The run never reaches ⊲; the final Assumed receives no
            # entries from the right.
            assumed_end: frozenset = frozenset()
        else:
            first_end = self.automaton.right_moves[(mover, cell)]
            assumed_end = frozenset(self._orbit(extended, first_end))
        result = self._consistent(frozen, first, assumed, assumed_end, RIGHT_MARKER)
        self._accept_cache[state] = result
        return result

    # -- convenience -------------------------------------------------------

    def accepts_stream(self, pairs) -> bool:
        """Does the annotated stream belong to the transduction graph?"""
        current = self.initial_states()
        for input_symbol, output_symbol in pairs:
            nxt: set[tuple] = set()
            for state in current:
                nxt |= self.step(state, input_symbol, output_symbol)
            current = frozenset(nxt)
            if not current:
                return False
        return any(self.accepting(state) for state in current)
