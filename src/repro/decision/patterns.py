"""Pattern-query decision problems over a DTD (the Lemma 5.2 route).

The closure engine decides emptiness/containment for two-way query
automata; for the *pattern* queries of the XML pipeline the same
questions reduce to NBTA^u emptiness over the marked alphabet
``Σ × {0,1}``:

* the DTD's derivation-tree automaton is lifted to marked labels
  (ignoring the bits);
* a two-state automaton enforces exactly one marked node;
* the pattern compiles (through MSO) to a deterministic bottom-up
  automaton over marked trees, used directly for emptiness and via its
  complement for containment.

The intersection's emptiness check runs on the bitset/antichain fixpoint
of :mod:`repro.unranked.nbta`, and a ``budget`` caps the product size
(raising :class:`~repro.decision.closure.BudgetExceededError`).
"""

from __future__ import annotations

from ..core.patterns import compile_pattern
from ..strings.nfa import NFA
from ..trees.dtd import DTD
from ..trees.tree import Path, Tree
from ..unranked.nbta import UnrankedTreeAutomaton
from .closure import BudgetExceededError

#: The marked alphabet bit values.
_BITS = (0, 1)


def _marked_dtd_automaton(dtd: DTD) -> UnrankedTreeAutomaton:
    """The DTD's derivation-tree automaton, lifted to ``Σ × {0,1}``."""
    automaton = dtd.to_tree_automaton()
    alphabet = frozenset(
        (label, bit) for label in automaton.alphabet for bit in _BITS
    )
    horizontal = {}
    for (state, label), nfa in automaton.horizontal.items():
        for bit in _BITS:
            horizontal[(state, (label, bit))] = nfa
    return UnrankedTreeAutomaton(
        automaton.states, alphabet, automaton.accepting, horizontal
    )


def _one_mark_automaton(alphabet: frozenset) -> UnrankedTreeAutomaton:
    """States 0/1 = number of marked nodes in the subtree; accepts 1."""
    states = frozenset({0, 1})

    def word_nfa(pattern: str) -> NFA:
        # "zeros": 0*;  "one": 0*10*.
        if pattern == "zeros":
            return NFA.build({"z"}, states, {("z", 0): {"z"}}, {"z"}, {"z"})
        return NFA.build(
            {"z", "o"},
            states,
            {("z", 0): {"z"}, ("z", 1): {"o"}, ("o", 0): {"o"}},
            {"z"},
            {"o"},
        )

    horizontal = {}
    for label, bit in sorted(alphabet, key=repr):
        if bit:
            horizontal[(1, (label, bit))] = word_nfa("zeros")
        else:
            horizontal[(0, (label, bit))] = word_nfa("zeros")
            horizontal[(1, (label, bit))] = word_nfa("one")
    return UnrankedTreeAutomaton(
        states, frozenset(alphabet), frozenset({1}), horizontal
    )


def _decode_marked_tree(marked: Tree) -> tuple[Tree, Path]:
    """Split a ``Σ × {0,1}`` witness into (plain tree, marked path)."""
    found: list[Path] = []

    def strip(node: Tree, path: Path) -> Tree:
        label, bit = node.label
        if bit:
            found.append(path)
        return Tree(
            label,
            [
                strip(child, path + (index,))
                for index, child in enumerate(node.children)
            ],
        )

    plain = strip(marked, ())
    assert len(found) == 1, "witness must carry exactly one mark"
    return plain, found[0]


def _budgeted_witness(
    product: UnrankedTreeAutomaton, budget: int | None
) -> Tree | None:
    if budget is not None and product.size > budget:
        raise BudgetExceededError(budget, work=product.size)
    return product.witness()


def pattern_query_witness(
    pattern: str, dtd: DTD, budget: int | None = None
) -> tuple[Tree, Path] | None:
    """A DTD-valid tree and node the pattern selects, or ``None``."""
    dtd_marked = _marked_dtd_automaton(dtd)
    query = compile_pattern(pattern, sorted(dtd_marked.states, key=repr))
    product = (
        dtd_marked.intersection(_one_mark_automaton(dtd_marked.alphabet))
        .trimmed()
        .intersection(query.compiled().to_nbta())
        .trimmed()
    )
    witness = _budgeted_witness(product, budget)
    if witness is None:
        return None
    return _decode_marked_tree(witness)


def pattern_containment_counterexample(
    first: str, second: str, dtd: DTD, budget: int | None = None
) -> tuple[Tree, Path] | None:
    """A DTD-valid (tree, node) selected by ``first`` but not ``second``."""
    dtd_marked = _marked_dtd_automaton(dtd)
    alphabet = sorted(dtd_marked.states, key=repr)
    first_query = compile_pattern(first, alphabet)
    second_query = compile_pattern(second, alphabet)
    product = (
        dtd_marked.intersection(_one_mark_automaton(dtd_marked.alphabet))
        .trimmed()
        .intersection(first_query.compiled().to_nbta())
        .trimmed()
        .intersection(second_query.compiled().complement().to_nbta())
        .trimmed()
    )
    witness = _budgeted_witness(product, budget)
    if witness is None:
        return None
    return _decode_marked_tree(witness)


def pattern_queries_contained(
    first: str, second: str, dtd: DTD, budget: int | None = None
) -> bool:
    """Is every node ``first`` selects (on DTD-valid trees) selected by ``second``?"""
    return (
        pattern_containment_counterexample(first, second, dtd, budget=budget)
        is None
    )
