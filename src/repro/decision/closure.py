"""The Theorem 6.3 engine: achievable behavior functions of two-way
unranked tree automata, and the EXPTIME decision procedures built on them.

The paper translates an S2DTA^u into a bottom-up NBTA^u whose states are
tuples ``(f, d, s, σ)`` — a behavior function plus the children-state
bookkeeping — and decides emptiness by the Lemma 5.2 fixpoint.  We
implement the same computation without materializing the exponential
automaton: the *closure of achievable elements*.

An element describes an entire subtree by

* its root label ``σ``,
* its **exit-behavior function** ``f̂ : Q → outcome`` where an outcome is
  ``("ret", q')`` (the head comes back up to the subtree root in ``q'``),
  ``("halt",)`` (no transition fires at the root — the run halts *at*
  this node), or ``("dies",)`` (a transition fires but the run halts
  strictly inside — the cut never returns), and
* (for query problems) a **selection capability**: the set of entry
  states that cause a visit of the *marked node* in a selecting state.

Leaves give the base elements; an inner element is induced by a *word* of
children elements.  Scanning such words one-way requires resolving, per
entry state ``q``: the slender down language (a DFA over possible child
states), the settle states via the children's ``f̂``s, the up/stay
classifier, and — for a stay — the GSQA's output, checked by the
:class:`~repro.decision.annotation.AnnotationNFA` (the paper's
Proposition 6.2 step).  The scan state is exponential in ``|Q|``, as
Theorem 6.3's lower bound says it must be; it is explored lazily with a
configurable budget.

Several automata can be closed *jointly* (their scans share the children
words); this gives containment and equivalence by the paper's Theorem 6.4
reduction: a containment counterexample is a marked element on which the
first automaton accepts-and-selects and the second does not.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from ..strings.dfa import DFA
from ..strings.regex import Star, concat_all, literal, to_nfa, union_all
from ..strings.twoway import NonTerminatingRunError
from ..trees.tree import Path, Tree
from ..unranked.twoway import (
    STAY,
    StayLimitError,
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UP,
)
from .annotation import AnnotationNFA

State = Hashable
Label = Hashable

RET = "ret"
HALT = "halt"
DIES = "dies"

#: An exit-behavior function, frozen: tuple of (state, outcome) sorted.
FHat = tuple


class ClosureBudgetExceeded(RuntimeError):
    """The lazily-explored (exponential) scan space exceeded the budget."""


def _freeze_fhat(mapping: dict[State, tuple]) -> FHat:
    return tuple(sorted(mapping.items(), key=repr))


def _fhat_get(fhat: FHat, state: State) -> tuple:
    for key, value in fhat:
        if key == state:
            return value
    return (HALT,)


def orbit(fhat: FHat, state: State) -> list[State]:
    """States assumed at a node entered in ``state`` (the ``ret`` chain)."""
    table = dict(fhat)
    seen = [state]
    current = state
    while True:
        outcome = table.get(current, (HALT,))
        if outcome[0] != RET or outcome[1] == current:
            return seen
        current = outcome[1]
        if current in seen:
            raise NonTerminatingRunError(f"behavior cycles from {state!r}")
        seen.append(current)


def settle(fhat: FHat, state: State) -> State | None:
    """``up(f̂, q)``: the ret-fixed-point reached from ``q``, else ``None``."""
    table = dict(fhat)
    current = state
    seen = {current}
    while True:
        outcome = table.get(current, (HALT,))
        if outcome[0] != RET:
            return None
        if outcome[1] == current:
            return current
        current = outcome[1]
        if current in seen:
            raise NonTerminatingRunError("behavior cycles while settling")
        seen.add(current)


@dataclass
class _AutomatonContext:
    """Precomputed per-automaton data for the scans."""

    automaton: TwoWayUnrankedAutomaton
    selecting: frozenset
    regex_dfas: dict[tuple[State, Label], DFA]
    annotation: AnnotationNFA | None

    @staticmethod
    def build(
        automaton: TwoWayUnrankedAutomaton, selecting: frozenset
    ) -> "_AutomatonContext":
        """Precompute the down-language DFAs and the annotation NFA."""
        regex_dfas: dict[tuple[State, Label], DFA] = {}
        for (state, label), simple in automaton.down.items():
            expr = union_all(
                *(
                    concat_all(
                        literal(branch.prefix),
                        Star(literal(branch.pump)),
                        literal(branch.suffix),
                    )
                    for branch in simple.branches
                )
            )
            nfa = to_nfa(expr, frozenset(automaton.states))
            regex_dfas[(state, label)] = nfa.determinized().minimized()
        annotation = (
            AnnotationNFA(automaton.stay_gsqa)
            if automaton.stay_gsqa is not None
            else None
        )
        return _AutomatonContext(automaton, selecting, regex_dfas, annotation)

    # -- leaf elements ---------------------------------------------------

    def leaf_fhat(self, label: Label) -> FHat:
        """The exit-behavior function of a single leaf with this label."""
        table: dict[State, tuple] = {}
        for state in self.automaton.states:
            pair = (state, label)
            if pair in self.automaton.up_pairs:
                table[state] = (RET, state)
            elif pair in self.automaton.delta_leaf:
                table[state] = (RET, self.automaton.delta_leaf[pair])
            else:
                table[state] = (HALT,)
        return _freeze_fhat(table)

    def self_selcap(self, fhat: FHat, label: Label) -> frozenset[State]:
        """Entries causing a selecting visit *at this node* (self-marked)."""
        capable = set()
        for state in self.automaton.states:
            try:
                states_here = orbit(fhat, state)
            except NonTerminatingRunError:
                continue
            if any((s, label) in self.selecting for s in states_here):
                capable.add(state)
        return frozenset(capable)

    # -- root trajectory ---------------------------------------------------

    def trajectory(self, fhat: FHat, label: Label) -> tuple[set[State], State | None]:
        """Assumed root states and halting state (None = run dies inside)."""
        automaton = self.automaton
        table = dict(fhat)
        assumed: set[State] = set()
        state = automaton.initial
        while True:
            if state in assumed:
                raise NonTerminatingRunError("root trajectory cycles")
            assumed.add(state)
            pair = (state, label)
            if pair in automaton.up_pairs:
                target = automaton.delta_root.get(pair)
                if target is None:
                    return assumed, state
                state = target
                continue
            outcome = table.get(state, (HALT,))
            if outcome[0] == RET:
                if outcome[1] == state:
                    return assumed, state  # up-ready but U handled above
                state = outcome[1]
                continue
            if outcome[0] == HALT:
                return assumed, state
            return assumed, None  # dies inside

    def accepts_element(self, fhat: FHat, label: Label) -> bool:
        """Is the run on a tree with this root element accepting?"""
        try:
            _assumed, halting = self.trajectory(fhat, label)
        except NonTerminatingRunError:
            return False
        return halting is not None and halting in self.automaton.accepting

    def selects_marked(
        self, fhat: FHat, label: Label, selcap: frozenset
    ) -> bool:
        """Accepting run that visits the marked node selectingly?"""
        try:
            assumed, halting = self.trajectory(fhat, label)
        except NonTerminatingRunError:
            return False
        if halting is None or halting not in self.automaton.accepting:
            return False
        return bool(assumed & selcap)


#: A letter of the children word: per-automaton f̂s, the child label, and
#: per-automaton selection capabilities (None for unmarked letters).
Letter = tuple


class JointClosure:
    """Achievable elements for several automata over one tree alphabet.

    ``unmarked`` maps ``(fhats, σ)`` to a witness tree; ``marked`` maps
    ``(fhats, σ, selcaps)`` to ``(witness tree, marked path)``.
    """

    def __init__(
        self,
        query_automata: Sequence[UnrankedQueryAutomaton],
        budget: int = 5_000_000,
    ) -> None:
        self.contexts = [
            _AutomatonContext.build(qa.automaton, qa.selecting)
            for qa in query_automata
        ]
        alphabets = {ctx.automaton.alphabet for ctx in self.contexts}
        if len(alphabets) != 1:
            raise ValueError("joint closure requires a common alphabet")
        self.alphabet = sorted(next(iter(alphabets)), key=repr)
        self.budget = budget
        self._work = 0
        self._component_cache: dict[tuple, tuple] = {}
        self.unmarked: dict[tuple, Tree] = {}
        self.marked: dict[tuple, tuple[Tree, Path]] = {}
        self._run()

    # -- bookkeeping -----------------------------------------------------

    def _spend(self, amount: int = 1) -> None:
        self._work += amount
        if self._work > self.budget:
            raise ClosureBudgetExceeded(
                f"decision-procedure scan exceeded budget {self.budget}"
            )

    # -- the fixpoint ------------------------------------------------------

    def _run(self) -> None:
        for sigma in self.alphabet:
            fhats = tuple(ctx.leaf_fhat(sigma) for ctx in self.contexts)
            self.unmarked.setdefault((fhats, sigma), Tree(sigma))
            selcaps = tuple(
                ctx.self_selcap(fhat, sigma)
                for ctx, fhat in zip(self.contexts, fhats)
            )
            self.marked.setdefault((fhats, sigma, selcaps), (Tree(sigma), ()))

        changed = True
        while changed:
            changed = False
            for sigma in self.alphabet:
                changed |= self._explore_label(sigma)

    def _letters(self) -> list[Letter]:
        letters: list[Letter] = []
        for (fhats, sigma), witness in self.unmarked.items():
            letters.append((fhats, sigma, None, witness, None))
        for (fhats, sigma, selcaps), (witness, path) in self.marked.items():
            letters.append((fhats, sigma, selcaps, witness, path))
        return letters

    def _explore_label(self, sigma: Label) -> bool:
        """BFS over children words for parent label ``sigma``."""
        letters = self._letters()
        initial = self._initial_scan_state(sigma)
        # Scan states: (core, marked_index_or_None); witness word tracked.
        seen: dict[tuple, tuple] = {}
        frontier: list[tuple] = []
        changed = False

        def visit(core, marked, word) -> None:
            key = (core, marked is not None)
            if key in seen:
                return
            seen[key] = (core, marked, word)
            frontier.append((core, marked, word))

        visit(initial, None, ())

        while frontier:
            core, marked, word = frontier.pop()
            if word:
                changed |= self._emit(sigma, core, marked, word)
            for letter in letters:
                fhats, child_sigma, selcaps, _witness, _path = letter
                if selcaps is not None and marked is not None:
                    continue  # at most one marked child
                next_core = self._step_core(
                    sigma, core, fhats, child_sigma, selcaps
                )
                if next_core is None:
                    continue
                next_marked = marked if selcaps is None else len(word)
                visit(next_core, next_marked, word + (letter,))
        return changed

    # -- scan states --------------------------------------------------------

    def _initial_scan_state(self, sigma: Label) -> tuple:
        parts = []
        for ctx in self.contexts:
            automaton = ctx.automaton
            per_q = []
            for q in sorted(automaton.states, key=repr):
                if (q, sigma) not in automaton.down_pairs:
                    per_q.append(None)
                    continue
                regex = ctx.regex_dfas.get((q, sigma))
                if regex is None:
                    per_q.append(None)
                    continue
                classifier_init = ctx.automaton.up_classifier.dfa.initial
                r0 = regex.initial
                p1 = frozenset({(r0, classifier_init, False)})
                if ctx.annotation is not None:
                    p2 = frozenset(
                        (r0, classifier_init, ann, classifier_init, False)
                        for ann in ctx.annotation.initial_states()
                    )
                else:
                    p2 = frozenset()
                per_q.append((frozenset({r0}), p1, p2))
            parts.append(tuple(per_q))
        return tuple(parts)

    def _step_core(
        self,
        sigma: Label,
        core: tuple,
        fhats: tuple,
        child_sigma: Label,
        selcaps: tuple | None,
    ) -> tuple | None:
        next_parts = []
        for k, ctx in enumerate(self.contexts):
            automaton = ctx.automaton
            fhat = fhats[k]
            selcap = selcaps[k] if selcaps is not None else None
            per_q = []
            for index, q in enumerate(sorted(automaton.states, key=repr)):
                component = core[k][index]
                if component is None:
                    per_q.append(None)
                    continue
                regex = ctx.regex_dfas[(q, sigma)]
                per_q.append(
                    self._step_component(
                        ctx, regex, component, fhat, child_sigma, selcap
                    )
                )
            next_parts.append(tuple(per_q))
        return tuple(next_parts)

    def _step_component(
        self,
        ctx: _AutomatonContext,
        regex: DFA,
        component: tuple,
        fhat: FHat,
        child_sigma: Label,
        selcap: frozenset | None,
    ) -> tuple:
        cache_key = (id(ctx), id(regex), component, fhat, child_sigma, selcap)
        cached = self._component_cache.get(cache_key)
        if cached is not None:
            return cached
        r_set, p1, p2 = component
        classifier = ctx.automaton.up_classifier.dfa
        self._spend(1 + len(p1) + len(p2))

        new_r = set()
        for r in r_set:
            for d in ctx.automaton.states:
                target = regex.step(r, d)
                if target is not None:
                    new_r.add(target)

        new_p1 = set()
        for (r, c, bit) in p1:
            for d in ctx.automaton.states:
                r_next = regex.step(r, d)
                if r_next is None:
                    continue
                u = settle(fhat, d)
                if u is None:
                    continue
                c_next = classifier.step(c, (u, child_sigma))
                if c_next is None:
                    continue
                new_bit = bit or (selcap is not None and d in selcap)
                new_p1.add((r_next, c_next, new_bit))

        new_p2 = set()
        if ctx.annotation is not None:
            for (r, c, ann, c2, bit) in p2:
                for d in ctx.automaton.states:
                    r_next = regex.step(r, d)
                    if r_next is None:
                        continue
                    u = settle(fhat, d)
                    if u is None:
                        continue
                    c_next = classifier.step(c, (u, child_sigma))
                    if c_next is None:
                        continue
                    base_bit = bit or (selcap is not None and d in selcap)
                    for s in ctx.automaton.states:
                        ann_targets = ctx.annotation.step(
                            ann, (u, child_sigma), s
                        )
                        if not ann_targets:
                            continue
                        u2 = settle(fhat, s)
                        if u2 is None:
                            continue
                        c2_next = classifier.step(c2, (u2, child_sigma))
                        if c2_next is None:
                            continue
                        stay_bit = base_bit or (
                            selcap is not None and s in selcap
                        )
                        for ann_next in ann_targets:
                            new_p2.add(
                                (r_next, c_next, ann_next, c2_next, stay_bit)
                            )

        result = (frozenset(new_r), frozenset(new_p1), frozenset(new_p2))
        self._component_cache[cache_key] = result
        return result

    # -- end-of-word resolution ---------------------------------------------

    def _resolve_component(
        self, ctx: _AutomatonContext, regex: DFA, component: tuple
    ) -> tuple[tuple, bool]:
        """(outcome, child-selection-bit) for one entry state."""
        r_set, p1, p2 = component
        if not any(r in regex.accepting for r in r_set):
            return (HALT,), False
        survivors = [(r, c, b) for (r, c, b) in p1 if r in regex.accepting]
        if not survivors:
            return (DIES,), False
        outcomes = {
            ctx.automaton.up_classifier.outcome.get(c) for (_r, c, _b) in survivors
        }
        outcomes.discard(None)
        if not outcomes:
            return (DIES,), False
        if len(outcomes) > 1:  # pragma: no cover - determinism guarantee
            raise AssertionError(f"ambiguous classifier outcomes {outcomes!r}")
        outcome = next(iter(outcomes))
        bit = any(b for (_r, _c, b) in survivors)
        if outcome[0] == UP:
            return (RET, outcome[1]), bit
        # Stay: resolve through the annotation-checked stay paths.
        assert outcome[0] == STAY
        stay_survivors = [
            (r, c, ann, c2, b2)
            for (r, c, ann, c2, b2) in p2
            if r in regex.accepting and ctx.annotation.accepting(ann)
        ]
        if not stay_survivors:
            return (DIES,), bit
        outcomes2 = {
            ctx.automaton.up_classifier.outcome.get(c2)
            for (_r, _c, _a, c2, _b) in stay_survivors
        }
        outcomes2.discard(None)
        if not outcomes2:
            return (DIES,), bit
        if len(outcomes2) > 1:  # pragma: no cover - transduction is a function
            raise AssertionError(f"ambiguous stay outcomes {outcomes2!r}")
        outcome2 = next(iter(outcomes2))
        bit2 = bit or any(b for (*_rest, b) in stay_survivors)
        if outcome2[0] == STAY:
            limit = ctx.automaton.stay_limit
            if limit is not None and limit <= 1:
                raise StayLimitError("a second stay transition would fire")
            raise NotImplementedError("closure supports at most one stay per node")
        return (RET, outcome2[1]), bit2

    def _emit(self, sigma: Label, core: tuple, marked, word: tuple) -> bool:
        """Resolve the scanned word into a parent element; record it."""
        fhats = []
        childsels = []
        for k, ctx in enumerate(self.contexts):
            automaton = ctx.automaton
            table: dict[State, tuple] = {}
            childsel: dict[State, bool] = {}
            for index, q in enumerate(sorted(automaton.states, key=repr)):
                pair = (q, sigma)
                if pair in automaton.up_pairs:
                    table[q] = (RET, q)
                    childsel[q] = False
                    continue
                component = core[k][index]
                if component is None:
                    table[q] = (HALT,)
                    childsel[q] = False
                    continue
                regex = ctx.regex_dfas[(q, sigma)]
                outcome, bit = self._resolve_component(ctx, regex, component)
                table[q] = outcome
                childsel[q] = bit
            fhats.append(_freeze_fhat(table))
            childsels.append(childsel)
        fhats = tuple(fhats)

        changed = False
        children = [letter[3] for letter in word]
        witness = Tree(sigma, children)

        if marked is None:
            if (fhats, sigma) not in self.unmarked:
                self.unmarked[(fhats, sigma)] = witness
                changed = True
            # Self-marked element derived from the new unmarked one.
            selcaps = tuple(
                ctx.self_selcap(fhat, sigma)
                for ctx, fhat in zip(self.contexts, fhats)
            )
            if (fhats, sigma, selcaps) not in self.marked:
                self.marked[(fhats, sigma, selcaps)] = (witness, ())
                changed = True
        else:
            # Marked strictly below: capability flows through the orbits.
            selcaps = []
            for k, ctx in enumerate(self.contexts):
                capable = set()
                for q in ctx.automaton.states:
                    try:
                        states_here = orbit(fhats[k], q)
                    except NonTerminatingRunError:
                        continue
                    if any(childsels[k].get(s, False) for s in states_here):
                        capable.add(q)
                selcaps.append(frozenset(capable))
            selcaps = tuple(selcaps)
            marked_letter = word[marked]
            child_path = (marked,) + marked_letter[4]
            if (fhats, sigma, selcaps) not in self.marked:
                self.marked[(fhats, sigma, selcaps)] = (witness, child_path)
                changed = True
        return changed


# ----------------------------------------------------------------------
# Public decision procedures
# ----------------------------------------------------------------------


def language_witness(
    automaton: TwoWayUnrankedAutomaton, budget: int = 5_000_000
) -> Tree | None:
    """Some accepted tree, or ``None`` — 2DTA^u emptiness (Theorem 6.3)."""
    qa = UnrankedQueryAutomaton(automaton, frozenset())
    closure = JointClosure([qa], budget=budget)
    ctx = closure.contexts[0]
    for (fhats, sigma), witness in closure.unmarked.items():
        if ctx.accepts_element(fhats[0], sigma):
            return witness
    return None


def language_is_empty(
    automaton: TwoWayUnrankedAutomaton, budget: int = 5_000_000
) -> bool:
    """Is the accepted tree language empty?"""
    return language_witness(automaton, budget=budget) is None


def query_witness(
    qa: UnrankedQueryAutomaton, budget: int = 5_000_000
) -> tuple[Tree, Path] | None:
    """A tree and node the query selects — non-emptiness (Theorem 6.3)."""
    closure = JointClosure([qa], budget=budget)
    ctx = closure.contexts[0]
    for (fhats, sigma, selcaps), (witness, path) in closure.marked.items():
        if ctx.selects_marked(fhats[0], sigma, selcaps[0]):
            return witness, path
    return None


def query_is_empty(qa: UnrankedQueryAutomaton, budget: int = 5_000_000) -> bool:
    """Is ``A(t) = ∅`` for every tree ``t``?"""
    return query_witness(qa, budget=budget) is None


def containment_counterexample(
    first: UnrankedQueryAutomaton,
    second: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
) -> tuple[Tree, Path] | None:
    """A (tree, node) selected by ``first`` but not ``second`` (Thm 6.4).

    ``None`` means the query of ``first`` is contained in ``second``'s.
    """
    closure = JointClosure([first, second], budget=budget)
    ctx1, ctx2 = closure.contexts
    for (fhats, sigma, selcaps), (witness, path) in closure.marked.items():
        if ctx1.selects_marked(fhats[0], sigma, selcaps[0]) and not (
            ctx2.selects_marked(fhats[1], sigma, selcaps[1])
        ):
            return witness, path
    return None


def is_contained(
    first: UnrankedQueryAutomaton,
    second: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
) -> bool:
    """``first(t) ⊆ second(t)`` for all trees?"""
    return containment_counterexample(first, second, budget=budget) is None


def are_equivalent(
    first: UnrankedQueryAutomaton,
    second: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
) -> bool:
    """Do the two query automata compute the same query? (Theorem 6.4)"""
    return is_contained(first, second, budget=budget) and is_contained(
        second, first, budget=budget
    )
