"""The Theorem 6.3 engine: achievable behavior functions of two-way
unranked tree automata, and the EXPTIME decision procedures built on them.

The paper translates an S2DTA^u into a bottom-up NBTA^u whose states are
tuples ``(f, d, s, σ)`` — a behavior function plus the children-state
bookkeeping — and decides emptiness by the Lemma 5.2 fixpoint.  We
implement the same computation without materializing the exponential
automaton: the *closure of achievable elements*.

An element describes an entire subtree by

* its root label ``σ``,
* its **exit-behavior function** ``f̂ : Q → outcome`` where an outcome is
  ``("ret", q')`` (the head comes back up to the subtree root in ``q'``),
  ``("halt",)`` (no transition fires at the root — the run halts *at*
  this node), or ``("dies",)`` (a transition fires but the run halts
  strictly inside — the cut never returns), and
* (for query problems) a **selection capability**: the set of entry
  states that cause a visit of the *marked node* in a selecting state.

Leaves give the base elements; an inner element is induced by a *word* of
children elements.  Scanning such words one-way requires resolving, per
entry state ``q``: the slender down language (a DFA over possible child
states), the settle states via the children's ``f̂``s, the up/stay
classifier, and — for a stay — the GSQA's output, checked by the
:class:`~repro.decision.annotation.AnnotationNFA` (the paper's
Proposition 6.2 step).  The scan state is exponential in ``|Q|``, as
Theorem 6.3's lower bound says it must be; it is explored lazily with a
configurable budget.

Several automata can be closed *jointly* (their scans share the children
words); this gives containment and equivalence by the paper's Theorem 6.4
reduction: a containment counterexample is a marked element on which the
first automaton accepts-and-selects and the second does not.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from .. import obs
from ..perf.bitset import Interner, iter_bits
from ..strings.dfa import DFA
from ..strings.regex import Star, concat_all, literal, to_nfa, union_all
from ..strings.twoway import NonTerminatingRunError
from ..trees.tree import Path, Tree
from ..unranked.twoway import (
    STAY,
    StayLimitError,
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UP,
)
from .annotation import AnnotationNFA

State = Hashable
Label = Hashable

RET = "ret"
HALT = "halt"
DIES = "dies"

#: An exit-behavior function, frozen: tuple of (state, outcome) sorted.
FHat = tuple


class BudgetExceededError(RuntimeError):
    """The lazily-explored (exponential) scan space exceeded the budget.

    Carries the diagnostic counters of the moment the budget tripped:

    * ``budget`` — the configured limit;
    * ``work`` — scan-work units spent so far;
    * ``closure_size`` — achieved elements (unmarked + marked);
    * ``pending_scans`` — scan states still queued (``None`` for the
      naive engine, which has no explicit worklist);
    * ``counters`` — the engine's full ``obs``-style snapshot at the
      moment of failure (scan states, scan steps, letters, subsumption
      prunes, …), when the raising engine provides one.
    """

    def __init__(
        self,
        budget: int,
        work: int | None = None,
        closure_size: int | None = None,
        pending_scans: int | None = None,
        counters: dict | None = None,
    ) -> None:
        parts = [f"decision-procedure scan exceeded budget {budget}"]
        if work is not None:
            parts.append(f"work={work}")
        if closure_size is not None:
            parts.append(f"closure size={closure_size}")
        if pending_scans is not None:
            parts.append(f"pending scans={pending_scans}")
        if counters:
            parts.append(
                ", ".join(f"{key}={counters[key]}" for key in sorted(counters))
            )
        super().__init__("; ".join(parts))
        self.budget = budget
        self.work = work
        self.closure_size = closure_size
        self.pending_scans = pending_scans
        self.counters = dict(counters) if counters else {}


#: Backwards-compatible name for :class:`BudgetExceededError`.
ClosureBudgetExceeded = BudgetExceededError


def _freeze_fhat(mapping: dict[State, tuple]) -> FHat:
    return tuple(sorted(mapping.items(), key=repr))


def _fhat_get(fhat: FHat, state: State) -> tuple:
    for key, value in fhat:
        if key == state:
            return value
    return (HALT,)


def orbit(fhat: FHat, state: State) -> list[State]:
    """States assumed at a node entered in ``state`` (the ``ret`` chain)."""
    table = dict(fhat)
    seen = [state]
    current = state
    while True:
        outcome = table.get(current, (HALT,))
        if outcome[0] != RET or outcome[1] == current:
            return seen
        current = outcome[1]
        if current in seen:
            raise NonTerminatingRunError(f"behavior cycles from {state!r}")
        seen.append(current)


def settle(fhat: FHat, state: State) -> State | None:
    """``up(f̂, q)``: the ret-fixed-point reached from ``q``, else ``None``."""
    table = dict(fhat)
    current = state
    seen = {current}
    while True:
        outcome = table.get(current, (HALT,))
        if outcome[0] != RET:
            return None
        if outcome[1] == current:
            return current
        current = outcome[1]
        if current in seen:
            raise NonTerminatingRunError("behavior cycles while settling")
        seen.add(current)


@dataclass
class _AutomatonContext:
    """Precomputed per-automaton data for the scans."""

    automaton: TwoWayUnrankedAutomaton
    selecting: frozenset
    regex_dfas: dict[tuple[State, Label], DFA]
    annotation: AnnotationNFA | None

    @staticmethod
    def build(
        automaton: TwoWayUnrankedAutomaton, selecting: frozenset
    ) -> "_AutomatonContext":
        """Precompute the down-language DFAs and the annotation NFA."""
        regex_dfas: dict[tuple[State, Label], DFA] = {}
        for (state, label), simple in automaton.down.items():
            expr = union_all(
                *(
                    concat_all(
                        literal(branch.prefix),
                        Star(literal(branch.pump)),
                        literal(branch.suffix),
                    )
                    for branch in simple.branches
                )
            )
            nfa = to_nfa(expr, frozenset(automaton.states))
            regex_dfas[(state, label)] = nfa.determinized().minimized()
        annotation = (
            AnnotationNFA(automaton.stay_gsqa)
            if automaton.stay_gsqa is not None
            else None
        )
        return _AutomatonContext(automaton, selecting, regex_dfas, annotation)

    # -- leaf elements ---------------------------------------------------

    def leaf_fhat(self, label: Label) -> FHat:
        """The exit-behavior function of a single leaf with this label."""
        table: dict[State, tuple] = {}
        for state in self.automaton.states:
            pair = (state, label)
            if pair in self.automaton.up_pairs:
                table[state] = (RET, state)
            elif pair in self.automaton.delta_leaf:
                table[state] = (RET, self.automaton.delta_leaf[pair])
            else:
                table[state] = (HALT,)
        return _freeze_fhat(table)

    def self_selcap(self, fhat: FHat, label: Label) -> frozenset[State]:
        """Entries causing a selecting visit *at this node* (self-marked)."""
        capable = set()
        for state in self.automaton.states:
            try:
                states_here = orbit(fhat, state)
            except NonTerminatingRunError:
                continue
            if any((s, label) in self.selecting for s in states_here):
                capable.add(state)
        return frozenset(capable)

    # -- root trajectory ---------------------------------------------------

    def trajectory(self, fhat: FHat, label: Label) -> tuple[set[State], State | None]:
        """Assumed root states and halting state (None = run dies inside)."""
        automaton = self.automaton
        table = dict(fhat)
        assumed: set[State] = set()
        state = automaton.initial
        while True:
            if state in assumed:
                raise NonTerminatingRunError("root trajectory cycles")
            assumed.add(state)
            pair = (state, label)
            if pair in automaton.up_pairs:
                target = automaton.delta_root.get(pair)
                if target is None:
                    return assumed, state
                state = target
                continue
            outcome = table.get(state, (HALT,))
            if outcome[0] == RET:
                if outcome[1] == state:
                    return assumed, state  # up-ready but U handled above
                state = outcome[1]
                continue
            if outcome[0] == HALT:
                return assumed, state
            return assumed, None  # dies inside

    def accepts_element(self, fhat: FHat, label: Label) -> bool:
        """Is the run on a tree with this root element accepting?"""
        try:
            _assumed, halting = self.trajectory(fhat, label)
        except NonTerminatingRunError:
            return False
        return halting is not None and halting in self.automaton.accepting

    def selects_marked(
        self, fhat: FHat, label: Label, selcap: frozenset
    ) -> bool:
        """Accepting run that visits the marked node selectingly?"""
        try:
            assumed, halting = self.trajectory(fhat, label)
        except NonTerminatingRunError:
            return False
        if halting is None or halting not in self.automaton.accepting:
            return False
        return bool(assumed & selcap)


#: A letter of the children word: per-automaton f̂s, the child label, and
#: per-automaton selection capabilities (None for unmarked letters).
Letter = tuple


class JointClosure:
    """Achievable elements for several automata over one tree alphabet.

    ``unmarked`` maps ``(fhats, σ)`` to a witness tree; ``marked`` maps
    ``(fhats, σ, selcaps)`` to ``(witness tree, marked path)``.
    """

    def __init__(
        self,
        query_automata: Sequence[UnrankedQueryAutomaton],
        budget: int = 5_000_000,
    ) -> None:
        self.contexts = [
            _AutomatonContext.build(qa.automaton, qa.selecting)
            for qa in query_automata
        ]
        alphabets = {ctx.automaton.alphabet for ctx in self.contexts}
        if len(alphabets) != 1:
            raise ValueError("joint closure requires a common alphabet")
        self.alphabet = sorted(next(iter(alphabets)), key=repr)
        self.budget = budget
        self._work = 0
        self._n_scans = 0
        self._component_cache: dict[tuple, tuple] = {}
        self.unmarked: dict[tuple, Tree] = {}
        self.marked: dict[tuple, tuple[Tree, Path]] = {}
        try:
            self._run()
        finally:
            self._flush_stats()

    # -- bookkeeping -----------------------------------------------------

    def _spend(self, amount: int = 1) -> None:
        self._work += amount
        if self._work > self.budget:
            raise BudgetExceededError(
                self.budget,
                work=self._work,
                closure_size=len(self.unmarked) + len(self.marked),
                counters=self.stats_snapshot(),
            )

    def stats_snapshot(self) -> dict:
        """The engine's progress counters, ``obs``-glossary names."""
        return {
            "closure.scans": self._n_scans,
            "closure.elements_unmarked": len(self.unmarked),
            "closure.elements_marked": len(self.marked),
            "closure.work": self._work,
        }

    def _flush_stats(self) -> None:
        sink = obs.SINK
        if not sink.enabled:
            return
        sink.incr("closure.runs")
        for name, value in self.stats_snapshot().items():
            sink.incr(name, value)

    # -- the fixpoint ------------------------------------------------------

    def _run(self) -> None:
        for sigma in self.alphabet:
            fhats = tuple(ctx.leaf_fhat(sigma) for ctx in self.contexts)
            self.unmarked.setdefault((fhats, sigma), Tree(sigma))
            selcaps = tuple(
                ctx.self_selcap(fhat, sigma)
                for ctx, fhat in zip(self.contexts, fhats)
            )
            self.marked.setdefault((fhats, sigma, selcaps), (Tree(sigma), ()))

        changed = True
        while changed:
            changed = False
            for sigma in self.alphabet:
                changed |= self._explore_label(sigma)

    def _letters(self) -> list[Letter]:
        letters: list[Letter] = []
        for (fhats, sigma), witness in self.unmarked.items():
            letters.append((fhats, sigma, None, witness, None))
        for (fhats, sigma, selcaps), (witness, path) in self.marked.items():
            letters.append((fhats, sigma, selcaps, witness, path))
        return letters

    def _explore_label(self, sigma: Label) -> bool:
        """BFS over children words for parent label ``sigma``."""
        letters = self._letters()
        initial = self._initial_scan_state(sigma)
        # Scan states: (core, marked_index_or_None); witness word tracked.
        seen: dict[tuple, tuple] = {}
        frontier: list[tuple] = []
        changed = False

        def visit(core, marked, word) -> None:
            key = (core, marked is not None)
            if key in seen:
                return
            self._n_scans += 1
            seen[key] = (core, marked, word)
            frontier.append((core, marked, word))

        visit(initial, None, ())

        while frontier:
            core, marked, word = frontier.pop()
            if word:
                changed |= self._emit(sigma, core, marked, word)
            for letter in letters:
                fhats, child_sigma, selcaps, _witness, _path = letter
                if selcaps is not None and marked is not None:
                    continue  # at most one marked child
                next_core = self._step_core(
                    sigma, core, fhats, child_sigma, selcaps
                )
                if next_core is None:
                    continue
                next_marked = marked if selcaps is None else len(word)
                visit(next_core, next_marked, word + (letter,))
        return changed

    # -- scan states --------------------------------------------------------

    def _initial_scan_state(self, sigma: Label) -> tuple:
        parts = []
        for ctx in self.contexts:
            automaton = ctx.automaton
            per_q = []
            for q in sorted(automaton.states, key=repr):
                if (q, sigma) not in automaton.down_pairs:
                    per_q.append(None)
                    continue
                regex = ctx.regex_dfas.get((q, sigma))
                if regex is None:
                    per_q.append(None)
                    continue
                classifier_init = ctx.automaton.up_classifier.dfa.initial
                r0 = regex.initial
                p1 = frozenset({(r0, classifier_init, False)})
                if ctx.annotation is not None:
                    p2 = frozenset(
                        (r0, classifier_init, ann, classifier_init, False)
                        for ann in ctx.annotation.initial_states()
                    )
                else:
                    p2 = frozenset()
                per_q.append((frozenset({r0}), p1, p2))
            parts.append(tuple(per_q))
        return tuple(parts)

    def _step_core(
        self,
        sigma: Label,
        core: tuple,
        fhats: tuple,
        child_sigma: Label,
        selcaps: tuple | None,
    ) -> tuple | None:
        next_parts = []
        for k, ctx in enumerate(self.contexts):
            automaton = ctx.automaton
            fhat = fhats[k]
            selcap = selcaps[k] if selcaps is not None else None
            per_q = []
            for index, q in enumerate(sorted(automaton.states, key=repr)):
                component = core[k][index]
                if component is None:
                    per_q.append(None)
                    continue
                regex = ctx.regex_dfas[(q, sigma)]
                per_q.append(
                    self._step_component(
                        ctx, regex, component, fhat, child_sigma, selcap
                    )
                )
            next_parts.append(tuple(per_q))
        return tuple(next_parts)

    def _step_component(
        self,
        ctx: _AutomatonContext,
        regex: DFA,
        component: tuple,
        fhat: FHat,
        child_sigma: Label,
        selcap: frozenset | None,
    ) -> tuple:
        cache_key = (id(ctx), id(regex), component, fhat, child_sigma, selcap)
        cached = self._component_cache.get(cache_key)
        if cached is not None:
            return cached
        r_set, p1, p2 = component
        classifier = ctx.automaton.up_classifier.dfa
        self._spend(1 + len(p1) + len(p2))

        new_r = set()
        for r in r_set:
            for d in ctx.automaton.states:
                target = regex.step(r, d)
                if target is not None:
                    new_r.add(target)

        new_p1 = set()
        for (r, c, bit) in p1:
            for d in ctx.automaton.states:
                r_next = regex.step(r, d)
                if r_next is None:
                    continue
                u = settle(fhat, d)
                if u is None:
                    continue
                c_next = classifier.step(c, (u, child_sigma))
                if c_next is None:
                    continue
                new_bit = bit or (selcap is not None and d in selcap)
                new_p1.add((r_next, c_next, new_bit))

        new_p2 = set()
        if ctx.annotation is not None:
            for (r, c, ann, c2, bit) in p2:
                for d in ctx.automaton.states:
                    r_next = regex.step(r, d)
                    if r_next is None:
                        continue
                    u = settle(fhat, d)
                    if u is None:
                        continue
                    c_next = classifier.step(c, (u, child_sigma))
                    if c_next is None:
                        continue
                    base_bit = bit or (selcap is not None and d in selcap)
                    for s in ctx.automaton.states:
                        ann_targets = ctx.annotation.step(
                            ann, (u, child_sigma), s
                        )
                        if not ann_targets:
                            continue
                        u2 = settle(fhat, s)
                        if u2 is None:
                            continue
                        c2_next = classifier.step(c2, (u2, child_sigma))
                        if c2_next is None:
                            continue
                        stay_bit = base_bit or (
                            selcap is not None and s in selcap
                        )
                        for ann_next in ann_targets:
                            new_p2.add(
                                (r_next, c_next, ann_next, c2_next, stay_bit)
                            )

        result = (frozenset(new_r), frozenset(new_p1), frozenset(new_p2))
        self._component_cache[cache_key] = result
        return result

    # -- end-of-word resolution ---------------------------------------------

    def _resolve_component(
        self, ctx: _AutomatonContext, regex: DFA, component: tuple
    ) -> tuple[tuple, bool]:
        """(outcome, child-selection-bit) for one entry state."""
        r_set, p1, p2 = component
        if not any(r in regex.accepting for r in r_set):
            return (HALT,), False
        survivors = [(r, c, b) for (r, c, b) in p1 if r in regex.accepting]
        if not survivors:
            return (DIES,), False
        outcomes = {
            ctx.automaton.up_classifier.outcome.get(c) for (_r, c, _b) in survivors
        }
        outcomes.discard(None)
        if not outcomes:
            return (DIES,), False
        if len(outcomes) > 1:  # pragma: no cover - determinism guarantee
            raise AssertionError(f"ambiguous classifier outcomes {outcomes!r}")
        outcome = next(iter(outcomes))
        bit = any(b for (_r, _c, b) in survivors)
        if outcome[0] == UP:
            return (RET, outcome[1]), bit
        # Stay: resolve through the annotation-checked stay paths.
        assert outcome[0] == STAY
        stay_survivors = [
            (r, c, ann, c2, b2)
            for (r, c, ann, c2, b2) in p2
            if r in regex.accepting and ctx.annotation.accepting(ann)
        ]
        if not stay_survivors:
            return (DIES,), bit
        outcomes2 = {
            ctx.automaton.up_classifier.outcome.get(c2)
            for (_r, _c, _a, c2, _b) in stay_survivors
        }
        outcomes2.discard(None)
        if not outcomes2:
            return (DIES,), bit
        if len(outcomes2) > 1:  # pragma: no cover - transduction is a function
            raise AssertionError(f"ambiguous stay outcomes {outcomes2!r}")
        outcome2 = next(iter(outcomes2))
        bit2 = bit or any(b for (*_rest, b) in stay_survivors)
        if outcome2[0] == STAY:
            limit = ctx.automaton.stay_limit
            if limit is not None and limit <= 1:
                raise StayLimitError("a second stay transition would fire")
            raise NotImplementedError("closure supports at most one stay per node")
        return (RET, outcome2[1]), bit2

    def _emit(self, sigma: Label, core: tuple, marked, word: tuple) -> bool:
        """Resolve the scanned word into a parent element; record it."""
        fhats = []
        childsels = []
        for k, ctx in enumerate(self.contexts):
            automaton = ctx.automaton
            table: dict[State, tuple] = {}
            childsel: dict[State, bool] = {}
            for index, q in enumerate(sorted(automaton.states, key=repr)):
                pair = (q, sigma)
                if pair in automaton.up_pairs:
                    table[q] = (RET, q)
                    childsel[q] = False
                    continue
                component = core[k][index]
                if component is None:
                    table[q] = (HALT,)
                    childsel[q] = False
                    continue
                regex = ctx.regex_dfas[(q, sigma)]
                outcome, bit = self._resolve_component(ctx, regex, component)
                table[q] = outcome
                childsel[q] = bit
            fhats.append(_freeze_fhat(table))
            childsels.append(childsel)
        fhats = tuple(fhats)

        changed = False
        children = [letter[3] for letter in word]
        witness = Tree(sigma, children)

        if marked is None:
            if (fhats, sigma) not in self.unmarked:
                self.unmarked[(fhats, sigma)] = witness
                changed = True
            # Self-marked element derived from the new unmarked one.
            selcaps = tuple(
                ctx.self_selcap(fhat, sigma)
                for ctx, fhat in zip(self.contexts, fhats)
            )
            if (fhats, sigma, selcaps) not in self.marked:
                self.marked[(fhats, sigma, selcaps)] = (witness, ())
                changed = True
        else:
            # Marked strictly below: capability flows through the orbits.
            selcaps = []
            for k, ctx in enumerate(self.contexts):
                capable = set()
                for q in ctx.automaton.states:
                    try:
                        states_here = orbit(fhats[k], q)
                    except NonTerminatingRunError:
                        continue
                    if any(childsels[k].get(s, False) for s in states_here):
                        capable.add(q)
                selcaps.append(frozenset(capable))
            selcaps = tuple(selcaps)
            marked_letter = word[marked]
            child_path = (marked,) + marked_letter[4]
            if (fhats, sigma, selcaps) not in self.marked:
                self.marked[(fhats, sigma, selcaps)] = (witness, child_path)
                changed = True
        return changed


# ----------------------------------------------------------------------
# The packed worklist engine
# ----------------------------------------------------------------------
#
# Computes the same closure as :class:`JointClosure`, but on the bitset
# kernel and incrementally:
#
# * regex-DFA, classifier-DFA, automaton and annotation states are
#   interned to dense ids; a scan component becomes
#   ``(r_mask, p1_mask, p2_frozenset-of-ints)`` where a p1 triple
#   ``(r, c, bit)`` is the single index ``bit·|R|·|C| + r·|C| + c`` and a
#   p2 quintuple packs analogously (annotation ids in the high digits);
# * stepping is memoized *per packed element*, so child words shared
#   between scan states — and between the automata of a joint closure —
#   are resolved once;
# * the fixpoint is a worklist: every scan state keeps a cursor into the
#   global letter list, and each (scan state, letter) pair is applied
#   exactly once, instead of restarting a whole-closure BFS per round;
# * marked elements are subsumption-pruned: with polarity ``+1``
#   (``-1``) for an automaton, a new element whose selection capability
#   is ⊆ (⊇) an existing element's — at identical ``f̂``s and label — is
#   dropped.  Capabilities only feed monotone selection *bits* (they
#   never gate a transition), so every descendant of a dropped element
#   is dominated by a descendant of its dominator, and the Theorem
#   6.3/6.4 goal predicates are monotone in the same order.


class _PackedContext:
    """Interned/bitset view of one :class:`_AutomatonContext`."""

    def __init__(self, ctx: _AutomatonContext) -> None:
        self.ctx = ctx
        automaton = ctx.automaton
        self.state_ids = Interner(sorted(automaton.states, key=repr))
        self.sorted_states = self.state_ids.values()
        self.n_states = len(self.state_ids)
        classifier = automaton.up_classifier.dfa
        self.cls_ids = Interner(sorted(classifier.states, key=repr))
        self.ncls = len(self.cls_ids)
        self.cls_outcome = [
            automaton.up_classifier.outcome.get(c) for c in self.cls_ids.values()
        ]
        self.cls_initial = self.cls_ids.id_of(classifier.initial)
        self.ann_ids: Interner | None = (
            Interner() if ctx.annotation is not None else None
        )
        self._cls_rows: dict[tuple, list[int]] = {}
        self._settle_rows: dict[int, list[int]] = {}
        self._ann_accept: dict[int, bool] = {}
        self.fhat_ids = Interner()
        self._machines: dict[Label, list] = {}

    def machines(self, sigma: Label) -> list:
        """Per sorted entry state: a :class:`_PackedMachine` or ``None``."""
        machines = self._machines.get(sigma)
        if machines is None:
            machines = []
            for q in self.sorted_states:
                regex = (
                    self.ctx.regex_dfas.get((q, sigma))
                    if (q, sigma) in self.ctx.automaton.down_pairs
                    else None
                )
                machines.append(
                    None if regex is None else _PackedMachine(self, regex)
                )
            self._machines[sigma] = machines
        return machines

    def cls_row(self, u_id: int, child_sigma: Label) -> list[int]:
        """Classifier transition row on ``(u, child_sigma)`` (id -> id/-1)."""
        key = (u_id, child_sigma)
        row = self._cls_rows.get(key)
        if row is None:
            classifier = self.ctx.automaton.up_classifier.dfa
            symbol = (self.state_ids.value(u_id), child_sigma)
            row = []
            for c in self.cls_ids.values():
                target = classifier.step(c, symbol)
                row.append(-1 if target is None else self.cls_ids.id_of(target))
            self._cls_rows[key] = row
        return row

    #: settle-row sentinels: -1 = no settle (run dies), -2 = cycles.
    def settle_row(self, fhat_id: int) -> list[int]:
        row = self._settle_rows.get(fhat_id)
        if row is None:
            fhat = self.fhat_ids.value(fhat_id)
            row = []
            for d in self.sorted_states:
                try:
                    u = settle(fhat, d)
                except NonTerminatingRunError:
                    row.append(-2)
                    continue
                row.append(-1 if u is None else self.state_ids.id_of(u))
            self._settle_rows[fhat_id] = row
        return row

    def ann_accepting(self, ann_id: int) -> bool:
        cached = self._ann_accept.get(ann_id)
        if cached is None:
            cached = self.ctx.annotation.accepting(self.ann_ids.value(ann_id))
            self._ann_accept[ann_id] = cached
        return cached


class _PackedMachine:
    """One entry state's scan machine: a regex DFA packed to ids."""

    __slots__ = (
        "pctx",
        "regex",
        "r_ids",
        "nR",
        "pairspace",
        "rstep",
        "any_row",
        "accepting_r_mask",
        "initial_r",
        "_comp_cache",
        "_p1_rows",
        "_p2_cache",
    )

    def __init__(self, pctx: _PackedContext, regex: DFA) -> None:
        self.pctx = pctx
        self.regex = regex
        self.r_ids = Interner(sorted(regex.states, key=repr))
        self.nR = len(self.r_ids)
        self.pairspace = self.nR * pctx.ncls
        self.rstep = []
        for d in pctx.sorted_states:
            row = []
            for r in self.r_ids.values():
                target = regex.step(r, d)
                row.append(-1 if target is None else self.r_ids.id_of(target))
            self.rstep.append(row)
        # r-set evolution is letter-independent (every child state is tried).
        self.any_row = [0] * self.nR
        for row in self.rstep:
            for r_id, target in enumerate(row):
                if target >= 0:
                    self.any_row[r_id] |= 1 << target
        self.accepting_r_mask = self.r_ids.mask_of(regex.accepting)
        self.initial_r = self.r_ids.id_of(regex.initial)
        self._comp_cache: dict[tuple, tuple] = {}
        self._p1_rows: dict[tuple, list] = {}
        self._p2_cache: dict[tuple, frozenset] = {}

    # -- packing helpers ---------------------------------------------------

    def initial_component(self) -> tuple:
        pctx = self.pctx
        c0 = pctx.cls_initial
        p1 = 1 << (self.initial_r * pctx.ncls + c0)
        if pctx.ctx.annotation is not None:
            p2 = frozenset(
                self._encode_p2(
                    pctx.ann_ids.intern(ann), self.initial_r, c0, c0, 0
                )
                for ann in pctx.ctx.annotation.initial_states()
            )
        else:
            p2 = frozenset()
        return (1 << self.initial_r, p1, p2)

    def _encode_p2(self, ann_id: int, r: int, c: int, c2: int, bit: int) -> int:
        ncls = self.pctx.ncls
        return (((ann_id * self.nR + r) * ncls + c) * ncls + c2) * 2 + bit

    def _decode_p2(self, idx: int) -> tuple[int, int, int, int, int]:
        ncls = self.pctx.ncls
        bit = idx & 1
        rest = idx >> 1
        rest, c2 = divmod(rest, ncls)
        rest, c = divmod(rest, ncls)
        ann_id, r = divmod(rest, self.nR)
        return ann_id, r, c, c2, bit

    # -- stepping ----------------------------------------------------------

    def step_component(
        self, comp: tuple, fhat_id: int, child_sigma: Label, selcap_mask: int, spend
    ) -> tuple:
        key = (comp, fhat_id, child_sigma, selcap_mask)
        cached = self._comp_cache.get(key)
        if cached is not None:
            return cached
        r_mask, p1_mask, p2 = comp
        new_r = 0
        for r_id in iter_bits(r_mask):
            new_r |= self.any_row[r_id]
        # p1 steps are memoized in a dense row per letter: one dict probe
        # per component step, list-indexed per set bit.
        letter_key = (fhat_id, child_sigma, selcap_mask)
        row = self._p1_rows.get(letter_key)
        if row is None:
            row = [None] * (2 * self.pairspace)
            self._p1_rows[letter_key] = row
        new_p1 = 0
        for idx in iter_bits(p1_mask):
            stepped = row[idx]
            if stepped is None:
                stepped = self._step_p1(
                    idx, fhat_id, child_sigma, selcap_mask, spend
                )
                row[idx] = stepped
            new_p1 |= stepped
        new_p2: set[int] = set()
        for idx in p2:
            new_p2.update(
                self._step_p2(idx, fhat_id, child_sigma, selcap_mask, spend)
            )
        result = (new_r, new_p1, frozenset(new_p2))
        self._comp_cache[key] = result
        return result

    def _step_p1(
        self, idx: int, fhat_id: int, child_sigma: Label, selcap_mask: int, spend
    ) -> int:
        spend(1)
        pctx = self.pctx
        bit, rem = divmod(idx, self.pairspace)
        r, c = divmod(rem, pctx.ncls)
        settle_row = pctx.settle_row(fhat_id)
        out = 0
        for d_id in range(pctx.n_states):
            r_next = self.rstep[d_id][r]
            if r_next < 0:
                continue
            u = settle_row[d_id]
            if u == -1:
                continue
            if u == -2:
                raise NonTerminatingRunError("behavior cycles while settling")
            c_next = pctx.cls_row(u, child_sigma)[c]
            if c_next < 0:
                continue
            new_bit = 1 if (bit or (selcap_mask >> d_id) & 1) else 0
            out |= 1 << (new_bit * self.pairspace + r_next * pctx.ncls + c_next)
        return out

    def _step_p2(
        self, idx: int, fhat_id: int, child_sigma: Label, selcap_mask: int, spend
    ) -> frozenset:
        key = (idx, fhat_id, child_sigma, selcap_mask)
        cached = self._p2_cache.get(key)
        if cached is not None:
            return cached
        spend(1)
        pctx = self.pctx
        annotation = pctx.ctx.annotation
        ann_id, r, c, c2, bit = self._decode_p2(idx)
        ann = pctx.ann_ids.value(ann_id)
        settle_row = pctx.settle_row(fhat_id)
        out: set[int] = set()
        for d_id in range(pctx.n_states):
            r_next = self.rstep[d_id][r]
            if r_next < 0:
                continue
            u = settle_row[d_id]
            if u == -1:
                continue
            if u == -2:
                raise NonTerminatingRunError("behavior cycles while settling")
            c_next = pctx.cls_row(u, child_sigma)[c]
            if c_next < 0:
                continue
            base_bit = 1 if (bit or (selcap_mask >> d_id) & 1) else 0
            symbol = (pctx.state_ids.value(u), child_sigma)
            for s_id in range(pctx.n_states):
                s = pctx.sorted_states[s_id]
                ann_targets = annotation.step(ann, symbol, s)
                if not ann_targets:
                    continue
                u2 = settle_row[s_id]
                if u2 == -1:
                    continue
                if u2 == -2:
                    raise NonTerminatingRunError("behavior cycles while settling")
                c2_next = pctx.cls_row(u2, child_sigma)[c2]
                if c2_next < 0:
                    continue
                stay_bit = base_bit or (selcap_mask >> s_id) & 1
                for ann_next in ann_targets:
                    out.add(
                        self._encode_p2(
                            pctx.ann_ids.intern(ann_next),
                            r_next,
                            c_next,
                            c2_next,
                            1 if stay_bit else 0,
                        )
                    )
        result = frozenset(out)
        self._p2_cache[key] = result
        return result

    # -- end-of-word resolution --------------------------------------------

    def resolve(self, comp: tuple) -> tuple[tuple, bool]:
        """(outcome, child-selection bit) — packed ``_resolve_component``."""
        pctx = self.pctx
        r_mask, p1_mask, p2 = comp
        if not r_mask & self.accepting_r_mask:
            return (HALT,), False
        survivors = []
        for idx in iter_bits(p1_mask):
            bit, rem = divmod(idx, self.pairspace)
            r, c = divmod(rem, pctx.ncls)
            if (self.accepting_r_mask >> r) & 1:
                survivors.append((c, bit))
        if not survivors:
            return (DIES,), False
        outcomes = {pctx.cls_outcome[c] for (c, _bit) in survivors}
        outcomes.discard(None)
        if not outcomes:
            return (DIES,), False
        if len(outcomes) > 1:  # pragma: no cover - determinism guarantee
            raise AssertionError(f"ambiguous classifier outcomes {outcomes!r}")
        outcome = next(iter(outcomes))
        bit = any(b for (_c, b) in survivors)
        if outcome[0] == UP:
            return (RET, outcome[1]), bit
        assert outcome[0] == STAY
        stay_survivors = []
        for idx in p2:
            ann_id, r, _c, c2, b2 = self._decode_p2(idx)
            if (self.accepting_r_mask >> r) & 1 and pctx.ann_accepting(ann_id):
                stay_survivors.append((c2, b2))
        if not stay_survivors:
            return (DIES,), bit
        outcomes2 = {pctx.cls_outcome[c2] for (c2, _b) in stay_survivors}
        outcomes2.discard(None)
        if not outcomes2:
            return (DIES,), bit
        if len(outcomes2) > 1:  # pragma: no cover - transduction is a function
            raise AssertionError(f"ambiguous stay outcomes {outcomes2!r}")
        outcome2 = next(iter(outcomes2))
        bit2 = bit or any(b for (_c2, b) in stay_survivors)
        if outcome2[0] == STAY:
            limit = pctx.ctx.automaton.stay_limit
            if limit is not None and limit <= 1:
                raise StayLimitError("a second stay transition would fire")
            raise NotImplementedError("closure supports at most one stay per node")
        return (RET, outcome2[1]), bit2


class _Letter:
    """One letter of the children word, with packed per-automaton parts."""

    __slots__ = ("fhats", "label", "selcaps", "fhat_ids", "selcap_masks",
                 "witness", "path")

    def __init__(self, fhats, label, selcaps, fhat_ids, selcap_masks,
                 witness, path) -> None:
        self.fhats = fhats
        self.label = label
        self.selcaps = selcaps
        self.fhat_ids = fhat_ids
        self.selcap_masks = selcap_masks
        self.witness = witness
        self.path = path


class _ScanRec:
    """A live scan state: packed core + the word that first reached it."""

    __slots__ = ("sigma", "core", "marked_pos", "word", "cursor")

    def __init__(self, sigma, core, marked_pos, word) -> None:
        self.sigma = sigma
        self.core = core
        self.marked_pos = marked_pos
        self.word = word
        self.cursor = 0


class PackedJointClosure:
    """Bitset worklist engine computing the Theorem 6.3/6.4 closure.

    Drop-in replacement for :class:`JointClosure` (same ``unmarked`` /
    ``marked`` result maps), with three extra knobs:

    * ``polarities`` — per-automaton ``+1``/``-1`` governing the
      subsumption order on marked elements (``+1``: larger selection
      capabilities dominate; ``-1``: smaller).  Use ``(+1, -1)`` for
      containment of the first query in the second; the default is all
      ``+1`` (non-emptiness goals).
    * ``track_marked`` — ``False`` skips marked elements entirely
      (language emptiness only inspects unmarked elements).
    * The budget raises :class:`BudgetExceededError` carrying work,
      closure-size, and pending-scan counters.
    """

    def __init__(
        self,
        query_automata: Sequence[UnrankedQueryAutomaton],
        budget: int = 5_000_000,
        polarities: Sequence[int] | None = None,
        track_marked: bool = True,
    ) -> None:
        self.contexts = [
            _AutomatonContext.build(qa.automaton, qa.selecting)
            for qa in query_automata
        ]
        alphabets = {ctx.automaton.alphabet for ctx in self.contexts}
        if len(alphabets) != 1:
            raise ValueError("joint closure requires a common alphabet")
        self.alphabet = sorted(next(iter(alphabets)), key=repr)
        self.budget = budget
        self.track_marked = track_marked
        if polarities is None:
            self.polarities = tuple(1 for _ in self.contexts)
        else:
            self.polarities = tuple(polarities)
        self._work = 0
        self._n_applied = 0
        self._n_prunes = 0
        self.packed = [_PackedContext(ctx) for ctx in self.contexts]
        self.unmarked: dict[tuple, Tree] = {}
        self.marked: dict[tuple, tuple[Tree, Path]] = {}
        self._letter_list: list[_Letter] = []
        self._marked_groups: dict[tuple, list[tuple]] = {}
        self._records: dict[tuple, _ScanRec] = {}
        self._queue: deque[_ScanRec] = deque()
        try:
            self._run()
        finally:
            self._flush_stats()

    # -- bookkeeping -------------------------------------------------------

    def _spend(self, amount: int = 1) -> None:
        self._work += amount
        if self._work > self.budget:
            raise BudgetExceededError(
                self.budget,
                work=self._work,
                closure_size=len(self.unmarked) + len(self.marked),
                pending_scans=len(self._queue),
                counters=self.stats_snapshot(),
            )

    def stats_snapshot(self) -> dict:
        """The engine's progress counters, ``obs``-glossary names."""
        return {
            "closure.scans": len(self._records),
            "closure.scan_steps": self._n_applied,
            "closure.letters": len(self._letter_list),
            "closure.prunes": self._n_prunes,
            "closure.elements_unmarked": len(self.unmarked),
            "closure.elements_marked": len(self.marked),
            "closure.work": self._work,
        }

    def _flush_stats(self) -> None:
        sink = obs.SINK
        if not sink.enabled:
            return
        sink.incr("closure.runs")
        for name, value in self.stats_snapshot().items():
            sink.incr(name, value)

    # -- element recording -------------------------------------------------

    def _add_letter(self, fhats, label, selcaps, witness, path) -> None:
        fhat_ids = tuple(
            pctx.fhat_ids.intern(fhat)
            for pctx, fhat in zip(self.packed, fhats)
        )
        if selcaps is None:
            selcap_masks = tuple(0 for _ in self.packed)
        else:
            selcap_masks = tuple(
                pctx.state_ids.mask_of(selcap)
                for pctx, selcap in zip(self.packed, selcaps)
            )
        self._letter_list.append(
            _Letter(fhats, label, selcaps, fhat_ids, selcap_masks, witness, path)
        )

    def _dominates(self, dominator: tuple, caps: tuple) -> bool:
        for polarity, strong, weak in zip(self.polarities, dominator, caps):
            if polarity > 0:
                if not weak <= strong:
                    return False
            else:
                if not strong <= weak:
                    return False
        return True

    def _add_marked(self, fhats, sigma, selcaps, witness, path) -> None:
        key = (fhats, sigma, selcaps)
        if key in self.marked:
            return
        group = self._marked_groups.setdefault((fhats, sigma), [])
        if any(self._dominates(existing, selcaps) for existing in group):
            self._n_prunes += 1
            return  # subsumed — a dominating element already spawned scans
        group.append(selcaps)
        self.marked[key] = (witness, path)
        self._add_letter(fhats, sigma, selcaps, witness, path)

    def _add_unmarked(self, fhats, sigma, witness) -> None:
        if (fhats, sigma) in self.unmarked:
            return
        self.unmarked[(fhats, sigma)] = witness
        self._add_letter(fhats, sigma, None, witness, None)
        if self.track_marked:
            selcaps = tuple(
                ctx.self_selcap(fhat, sigma)
                for ctx, fhat in zip(self.contexts, fhats)
            )
            self._add_marked(fhats, sigma, selcaps, witness, ())

    # -- the worklist fixpoint ---------------------------------------------

    def _run(self) -> None:
        for sigma in self.alphabet:
            fhats = tuple(ctx.leaf_fhat(sigma) for ctx in self.contexts)
            self._add_unmarked(fhats, sigma, Tree(sigma))
        for sigma in self.alphabet:
            self._visit(sigma, self._initial_core(sigma), None, ())
        while True:
            queue = self._queue
            while queue:
                rec = queue.popleft()
                end = len(self._letter_list)
                for letter_index in range(rec.cursor, end):
                    self._apply(rec, letter_index)
                rec.cursor = end
            stale = [
                rec
                for rec in self._records.values()
                if rec.cursor < len(self._letter_list)
            ]
            if not stale:
                return
            queue.extend(stale)

    def _initial_core(self, sigma: Label) -> tuple:
        parts = []
        for pctx in self.packed:
            parts.append(
                tuple(
                    None if machine is None else machine.initial_component()
                    for machine in pctx.machines(sigma)
                )
            )
        return tuple(parts)

    def _visit(self, sigma, core, marked_pos, word) -> None:
        key = (sigma, core, marked_pos is not None)
        if key in self._records:
            return
        rec = _ScanRec(sigma, core, marked_pos, word)
        self._records[key] = rec
        self._queue.append(rec)
        if word:
            self._emit(rec)

    def _apply(self, rec: _ScanRec, letter_index: int) -> None:
        letter = self._letter_list[letter_index]
        if letter.selcaps is not None and rec.marked_pos is not None:
            return  # at most one marked child
        self._n_applied += 1
        self._spend(1)
        next_parts = []
        for k, pctx in enumerate(self.packed):
            fhat_id = letter.fhat_ids[k]
            selcap_mask = letter.selcap_masks[k]
            per_q = []
            for comp, machine in zip(rec.core[k], pctx.machines(rec.sigma)):
                if comp is None:
                    per_q.append(None)
                    continue
                per_q.append(
                    machine.step_component(
                        comp, fhat_id, letter.label, selcap_mask, self._spend
                    )
                )
            next_parts.append(tuple(per_q))
        if letter.selcaps is None:
            marked_pos = rec.marked_pos
        else:
            marked_pos = len(rec.word)
        self._visit(
            rec.sigma, tuple(next_parts), marked_pos, rec.word + (letter_index,)
        )

    # -- emission ----------------------------------------------------------

    def _emit(self, rec: _ScanRec) -> None:
        sigma = rec.sigma
        fhats = []
        childsels = []
        for k, (ctx, pctx) in enumerate(zip(self.contexts, self.packed)):
            automaton = ctx.automaton
            machines = pctx.machines(sigma)
            table: dict[State, tuple] = {}
            childsel: dict[State, bool] = {}
            for index, q in enumerate(pctx.sorted_states):
                if (q, sigma) in automaton.up_pairs:
                    table[q] = (RET, q)
                    childsel[q] = False
                    continue
                comp = rec.core[k][index]
                if comp is None:
                    table[q] = (HALT,)
                    childsel[q] = False
                    continue
                outcome, bit = machines[index].resolve(comp)
                table[q] = outcome
                childsel[q] = bit
            fhats.append(_freeze_fhat(table))
            childsels.append(childsel)
        fhats = tuple(fhats)

        letters = [self._letter_list[i] for i in rec.word]
        witness = Tree(sigma, [letter.witness for letter in letters])
        if rec.marked_pos is None:
            self._add_unmarked(fhats, sigma, witness)
        else:
            selcaps = []
            for k, ctx in enumerate(self.contexts):
                capable = set()
                for q in ctx.automaton.states:
                    try:
                        states_here = orbit(fhats[k], q)
                    except NonTerminatingRunError:
                        continue
                    if any(childsels[k].get(s, False) for s in states_here):
                        capable.add(q)
                selcaps.append(frozenset(capable))
            marked_letter = letters[rec.marked_pos]
            child_path = (rec.marked_pos,) + marked_letter.path
            self._add_marked(fhats, sigma, tuple(selcaps), witness, child_path)


def _closure_for(
    query_automata: Sequence[UnrankedQueryAutomaton],
    budget: int,
    engine: str,
    polarities: Sequence[int] | None = None,
    track_marked: bool = True,
):
    """Instantiate the requested closure engine."""
    if engine == "naive":
        return JointClosure(query_automata, budget=budget)
    if engine == "packed":
        return PackedJointClosure(
            query_automata,
            budget=budget,
            polarities=polarities,
            track_marked=track_marked,
        )
    raise ValueError(f"unknown closure engine {engine!r}")


# ----------------------------------------------------------------------
# Public decision procedures
# ----------------------------------------------------------------------


def language_witness(
    automaton: TwoWayUnrankedAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> Tree | None:
    """Some accepted tree, or ``None`` — 2DTA^u emptiness (Theorem 6.3)."""
    qa = UnrankedQueryAutomaton(automaton, frozenset())
    closure = _closure_for([qa], budget, engine, track_marked=False)
    ctx = closure.contexts[0]
    for (fhats, sigma), witness in closure.unmarked.items():
        if ctx.accepts_element(fhats[0], sigma):
            return witness
    return None


def language_is_empty(
    automaton: TwoWayUnrankedAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> bool:
    """Is the accepted tree language empty?"""
    return language_witness(automaton, budget=budget, engine=engine) is None


def query_witness(
    qa: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> tuple[Tree, Path] | None:
    """A tree and node the query selects — non-emptiness (Theorem 6.3)."""
    closure = _closure_for([qa], budget, engine, polarities=(1,))
    ctx = closure.contexts[0]
    for (fhats, sigma, selcaps), (witness, path) in closure.marked.items():
        if ctx.selects_marked(fhats[0], sigma, selcaps[0]):
            return witness, path
    return None


def query_is_empty(
    qa: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> bool:
    """Is ``A(t) = ∅`` for every tree ``t``?"""
    return query_witness(qa, budget=budget, engine=engine) is None


def containment_counterexample(
    first: UnrankedQueryAutomaton,
    second: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> tuple[Tree, Path] | None:
    """A (tree, node) selected by ``first`` but not ``second`` (Thm 6.4).

    ``None`` means the query of ``first`` is contained in ``second``'s.
    """
    closure = _closure_for([first, second], budget, engine, polarities=(1, -1))
    ctx1, ctx2 = closure.contexts
    for (fhats, sigma, selcaps), (witness, path) in closure.marked.items():
        if ctx1.selects_marked(fhats[0], sigma, selcaps[0]) and not (
            ctx2.selects_marked(fhats[1], sigma, selcaps[1])
        ):
            return witness, path
    return None


def is_contained(
    first: UnrankedQueryAutomaton,
    second: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> bool:
    """``first(t) ⊆ second(t)`` for all trees?"""
    return (
        containment_counterexample(first, second, budget=budget, engine=engine)
        is None
    )


def are_equivalent(
    first: UnrankedQueryAutomaton,
    second: UnrankedQueryAutomaton,
    budget: int = 5_000_000,
    engine: str = "packed",
) -> bool:
    """Do the two query automata compute the same query? (Theorem 6.4)"""
    return is_contained(
        first, second, budget=budget, engine=engine
    ) and is_contained(second, first, budget=budget, engine=engine)
