"""Named counters, high-water gauges, and timing spans for the engines.

Everything observable in this codebase flows through one small protocol,
:class:`StatsSink`:

* ``incr(name, amount)``    — a monotone event counter;
* ``gauge_max(name, value)`` — a high-water mark (e.g. the largest
  antichain ever held);
* ``observe(name, value)``  — one sample of a distribution (span
  durations, benchmark row statistics); aggregated on demand.

Two implementations exist.  :class:`NullSink` does nothing and is the
installed default, so the instrumented hot paths pay at most one
attribute check (``sink.enabled``) — and the hottest loops pay nothing at
all, because the engines count with plain local integers (or cache-size
deltas) and flush to the sink once per call.  :class:`Stats` records
everything in dictionaries and renders a machine-readable report.

Cache transparency: long-lived caches (the pipeline's pattern LRU, the
engine registries) register a *provider* via :func:`register_cache`; a
report snapshots every provider, so cache occupancy and hit rates are
inspectable without touching the caches themselves.

The counter and span names emitted by the engines — and the invariant
each one tracks — are documented in the metrics glossary of
``DESIGN.md``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager


class StatsSink:
    """The instrumentation protocol: counters, gauges, sample streams.

    Subclasses override the three recording methods; ``enabled`` lets
    call sites skip delta computations entirely when instrumentation is
    off.  The base class doubles as the no-op implementation.
    """

    #: Whether recording has any effect (checked by the hot paths).
    enabled = False

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the high-water gauge ``name`` to ``value`` if larger."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""


class NullSink(StatsSink):
    """The disabled sink: every recording method is inherited as a no-op."""

    __slots__ = ()


#: The process-wide disabled sink (shared, stateless).
NULL_SINK = NullSink()


def _percentile_free_median(samples: list[float]) -> float:
    ordered = sorted(samples)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation.

    Matches numpy's default (``linear``) method so serve-layer latency
    gauges agree with offline analysis of the same samples.  Raises
    :class:`ValueError` on an empty stream.
    """
    if not samples:
        raise ValueError("percentile of an empty sample stream")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q!r}")
    ordered = sorted(samples)
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Stats(StatsSink):
    """A recording sink: dictionaries of counters, gauges, and samples.

    Not thread-safe by design — install one per workload (the engines
    never share a ``Stats`` across threads in this codebase) and read the
    result via :meth:`report`.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.samples: dict[str, list[float]] = {}

    # -- recording -------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the high-water gauge ``name`` to ``value`` if larger."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""
        self.samples.setdefault(name, []).append(value)

    # -- timing spans ----------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block; the duration lands in the sample stream ``name``.

        Span durations are wall-clock seconds (``time.perf_counter``);
        nested and repeated spans of the same name accumulate as separate
        samples, so ``sample_stats(name)["total"]`` is the time spent in
        the block across the workload.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- merging (parallel workers, sharded runs) ------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable copy of the recorded state.

        The payload crosses process boundaries (each parallel worker
        ships one per chunk) and feeds :meth:`merge` /
        :meth:`from_snapshot` on the other side.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "samples": {name: list(values) for name, values in self.samples.items()},
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "Stats":
        """Rebuild a :class:`Stats` from a :meth:`snapshot` payload."""
        stats = cls()
        stats.merge(payload)
        return stats

    def merge(self, other: "Stats | dict") -> "Stats":
        """Fold another sink's state into this one; returns ``self``.

        The merge contract (relied on by the parallel executor, and
        associative by construction):

        * counters are *summed* — they count events, and events from two
          workers simply add;
        * high-water gauges are *maxed* — the fleet's high-water mark is
          the largest any worker saw;
        * sample streams are *concatenated* — every span duration and
          observation survives, so aggregate statistics over the merged
          stream equal statistics over the union of the workers' streams.

        ``other`` may be a :class:`Stats` or a :meth:`snapshot` payload.
        """
        payload = other.snapshot() if isinstance(other, Stats) else other
        for name, amount in payload.get("counters", {}).items():
            self.incr(name, amount)
        for name, value in payload.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, values in payload.get("samples", {}).items():
            self.samples.setdefault(name, []).extend(values)
        return self

    # -- aggregation -----------------------------------------------------

    def counter(self, name: str) -> int:
        """The current value of a counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def sample_stats(self, name: str) -> dict:
        """count/total/mean/median/min/max of one sample stream.

        An empty (or absent) stream yields ``count == 0`` with ``None``
        aggregates, so callers can always subscript the result.
        """
        samples = self.samples.get(name)
        if not samples:
            return {
                "count": 0,
                "total": 0.0,
                "mean": None,
                "median": None,
                "min": None,
                "max": None,
            }
        return {
            "count": len(samples),
            "total": sum(samples),
            "mean": sum(samples) / len(samples),
            "median": _percentile_free_median(samples),
            "min": min(samples),
            "max": max(samples),
        }

    def percentile(self, name: str, q: float) -> float | None:
        """The ``q``-th percentile of one sample stream (``None`` if empty).

        The serve layer's latency contract (p50/p99 gauges) rides on
        this; see :func:`percentile` for the interpolation rule.
        """
        samples = self.samples.get(name)
        if not samples:
            return None
        return percentile(samples, q)

    def report(self) -> dict:
        """The machine-readable snapshot: counters, gauges, spans, caches.

        ``spans`` aggregates every sample stream; ``caches`` snapshots
        each provider registered through :func:`register_cache` (a
        provider that raises is reported as an ``error`` entry rather
        than poisoning the report).
        """
        caches: dict[str, dict] = {}
        for name, provider in sorted(_CACHE_PROVIDERS.items()):
            try:
                caches[name] = provider()
            except Exception as error:  # pragma: no cover - defensive
                caches[name] = {"error": repr(error)}
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                name: self.sample_stats(name)
                for name in sorted(self.samples)
            },
            "caches": caches,
        }


# ----------------------------------------------------------------------
# Cache providers
# ----------------------------------------------------------------------

_CACHE_PROVIDERS: dict[str, Callable[[], dict]] = {}


def register_cache(name: str, provider: Callable[[], dict]) -> None:
    """Register a named cache snapshot for inclusion in every report.

    ``provider`` is called at report time and must return a JSON-ready
    dict (e.g. hits/misses/currsize from an ``lru_cache``'s
    ``cache_info()``).  Re-registering a name replaces the provider.
    """
    _CACHE_PROVIDERS[name] = provider


def cache_providers() -> dict[str, Callable[[], dict]]:
    """The registered providers (name → callable), a live view."""
    return _CACHE_PROVIDERS
