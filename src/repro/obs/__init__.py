"""Observability for the engines and decision procedures.

The package holds one process-wide :class:`StatsSink` (module attribute
:data:`SINK`), defaulting to the no-op :data:`NULL_SINK`.  Instrumented
code reads the attribute through the module (``obs.SINK``) so rebinding
is visible everywhere, and guards any non-trivial bookkeeping behind
``sink.enabled``:

    from repro import obs

    def hot_call(self, ...):
        sink = obs.SINK
        before = len(self._cache) if sink.enabled else 0
        ...                                # the untouched hot loop
        if sink.enabled:
            sink.incr("engine.calls")
            sink.incr("engine.misses", len(self._cache) - before)

Enable collection for a workload with :func:`collecting`::

    with obs.collecting() as stats:
        run_workload()
    print(stats.report())

The CLI exposes the same machinery as ``repro --stats`` (on ``query``
and ``decide``) and as the ``repro profile`` subcommand; counter
semantics are documented in the ``DESIGN.md`` metrics glossary.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from .stats import (
    NULL_SINK,
    NullSink,
    Stats,
    StatsSink,
    cache_providers,
    percentile,
    register_cache,
)

__all__ = [
    "NULL_SINK",
    "NullSink",
    "SINK",
    "Stats",
    "StatsSink",
    "cache_providers",
    "collecting",
    "enabled",
    "percentile",
    "register_cache",
    "set_sink",
    "sink",
]

#: The installed sink.  Read via ``obs.SINK`` (not ``from obs import``)
#: so that :func:`set_sink` rebinds are observed.
SINK: StatsSink = NULL_SINK


def sink() -> StatsSink:
    """The currently installed sink."""
    return SINK


def enabled() -> bool:
    """Is a recording sink installed?"""
    return SINK.enabled


def set_sink(new_sink: StatsSink) -> StatsSink:
    """Install ``new_sink`` process-wide; returns the previous sink."""
    global SINK
    previous = SINK
    SINK = new_sink
    return previous


@contextmanager
def collecting(stats: Stats | None = None) -> Iterator[Stats]:
    """Install a recording sink for the dynamic extent of the block.

    Yields the :class:`Stats` instance (a fresh one unless provided);
    the previously installed sink is restored on exit, even on error —
    so a failing workload still leaves its partial counters readable.
    """
    stats = stats if stats is not None else Stats()
    previous = set_sink(stats)
    try:
        yield stats
    finally:
        set_sink(previous)
