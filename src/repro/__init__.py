"""Query Automata — a reproduction of Neven & Schwentick (PODS 1999).

Two-way deterministic automata over ranked and unranked trees, extended
with selection functions so that they compute *unary queries* — sets of
nodes — rather than merely accepting trees.  The library implements every
system the paper describes:

* the string substrate (:mod:`repro.strings`): 2DFAs, query automata on
  strings, behavior functions, the Hopcroft–Ullman lemma, Shepherdson's
  conversion;
* trees, XML, and DTD validation (:mod:`repro.trees`);
* MSO with compilers to string and tree automata (:mod:`repro.logic`) and
  Ehrenfeucht games (:mod:`repro.games`);
* ranked query automata and the Theorem 4.8 construction
  (:mod:`repro.ranked`);
* unranked query automata with stay transitions and the Theorem 5.17
  construction (:mod:`repro.unranked`);
* the EXPTIME decision procedures of Section 6 (:mod:`repro.decision`);
* a user-facing query/pattern API (:mod:`repro.core`).
"""

__version__ = "1.0.0"

from .trees.tree import Tree
from .core.query import (
    CompiledQuery,
    MSOQuery,
    Query,
    RankedAutomatonQuery,
    UnrankedAutomatonQuery,
)
from .core.patterns import compile_pattern
from .core.pipeline import Document

__all__ = [
    "Tree",
    "Query",
    "MSOQuery",
    "CompiledQuery",
    "RankedAutomatonQuery",
    "UnrankedAutomatonQuery",
    "compile_pattern",
    "Document",
    "__version__",
]
