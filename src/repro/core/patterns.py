"""A small XPath-like pattern language compiled to MSO queries.

The paper's motivation — *locating subtrees satisfying some pattern* in
structured documents — deserves a front-end.  Patterns select nodes by a
path of steps from the root, with optional filters:

=====================  ==================================================
pattern                meaning
=====================  ==================================================
``/book``              children of the root labeled ``book``
``/book/author``       their ``author`` children
``//author``           all descendants labeled ``author``
``/book//year``        ``year`` descendants of root's ``book`` children
``/*``                 all children of the root
``//*[first]``         every node that is a first sibling
``//book[has(year)]``  ``book`` nodes with a ``year`` child
``//author[leaf]``     ``author`` nodes that are leaves
=====================  ==================================================

Filters: ``first``, ``last`` (sibling position), ``leaf``, ``root``,
``has(name)`` (a child labeled ``name``).  Compilation targets the MSO
fragment of :mod:`repro.logic.syntax`; evaluation goes through the
:class:`~repro.core.query.MSOQuery` machinery, i.e., ultimately through
the paper's automata.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from ..logic.syntax import (
    And,
    Edge,
    Exists,
    Formula,
    Label,
    Var,
    first_sibling,
    fresh_var,
    last_sibling,
    leaf,
    root,
)
from .query import MSOQuery


class PatternError(ValueError):
    """Raised for malformed patterns."""


_STEP = re.compile(r"(//|/)([\w#*-]+)((?:\[[^\]]*\])*)")
_FILTER = re.compile(r"\[([^\]]*)\]")


def _descendant(ancestor: Var, descendant_var: Var) -> Formula:
    """``ancestor`` is a proper ancestor of ``descendant_var``.

    Uses the :class:`~repro.logic.syntax.Descendant` atom (compiled to a
    constant-size automaton) rather than the MSO set-quantifier definition
    :func:`repro.logic.syntax.ancestor` — semantically identical, far
    cheaper to compile.
    """
    from ..logic.syntax import Descendant

    return Descendant(ancestor, descendant_var)


def _label_test(var: Var, name: str, alphabet: Sequence[str]) -> Formula:
    if name == "*":
        # Any label: a disjunction over the alphabet (always true, but the
        # compiler needs a concrete formula).
        formulas = [Label(var, sigma) for sigma in alphabet]
        out = formulas[0]
        for formula in formulas[1:]:
            out = out | formula
        return out
    return Label(var, name)


def _filter_formula(var: Var, text: str, alphabet: Sequence[str]) -> Formula:
    text = text.strip()
    if text == "first":
        return first_sibling(var)
    if text == "last":
        return last_sibling(var)
    if text == "leaf":
        return leaf(var)
    if text == "root":
        return root(var)
    match = re.fullmatch(r"has\(([\w#*-]+)\)", text)
    if match:
        child = fresh_var("h")
        return Exists(child, And(Edge(var, child), _label_test(child, match.group(1), alphabet)))
    raise PatternError(f"unknown filter {text!r}")


def compile_pattern(
    pattern: str, alphabet: Sequence[str], engine: str = "automaton"
) -> MSOQuery:
    """Compile a pattern into an :class:`~repro.core.query.MSOQuery`.

    >>> from repro.trees.tree import Tree
    >>> q = compile_pattern("//b[leaf]", ["a", "b"])
    >>> sorted(q.evaluate(Tree.parse("a(b, a(b), b(a))")))
    [(0,), (1, 0)]
    """
    pattern = pattern.strip()
    if not pattern.startswith("/"):
        raise PatternError("patterns must start with '/' or '//'")
    steps = []
    position = 0
    while position < len(pattern):
        match = _STEP.match(pattern, position)
        if match is None:
            raise PatternError(f"cannot parse step at {pattern[position:]!r}")
        axis, name, filters_text = match.groups()
        filters = _FILTER.findall(filters_text)
        steps.append((axis, name, filters))
        position = match.end()

    # Build the formula inside-out: x is the selected node; chain upward.
    x = Var("x")
    current = x
    formula: Formula | None = None
    for axis, name, filters in reversed(steps):
        step_formula = _label_test(current, name, alphabet)
        for filter_text in filters:
            step_formula = And(step_formula, _filter_formula(current, filter_text, alphabet))
        if formula is not None:
            formula = And(step_formula, formula)
        else:
            formula = step_formula
        parent = fresh_var("s")
        if axis == "/":
            link: Formula = Edge(parent, current)
        else:
            link = _descendant(parent, current)
        formula = And(link, formula)
        # Quantify the child position away (except the selected x itself).
        if current is not x:
            formula = Exists(current, formula)
        current = parent
    # ``current`` must be the root.
    assert formula is not None
    formula = And(root(current), formula)
    if current is not x:
        formula = Exists(current, formula)
    return MSOQuery(formula, x, tuple(alphabet), engine=engine)
