"""The public query API: one interface over every engine in the library.

A *query* (Section 3's definition) maps a tree to a set of its nodes.
The paper provides four ways to get one — an MSO formula with one free
variable, a QA^r, a QA^u/SQA^u, or a compiled marked-alphabet bottom-up
automaton — and three evaluation strategies (naive logic semantics,
two-way simulation, behavior functions / two-pass).  This module wraps
them behind a single :class:`Query` interface so applications (and the
benchmarks) can switch engines freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.compile_trees import compile_tree_query
from ..logic.semantics import tree_query
from ..logic.syntax import Formula, Var
from ..ranked.behavior import evaluate_query_via_behavior as ranked_behavior_eval
from ..ranked.twoway import RankedQueryAutomaton
from ..trees.tree import Path, Tree
from ..unranked.behavior import evaluate_query_via_behavior as unranked_behavior_eval
from ..unranked.dbta import DeterministicUnrankedAutomaton, evaluate_marked_query
from ..unranked.twoway import UnrankedQueryAutomaton


class Query:
    """A unary query over Σ-trees."""

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """The selected nodes of the tree."""
        raise NotImplementedError

    def __call__(self, tree: Tree) -> frozenset[Path]:
        return self.evaluate(tree)


@dataclass
class MSOQuery(Query):
    """A query given by an MSO formula φ(x).

    ``engine`` selects the evaluation strategy:

    * ``"naive"`` — direct model checking (exponential; the oracle);
    * ``"automaton"`` — compile once to a marked-alphabet deterministic
      bottom-up automaton, evaluate with the two-pass algorithm (linear
      per tree; the Figure 5/6 content);
    * ``"fast"`` — like ``"automaton"``, but through the cached
      :mod:`repro.perf` engine: per-node sweeps are memoized by hashed
      subtree type and shared across calls.
    """

    formula: Formula
    var: Var
    alphabet: tuple
    engine: str = "automaton"
    _compiled: DeterministicUnrankedAutomaton | None = field(
        default=None, repr=False, compare=False
    )

    def compiled(self) -> DeterministicUnrankedAutomaton:
        """The marked-alphabet automaton (compiled on first use)."""
        if self._compiled is None:
            self._compiled = compile_tree_query(
                self.formula, self.var, list(self.alphabet)
            )
        return self._compiled

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """Selected node paths of the tree."""
        if self.engine == "naive":
            return tree_query(tree, self.formula, self.var)
        if self.engine == "fast":
            from ..perf.trees import fast_evaluate_marked

            return fast_evaluate_marked(self.compiled(), tree)
        return evaluate_marked_query(
            self.compiled(), tree, lambda label, bit: (label, bit)
        )


@dataclass
class RankedAutomatonQuery(Query):
    """A query computed by a QA^r (Definition 4.3).

    ``engine``: ``"simulate"`` runs the cut semantics; ``"behavior"`` uses
    the linear-time Lemma 4.7 evaluation.
    """

    automaton: RankedQueryAutomaton
    engine: str = "behavior"

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """Selected node paths of the tree."""
        if self.engine == "simulate":
            return self.automaton.evaluate(tree)
        return ranked_behavior_eval(self.automaton, tree)


@dataclass
class UnrankedAutomatonQuery(Query):
    """A query computed by a QA^u or SQA^u (Definitions 5.8, 5.13).

    ``engine``: ``"simulate"`` runs the cut semantics, ``"behavior"`` the
    Lemma 5.16 per-call evaluation, ``"fast"`` the cached
    :mod:`repro.perf` engine (behaviors memoized per subtree type, shared
    across calls).
    """

    automaton: UnrankedQueryAutomaton
    engine: str = "behavior"

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """Selected node paths of the tree."""
        if self.engine == "simulate":
            return self.automaton.evaluate(tree)
        if self.engine == "fast":
            from ..perf.trees import fast_evaluate_unranked

            return fast_evaluate_unranked(self.automaton, tree)
        return unranked_behavior_eval(self.automaton, tree)


@dataclass
class CompiledQuery(Query):
    """A query given directly by a marked-alphabet DBTA^u.

    ``engine``: ``"two_pass"`` re-runs the two-pass algorithm per call;
    ``"fast"`` routes through the cached :mod:`repro.perf` engine.
    """

    automaton: DeterministicUnrankedAutomaton
    engine: str = "two_pass"

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """Selected node paths of the tree."""
        if self.engine == "fast":
            from ..perf.trees import fast_evaluate_marked

            return fast_evaluate_marked(self.automaton, tree)
        return evaluate_marked_query(
            self.automaton, tree, lambda label, bit: (label, bit)
        )


def select(query: Query, tree: Tree) -> list[Path]:
    """Selected nodes in document order (convenience)."""
    return sorted(query.evaluate(tree))


def subtrees(query: Query, tree: Tree) -> list[Tree]:
    """The subtrees rooted at the selected nodes, in document order."""
    return [tree.subtree(path) for path in select(query, tree)]
