"""Public query API: Query objects, XPath-like patterns, XML pipeline."""

from .query import (
    CompiledQuery,
    MSOQuery,
    Query,
    RankedAutomatonQuery,
    UnrankedAutomatonQuery,
    select,
    subtrees,
)
from .patterns import PatternError, compile_pattern
from .pipeline import Document, ValidationError, run_pattern

__all__ = [
    "CompiledQuery",
    "MSOQuery",
    "Query",
    "RankedAutomatonQuery",
    "UnrankedAutomatonQuery",
    "select",
    "subtrees",
    "PatternError",
    "compile_pattern",
    "Document",
    "ValidationError",
    "run_pattern",
]
