"""End-to-end document pipeline: XML text → validation → query → results.

The workflow the paper's introduction motivates (Figures 1–4): parse a
document, abstract it as an unranked tree, optionally validate against a
DTD, run unary queries over it, and extract the matched subdocuments.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

from ..trees.dtd import DTD
from ..trees.tree import Path, Tree
from ..trees.xml import XMLElement, parse_document, to_tree
from .patterns import compile_pattern
from .query import Query


class ValidationError(ValueError):
    """The document does not conform to the DTD."""


@lru_cache(maxsize=256)
def cached_pattern(pattern: str, alphabet: tuple) -> Query:
    """``compile_pattern`` memoized on (pattern, alphabet).

    The returned query object is shared, so its compiled marked-alphabet
    automaton — and the :mod:`repro.perf` engine keyed on it — survive
    across :meth:`Document.select` calls and across documents with the
    same label alphabet.
    """
    return compile_pattern(pattern, alphabet)


@dataclass
class Document:
    """A parsed document with its tree abstraction."""

    element: XMLElement
    tree: Tree

    @staticmethod
    def from_text(text: str, dtd: DTD | None = None) -> "Document":
        """Parse (and optionally validate) an XML document."""
        element = parse_document(text)
        tree = to_tree(element)
        if dtd is not None:
            problems = dtd.violations(tree)
            if problems:
                rendered = "; ".join(
                    f"{'/'.join(map(str, path)) or 'root'}: {message}"
                    for path, message in problems[:5]
                )
                raise ValidationError(rendered)
        return Document(element, tree)

    @property
    def alphabet(self) -> tuple:
        """The labels occurring in the tree (query compilation alphabet)."""
        return tuple(sorted(self.tree.labels()))

    def select(self, query: Query | str) -> list[Path]:
        """Run a query (object or pattern string); document-ordered paths.

        Pattern strings are compiled once per (pattern, alphabet) pair and
        evaluated through the cached :mod:`repro.perf` engines, so
        repeated selections over similar documents stay cheap.
        """
        if isinstance(query, str):
            query = cached_pattern(query, self.alphabet)
        from ..perf.batch import evaluate_one

        return sorted(evaluate_one(query, self.tree))

    def matches(self, query: Query | str) -> list[Tree]:
        """The matched subtrees, in document order."""
        return [self.tree.subtree(path) for path in self.select(query)]

    def element_at(self, path: Path) -> XMLElement | str:
        """The XML element (or text chunk) at a tree path."""
        node: XMLElement | str = self.element
        for index in path:
            if isinstance(node, str):
                raise KeyError(f"no element at {path!r}")
            node = node.content[index]
        return node


def run_pattern(
    text: str, pattern: str, dtd: DTD | None = None
) -> list[Tree]:
    """One-shot convenience: parse, validate, query, return subtrees."""
    document = Document.from_text(text, dtd)
    return document.matches(pattern)


def batch_select(
    documents: Sequence[Document], query: Query | str
) -> list[list[Path]]:
    """Run one query over many documents via :func:`repro.perf.batch_evaluate`.

    Compiles a pattern string once (against the union of the documents'
    alphabets) and evaluates every tree through a single cached engine, so
    automaton and table construction is amortized over the whole batch.
    Returns one document-ordered path list per document.
    """
    documents = list(documents)
    if isinstance(query, str):
        labels: set = set()
        for document in documents:
            labels.update(document.alphabet)
        query = cached_pattern(query, tuple(sorted(labels)))
    from ..perf.batch import batch_evaluate

    results = batch_evaluate(query, [document.tree for document in documents])
    return [sorted(paths) for paths in results]
