"""End-to-end document pipeline: XML text → validation → query → results.

The workflow the paper's introduction motivates (Figures 1–4): parse a
document, abstract it as an unranked tree, optionally validate against a
DTD, run unary queries over it, and extract the matched subdocuments.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

from .. import obs
from ..trees.dtd import DTD
from ..trees.tree import Path, Tree
from ..trees.xml import XMLElement, parse_document, to_tree
from .patterns import compile_pattern
from .query import Query


class ValidationError(ValueError):
    """The document does not conform to the DTD."""


@lru_cache(maxsize=256)
def cached_pattern(pattern: str, alphabet: tuple) -> Query:
    """``compile_pattern`` memoized on (pattern, alphabet).

    The returned query object is shared, so its compiled marked-alphabet
    automaton — and the :mod:`repro.perf` engine keyed on it — survive
    across :meth:`Document.select` calls and across documents with the
    same label alphabet.

    Inspect the cache with :func:`pattern_cache_info` and reset it with
    :func:`pattern_cache_clear`; the same snapshot appears under
    ``caches["pipeline.cached_pattern"]`` in every ``obs`` report.
    """
    return compile_pattern(pattern, alphabet)


def pattern_cache_info() -> dict:
    """hits/misses/maxsize/currsize of the shared pattern LRU, as a dict."""
    info = cached_pattern.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }


def pattern_cache_clear() -> None:
    """Drop every compiled (pattern, alphabet) entry."""
    cached_pattern.cache_clear()


obs.register_cache("pipeline.cached_pattern", pattern_cache_info)


def _pattern_for(pattern: str, alphabet: tuple) -> Query:
    """``cached_pattern`` with per-call hit/miss counters when enabled."""
    sink = obs.SINK
    if not sink.enabled:
        return cached_pattern(pattern, alphabet)
    before = cached_pattern.cache_info()
    query = cached_pattern(pattern, alphabet)
    after = cached_pattern.cache_info()
    sink.incr("pipeline.pattern_cache_hits", after.hits - before.hits)
    sink.incr("pipeline.pattern_cache_misses", after.misses - before.misses)
    return query


@dataclass
class Document:
    """A parsed document with its tree abstraction."""

    element: XMLElement
    tree: Tree

    @staticmethod
    def from_text(text: str, dtd: DTD | None = None) -> "Document":
        """Parse (and optionally validate) an XML document."""
        element = parse_document(text)
        tree = to_tree(element)
        if dtd is not None:
            problems = dtd.violations(tree)
            if problems:
                rendered = "; ".join(
                    f"{'/'.join(map(str, path)) or 'root'}: {message}"
                    for path, message in problems[:5]
                )
                raise ValidationError(rendered)
        return Document(element, tree)

    @property
    def alphabet(self) -> tuple:
        """The labels occurring in the tree (query compilation alphabet)."""
        return tuple(sorted(self.tree.labels()))

    def select(self, query: Query | str) -> list[Path]:
        """Run a query (object or pattern string); document-ordered paths.

        Pattern strings are compiled once per (pattern, alphabet) pair and
        evaluated through the cached :mod:`repro.perf` engines, so
        repeated selections over similar documents stay cheap.
        """
        obs.SINK.incr("pipeline.selects")
        if isinstance(query, str):
            query = _pattern_for(query, self.alphabet)
        from ..perf.batch import evaluate_one

        return sorted(evaluate_one(query, self.tree))

    def matches(self, query: Query | str) -> list[Tree]:
        """The matched subtrees, in document order."""
        return [self.tree.subtree(path) for path in self.select(query)]

    def element_at(self, path: Path) -> XMLElement | str:
        """The XML element (or text chunk) at a tree path."""
        node: XMLElement | str = self.element
        for index in path:
            if isinstance(node, str):
                raise KeyError(f"no element at {path!r}")
            node = node.content[index]
        return node


def run_pattern(
    text: str, pattern: str, dtd: DTD | None = None
) -> list[Tree]:
    """One-shot convenience: parse, validate, query, return subtrees."""
    document = Document.from_text(text, dtd)
    return document.matches(pattern)


def batch_select(
    documents: Sequence[Document], query: Query | str
) -> list[list[Path]]:
    """Run one query over many documents via :func:`repro.perf.batch_evaluate`.

    Compiles a pattern string once (against the union of the documents'
    alphabets) and evaluates every tree through a single cached engine, so
    automaton and table construction is amortized over the whole batch.
    Returns one document-ordered path list per document.
    """
    documents = list(documents)
    obs.SINK.incr("pipeline.batch_selects")
    if isinstance(query, str):
        labels: set = set()
        for document in documents:
            labels.update(document.alphabet)
        query = _pattern_for(query, tuple(sorted(labels)))
    from ..perf.batch import batch_evaluate

    results = batch_evaluate(query, [document.tree for document in documents])
    return [sorted(paths) for paths in results]
