"""End-to-end document pipeline: XML text → validation → query → results.

The workflow the paper's introduction motivates (Figures 1–4): parse a
document, abstract it as an unranked tree, optionally validate against a
DTD, run unary queries over it, and extract the matched subdocuments.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path as FilePath

from .. import obs
from ..trees.dtd import DTD
from ..trees.tree import Path, Tree
from ..trees.xml import XMLElement, iter_corpus, parse_document, to_tree
from .query import Query


class ValidationError(ValueError):
    """The document does not conform to the DTD."""


@lru_cache(maxsize=256)
def cached_pattern(pattern: str, alphabet: tuple) -> Query:
    """Query-string compilation memoized on (pattern, alphabet).

    Strings are dispatched by prefix through
    :func:`repro.lang.compile_query_string`: ``"xpath:..."`` parses the
    XPath fragment, ``"mso:..."`` the MSO formula syntax (both defined
    in ``docs/QUERY_LANGUAGE.md``), and anything else is the legacy
    :func:`repro.core.patterns.compile_pattern` language, unchanged.

    The returned query object is shared, so its compiled marked-alphabet
    automaton — and the :mod:`repro.perf` engine keyed on it — survive
    across :meth:`Document.select` calls and across documents with the
    same label alphabet.

    This LRU keys on the raw pattern *string*; underneath it, the
    MSO→automaton step goes through the content-addressed compile cache
    of :mod:`repro.perf.compile`, which keys on the *canonical formula
    digest* — so distinct patterns that desugar to α-equivalent formulas
    (and cold processes pointed at a ``--compile-cache`` directory) still
    reuse one compiled automaton.

    Inspect the cache with :func:`pattern_cache_info` and reset it with
    :func:`pattern_cache_clear`; the same snapshot appears under
    ``caches["pipeline.cached_pattern"]`` in every ``obs`` report
    (alongside ``caches["perf.compile_cache"]``).
    """
    from ..lang import compile_query_string

    return compile_query_string(pattern, alphabet)


def pattern_cache_info() -> dict:
    """hits/misses/maxsize/currsize of the shared pattern LRU, as a dict."""
    info = cached_pattern.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
    }


def pattern_cache_clear() -> None:
    """Drop every compiled (pattern, alphabet) entry."""
    cached_pattern.cache_clear()


obs.register_cache("pipeline.cached_pattern", pattern_cache_info)


def _slice_bounds(
    limit: int | None, offset: int | None
) -> tuple[int, int | None]:
    """Validated ``(start, stop)`` for a ``limit``/``offset`` pair.

    ``limit`` caps how many answers are returned, ``offset`` skips that
    many leading answers first; both default to "everything".  Negative
    or non-integer values raise :class:`ValueError` eagerly (before any
    evaluation or streaming starts).
    """
    for name, value in (("limit", limit), ("offset", offset)):
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{name} must be an integer, got {value!r}")
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    start = offset or 0
    return start, (None if limit is None else start + limit)


def _limited(stream: Iterator[Path], start: int, stop: int | None):
    """``islice`` that closes the underlying cursor when it is dropped.

    Closing the returned generator (or exhausting it) closes ``stream``
    too, so an early-closed ``select_iter`` never leaves a half-walked
    cursor computing in the background.
    """
    from itertools import islice

    try:
        yield from islice(stream, start, stop)
    finally:
        close = getattr(stream, "close", None)
        if close is not None:
            close()


def _pattern_for(pattern: str, alphabet: tuple) -> Query:
    """``cached_pattern`` with per-call hit/miss counters when enabled."""
    sink = obs.SINK
    if not sink.enabled:
        return cached_pattern(pattern, alphabet)
    before = cached_pattern.cache_info()
    query = cached_pattern(pattern, alphabet)
    after = cached_pattern.cache_info()
    sink.incr("pipeline.pattern_cache_hits", after.hits - before.hits)
    sink.incr("pipeline.pattern_cache_misses", after.misses - before.misses)
    return query


def _coalesce_text(content: list, children: list, index: int) -> None:
    """Merge two adjacent text chunks at ``index``/``index + 1``, if any.

    An XML parser can never produce two adjacent text chunks, but an
    edit can: deleting the element between two chunks, or replacing an
    element *with* a chunk next to another chunk.  Left unmerged, the
    edited document serializes to text that reparses into a *different*
    tree (the serializer concatenates the chunks; the parser reads them
    back as one node) — the serialize/reparse hazard the serve edit
    oracle surfaced.  The merged chunk keeps the left position; one
    ``#text`` leaf is dropped and later sibling indices shift left by
    one, exactly as a reparse would see them.
    """
    if not (0 <= index and index + 1 < len(content)):
        return
    if isinstance(content[index], str) and isinstance(content[index + 1], str):
        content[index] = content[index] + content[index + 1]
        del content[index + 1]
        del children[index + 1]
        obs.SINK.incr("pipeline.text_merges")


@dataclass
class Document:
    """A parsed document with its tree abstraction."""

    element: XMLElement
    tree: Tree

    @staticmethod
    def from_text(text: str, dtd: DTD | None = None) -> "Document":
        """Parse (and optionally validate) an XML document."""
        return Document.from_element(parse_document(text), dtd)

    @staticmethod
    def from_element(element: XMLElement, dtd: DTD | None = None) -> "Document":
        """Abstract an already-parsed element (and optionally validate)."""
        tree = to_tree(element)
        if dtd is not None:
            problems = dtd.violations(tree)
            if problems:
                rendered = "; ".join(
                    f"{'/'.join(map(str, path)) or 'root'}: {message}"
                    for path, message in problems[:5]
                )
                raise ValidationError(rendered)
        return Document(element, tree)

    @property
    def alphabet(self) -> tuple:
        """The labels occurring in the tree (query compilation alphabet).

        Cached per tree: repeated selects (and every ``select_iter``
        cursor open) would otherwise pay a full O(n) label walk just to
        key the pattern LRU.
        """
        cached = self.__dict__.get("_alphabet")
        if cached is None or cached[0] is not self.tree:
            cached = (self.tree, tuple(sorted(self.tree.labels())))
            self.__dict__["_alphabet"] = cached
        return cached[1]

    def select(
        self,
        query: Query | str,
        engine: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> list[Path]:
        """Run a query (object or query string); document-ordered paths.

        Strings starting with ``"xpath:"`` or ``"mso:"`` use the
        :mod:`repro.lang` frontend (see ``docs/QUERY_LANGUAGE.md``);
        other strings are legacy :mod:`repro.core.patterns` patterns.
        Query strings are compiled once per (pattern, alphabet) pair —
        with the formula-level work deduplicated by the content-addressed
        compile cache of :mod:`repro.perf.compile` — and evaluated
        through the cached :mod:`repro.perf` engines, so repeated
        selections over similar documents stay cheap.  ``engine="numpy"``
        selects the vectorized tree kernel of :mod:`repro.perf.nptrees`,
        ``engine="naive"`` the uncached oracles; the default is the
        interned-dict engines.

        ``limit``/``offset`` slice the materialized answer list — the
        full selection is still evaluated; use :meth:`select_iter` to
        stop *computing* after the first answers.
        """
        obs.SINK.incr("pipeline.selects")
        start, stop = _slice_bounds(limit, offset)
        from ..perf.registry import validate_engine

        validate_engine(engine)
        if isinstance(query, str):
            query = _pattern_for(query, self.alphabet)
        from ..perf.batch import evaluate_one

        return sorted(evaluate_one(query, self.tree, engine=engine))[start:stop]

    def select_iter(
        self,
        query: Query | str,
        engine: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> Iterator[Path]:
        """Stream selected paths in document order; ≡ :meth:`select`.

        The constant-delay enumeration path
        (:func:`repro.perf.enumerate.stream_select`): one linear
        preprocessing pass (the bottom-up typing sweep), then answers
        are yielded one at a time, walking only subtrees that contain
        answers — the full answer list is never built, so
        time-to-first-answer and peak memory are independent of how
        many answers follow.  Query strings go through exactly the same
        pattern LRU and compile cache as :meth:`select`; ``engine``
        means the same thing (``"naive"`` degrades to a materialized
        select behind ``enumerate.fallbacks``).

        ``limit`` stops the walk after that many answers; ``offset``
        skips leading answers first.  Closing the returned generator
        stops the walk immediately.
        """
        obs.SINK.incr("pipeline.select_iters")
        start, stop = _slice_bounds(limit, offset)
        from ..perf.registry import validate_engine

        validate_engine(engine)
        if isinstance(query, str):
            query = _pattern_for(query, self.alphabet)
        from ..perf.enumerate import stream_select

        return _limited(stream_select(query, self.tree, engine=engine), start, stop)

    def matches(
        self, query: Query | str, engine: str | None = None
    ) -> list[Tree]:
        """The matched subtrees, in document order."""
        return [
            self.tree.subtree(path)
            for path in self.select(query, engine=engine)
        ]

    @staticmethod
    def batch_select(
        documents: Sequence["Document"],
        query: Query | str,
        jobs: int | None = None,
        engine: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> list[list[Path]]:
        """One query over many documents (module :func:`batch_select`).

        ``jobs`` > 1 shards the documents across worker processes; see
        :class:`repro.perf.parallel.ParallelExecutor`.
        """
        return batch_select(
            documents, query, jobs=jobs, engine=engine,
            limit=limit, offset=offset,
        )

    def element_at(self, path: Path) -> XMLElement | str:
        """The XML element (or text chunk) at a tree path."""
        node: XMLElement | str = self.element
        for index in path:
            if isinstance(node, str):
                raise KeyError(f"no element at {path!r}")
            node = node.content[index]
        return node

    # -- functional edits ------------------------------------------------
    #
    # Both editors rebuild only the spine from the edit site to the root;
    # every sibling element and subtree object is shared with the source
    # document, which is what keeps the serve-layer incremental engines'
    # per-node type memos hot (repro.perf.trees.incremental_type).

    def _rebuild(
        self, path: Path, replacement: tuple | None
    ) -> "Document":
        """A new document with the node at ``path`` replaced or deleted.

        ``replacement`` is ``(content_item, subtree)`` or ``None`` to
        delete.  Raises :class:`KeyError` for paths through text chunks
        or out-of-range indices, and :class:`ValueError` for the root.

        Text chunks left adjacent *by the edit itself* are merged into
        one chunk (:func:`_coalesce_text`), so an edited document always
        serializes to XML that reparses into the same tree — adjacency
        a parser can never produce never survives an edit.  Siblings the
        edit did not make adjacent are left alone (their indices never
        shift), so untouched subtrees stay shared with this document.
        """
        if not path:
            raise ValueError("cannot edit the document root; load a new one")
        # Collect the element/tree spine down to the edit site's parent.
        elements: list[XMLElement] = [self.element]
        trees: list[Tree] = [self.tree]
        for index in path[:-1]:
            node = elements[-1].content[index]
            if isinstance(node, str):
                raise KeyError(f"no element at {path!r}")
            elements.append(node)
            trees.append(trees[-1].children[index])
        last = path[-1]
        if not 0 <= last < len(elements[-1].content):
            raise KeyError(f"no node at {path!r}")
        # Rebuild bottom-up, sharing every untouched sibling.
        new_content = list(elements[-1].content)
        new_children = list(trees[-1].children)
        if replacement is None:
            del new_content[last]
            del new_children[last]
            _coalesce_text(new_content, new_children, last - 1)
        else:
            new_content[last], new_children[last] = replacement
            if isinstance(new_content[last], str):
                _coalesce_text(new_content, new_children, last)
                _coalesce_text(new_content, new_children, last - 1)
        child_element = XMLElement(
            elements[-1].tag, elements[-1].attributes, new_content
        )
        child_tree = Tree(trees[-1].label, new_children)
        for depth in range(len(path) - 2, -1, -1):
            parent_element, parent_tree = elements[depth], trees[depth]
            content = list(parent_element.content)
            content[path[depth]] = child_element
            children = list(parent_tree.children)
            children[path[depth]] = child_tree
            child_element = XMLElement(
                parent_element.tag, parent_element.attributes, content
            )
            child_tree = Tree(parent_tree.label, children)
        return Document(child_element, child_tree)

    def with_replaced(
        self, path: Path, fragment: "XMLElement | str"
    ) -> "Document":
        """A new document with the subtree at ``path`` replaced.

        ``fragment`` is a parsed :class:`XMLElement` (or a raw text
        chunk).  Siblings and all untouched subtrees are shared with
        this document — only the spine to the root is rebuilt.  A text
        chunk placed next to an existing chunk is merged with it
        (:func:`_coalesce_text`), so the result always serializes and
        reparses to the same tree.
        """
        subtree = (
            to_tree(fragment)
            if isinstance(fragment, XMLElement)
            else Tree("#text")
        )
        return self._rebuild(path, (fragment, subtree))

    def with_deleted(self, path: Path) -> "Document":
        """A new document with the subtree at ``path`` removed.

        Text chunks the deletion makes adjacent are merged into one
        chunk (:func:`_coalesce_text`) so the result round-trips
        through serialize/reparse unchanged.
        """
        return self._rebuild(path, None)


def run_pattern(
    text: str,
    pattern: str,
    dtd: DTD | None = None,
    engine: str | None = None,
) -> list[Tree]:
    """One-shot convenience: parse, validate, query, return subtrees."""
    document = Document.from_text(text, dtd)
    return document.matches(pattern, engine=engine)


def batch_select(
    documents: Sequence[Document],
    query: Query | str,
    jobs: int | None = None,
    engine: str | None = None,
    limit: int | None = None,
    offset: int | None = None,
) -> list[list[Path]]:
    """Run one query over many documents; optionally sharded across workers.

    Compiles a pattern string once (against the union of the documents'
    alphabets) and evaluates every tree through a single cached engine, so
    automaton and table construction is amortized over the whole batch.
    Returns one document-ordered path list per document.

    ``jobs`` > 1 shards the corpus across worker processes via
    :class:`repro.perf.parallel.ParallelExecutor` — results are merged in
    submission order and are byte-identical to the serial path; worker
    counters land in the installed :mod:`repro.obs` sink.  ``jobs`` of
    ``None`` or 1 stays entirely in-process.

    ``limit``/``offset`` slice each document's answer list after its
    full evaluation (every tree is still evaluated whole — sharded
    workers return complete results); for per-answer streaming use
    :meth:`Document.select_iter` per document.
    """
    documents = list(documents)
    obs.SINK.incr("pipeline.batch_selects")
    start, stop = _slice_bounds(limit, offset)
    from ..perf.registry import validate_engine

    validate_engine(engine)
    if isinstance(query, str):
        labels: set = set()
        for document in documents:
            labels.update(document.alphabet)
        query = _pattern_for(query, tuple(sorted(labels)))
    trees = [document.tree for document in documents]
    if jobs is not None and jobs != 1:
        from ..perf.parallel import parallel_map

        results = parallel_map(query, trees, jobs=jobs, engine=engine)
    else:
        from ..perf.batch import batch_evaluate

        results = batch_evaluate(query, trees, engine=engine)
    return [sorted(paths)[start:stop] for paths in results]


class Corpus:
    """An ordered collection of documents served by one query at a time.

    The serving shape of the paper's motivation at scale: one compiled
    query, many documents.  A corpus is either *materialized* (a list of
    :class:`Document`, indexable and reusable) or *streaming* (a one-shot
    document iterator fed by :func:`repro.trees.xml.iter_corpus`, so
    million-node corpora never fully materialize — they are consumed one
    parallel chunk at a time).
    """

    def __init__(self, documents: Iterable[Document]) -> None:
        if isinstance(documents, (list, tuple)):
            self._documents: list[Document] | None = list(documents)
            self._stream: Iterator[Document] | None = None
        else:
            self._documents = None
            self._stream = iter(documents)

    # -- construction ----------------------------------------------------

    @staticmethod
    def from_texts(
        texts: Iterable[str], dtd: DTD | None = None
    ) -> "Corpus":
        """A materialized corpus parsed from document strings."""
        return Corpus([Document.from_text(text, dtd) for text in texts])

    @staticmethod
    def from_paths(
        paths: Iterable[str | FilePath], dtd: DTD | None = None
    ) -> "Corpus":
        """A materialized corpus read from one XML file per document."""
        return Corpus(
            [
                Document.from_text(FilePath(path).read_text(), dtd)
                for path in paths
            ]
        )

    @staticmethod
    def stream(source, dtd: DTD | None = None) -> "Corpus":
        """A streaming corpus over a corpus file (root's children = documents).

        Ingestion is ``iterparse``-based: each document element is
        abstracted and released before the next is parsed, so the corpus
        is never resident in memory as a whole.  The resulting corpus is
        one-shot — :meth:`select` (or iteration) consumes it.
        """
        return Corpus(
            Document.from_element(element, dtd)
            for element in iter_corpus(source)
        )

    # -- container protocol (materialized corpora) -----------------------

    @property
    def streaming(self) -> bool:
        """Whether this corpus is a one-shot document stream."""
        return self._documents is None

    def __iter__(self) -> Iterator[Document]:
        if self._documents is not None:
            return iter(self._documents)
        stream, self._stream = self._stream, None
        if stream is None:
            raise ValueError("streaming corpus already consumed")
        return stream

    def __len__(self) -> int:
        if self._documents is None:
            raise TypeError("streaming corpora have no length until materialized")
        return len(self._documents)

    def __getitem__(self, index: int) -> Document:
        if self._documents is None:
            raise TypeError("streaming corpora are not indexable")
        return self._documents[index]

    def materialize(self) -> "Corpus":
        """This corpus with every document resident (no-op if already)."""
        if self._documents is not None:
            return self
        return Corpus(list(self))

    @property
    def alphabet(self) -> tuple:
        """Union of the documents' label alphabets (materialized only)."""
        if self._documents is None:
            raise TypeError("streaming corpora have no precomputed alphabet")
        labels: set = set()
        for document in self._documents:
            labels.update(document.alphabet)
        return tuple(sorted(labels))

    # -- querying --------------------------------------------------------

    def select(
        self,
        query: Query | str,
        jobs: int | None = None,
        alphabet: Sequence[str] | None = None,
        engine: str | None = None,
        limit: int | None = None,
        offset: int | None = None,
    ) -> list[list[Path]]:
        """One document-ordered path list per document, in corpus order.

        ``jobs`` > 1 shards the documents across worker processes
        (submission-order merge; byte-identical to serial).  A query
        string (``"xpath:"`` / ``"mso:"`` prefixed, or a legacy
        pattern) compiles against the corpus alphabet — for a streaming
        corpus pass ``alphabet=`` explicitly (or a compiled query), since
        the stream cannot be scanned twice.  ``engine`` selects the
        per-tree evaluator (``"numpy"`` for the vectorized kernel) and
        rides along to the workers when sharded.  ``limit``/``offset``
        slice each document's answers after full evaluation, exactly as
        in :func:`batch_select`.
        """
        obs.SINK.incr("pipeline.corpus_selects")
        start, stop = _slice_bounds(limit, offset)
        from ..perf.registry import validate_engine

        validate_engine(engine)
        if isinstance(query, str):
            if alphabet is None:
                if self.streaming:
                    raise ValueError(
                        "a streaming corpus cannot infer the pattern "
                        "alphabet; pass alphabet= or a compiled query"
                    )
                alphabet = self.alphabet
            query = _pattern_for(query, tuple(alphabet))
        trees: Iterable[Tree] = (document.tree for document in self)
        if not self.streaming:
            trees = [document.tree for document in self._documents or []]
        if jobs is not None and jobs != 1:
            from ..perf.parallel import parallel_map

            results = parallel_map(query, trees, jobs=jobs, engine=engine)
        else:
            from ..perf.batch import _engine_call

            call = _engine_call(query, engine=engine)
            results = [call(tree) for tree in trees]
        return [sorted(paths)[start:stop] for paths in results]
