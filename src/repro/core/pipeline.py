"""End-to-end document pipeline: XML text → validation → query → results.

The workflow the paper's introduction motivates (Figures 1–4): parse a
document, abstract it as an unranked tree, optionally validate against a
DTD, run unary queries over it, and extract the matched subdocuments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trees.dtd import DTD
from ..trees.tree import Path, Tree
from ..trees.xml import XMLElement, parse_document, to_tree
from .patterns import compile_pattern
from .query import Query


class ValidationError(ValueError):
    """The document does not conform to the DTD."""


@dataclass
class Document:
    """A parsed document with its tree abstraction."""

    element: XMLElement
    tree: Tree

    @staticmethod
    def from_text(text: str, dtd: DTD | None = None) -> "Document":
        """Parse (and optionally validate) an XML document."""
        element = parse_document(text)
        tree = to_tree(element)
        if dtd is not None:
            problems = dtd.violations(tree)
            if problems:
                rendered = "; ".join(
                    f"{'/'.join(map(str, path)) or 'root'}: {message}"
                    for path, message in problems[:5]
                )
                raise ValidationError(rendered)
        return Document(element, tree)

    @property
    def alphabet(self) -> tuple:
        """The labels occurring in the tree (query compilation alphabet)."""
        return tuple(sorted(self.tree.labels()))

    def select(self, query: Query | str) -> list[Path]:
        """Run a query (object or pattern string); document-ordered paths."""
        if isinstance(query, str):
            query = compile_pattern(query, self.alphabet)
        return sorted(query.evaluate(self.tree))

    def matches(self, query: Query | str) -> list[Tree]:
        """The matched subtrees, in document order."""
        return [self.tree.subtree(path) for path in self.select(query)]

    def element_at(self, path: Path) -> XMLElement | str:
        """The XML element (or text chunk) at a tree path."""
        node: XMLElement | str = self.element
        for index in path:
            if isinstance(node, str):
                raise KeyError(f"no element at {path!r}")
            node = node.content[index]
        return node


def run_pattern(
    text: str, pattern: str, dtd: DTD | None = None
) -> list[Tree]:
    """One-shot convenience: parse, validate, query, return subtrees."""
    document = Document.from_text(text, dtd)
    return document.matches(pattern)
