"""The bitset kernel: interned ids and Python-int state sets.

Every EXPTIME procedure in :mod:`repro.decision` manipulates *sets* —
Assumed sets, NFA frontiers, subset-construction states, the scan states
of the Theorem 6.3 closure.  This module gives them one packed
representation: objects are interned to dense integer ids and sets of
ids are single Python ints (bit ``i`` set iff id ``i`` is a member).
Union/intersection/subset tests then run word-parallel in C, and the
packed values hash as small ints — the difference between tuple-of-
frozenset scan states and the worklist engine of
:mod:`repro.decision.closure`.

Contents:

* :class:`Interner` — bidirectional object ↔ dense-id map;
* :func:`iter_bits` / :func:`mask_of` — bitset ↔ id-iterable glue;
* :class:`PackedNFA` — an :class:`~repro.strings.nfa.NFA` with interned
  states and precomputed per-symbol successor masks (ε-closure folded
  in), the workhorse of the bitset subset construction and of the
  antichain frontiers in :mod:`repro.unranked.nbta`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Iterator

from .. import obs


class Interner:
    """A bidirectional map between hashable objects and dense ids."""

    __slots__ = ("_ids", "_values")

    def __init__(self, values: Iterable[Hashable] = ()) -> None:
        self._ids: dict[Hashable, int] = {}
        self._values: list[Hashable] = []
        for value in values:
            self.intern(value)

    def intern(self, value: Hashable) -> int:
        """The id of ``value``, assigning the next free id if new."""
        idx = self._ids.get(value)
        if idx is None:
            idx = len(self._values)
            self._ids[value] = idx
            self._values.append(value)
        return idx

    def id_of(self, value: Hashable) -> int | None:
        """The id of ``value`` if already interned, else ``None``."""
        return self._ids.get(value)

    def value(self, idx: int) -> Hashable:
        """The object with id ``idx``."""
        return self._values[idx]

    def values(self) -> list[Hashable]:
        """All interned objects, in id order (a fresh list)."""
        return list(self._values)

    def mask_of(self, values: Iterable[Hashable]) -> int:
        """The bitset of the (interned-on-demand) ids of ``values``."""
        mask = 0
        for value in values:
            mask |= 1 << self.intern(value)
        return mask

    def unpack(self, mask: int) -> list[Hashable]:
        """The objects whose ids are set in ``mask``, in id order."""
        return [self._values[i] for i in iter_bits(mask)]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(ids: Iterable[int]) -> int:
    """The bitset with exactly the given bit indices set."""
    mask = 0
    for idx in ids:
        mask |= 1 << idx
    return mask


def is_subset(inner: int, outer: int) -> bool:
    """``inner ⊆ outer`` on bitsets."""
    return inner & ~outer == 0


class PackedNFA:
    """An NFA packed to dense ids with per-symbol successor masks.

    ``succ[symbol][state_id]`` is the ε-closed bitset of successors, so
    advancing a whole frontier is an OR-loop over its set bits.  The
    symbol axis stays a dict (alphabets are arbitrary hashables); the
    state axis is dense.
    """

    __slots__ = (
        "nfa",
        "states",
        "symbols",
        "initial_mask",
        "accepting_mask",
        "succ",
    )

    def __init__(self, nfa) -> None:
        from ..strings.nfa import EPSILON

        self.nfa = nfa
        self.states = Interner(sorted(nfa.states, key=repr))
        self.symbols = sorted(nfa.alphabet, key=repr)
        n = len(self.states)

        # ε-edges, then closures by fixpoint doubling.
        eps = [0] * n
        for (source, symbol), targets in nfa.transitions.items():
            if symbol is EPSILON:
                eps[self.states.intern(source)] |= self.states.mask_of(targets)
        closure = [eps[i] | (1 << i) for i in range(n)]
        changed = True
        while changed:
            changed = False
            for i in range(n):
                expanded = closure[i]
                for j in iter_bits(closure[i]):
                    expanded |= closure[j]
                if expanded != closure[i]:
                    closure[i] = expanded
                    changed = True

        def close(mask: int) -> int:
            out = 0
            for i in iter_bits(mask):
                out |= closure[i]
            return out

        self.succ: dict[Hashable, list[int]] = {}
        raw: dict[Hashable, list[int]] = {}
        for (source, symbol), targets in nfa.transitions.items():
            if symbol is EPSILON:
                continue
            rows = raw.setdefault(symbol, [0] * n)
            rows[self.states.intern(source)] |= self.states.mask_of(targets)
        for symbol, rows in raw.items():
            self.succ[symbol] = [close(mask) for mask in rows]

        self.initial_mask = close(self.states.mask_of(nfa.initials))
        self.accepting_mask = self.states.mask_of(nfa.accepting)

        sink = obs.SINK
        if sink.enabled:
            sink.incr("bitset.packed_nfas")
            sink.incr("bitset.packed_states", n)

    def step_mask(self, frontier: int, symbol: Hashable) -> int:
        """The ε-closed successor frontier after reading one symbol."""
        rows = self.succ.get(symbol)
        if rows is None:
            return 0
        out = 0
        for i in iter_bits(frontier):
            out |= rows[i]
        return out

    def accepts_mask(self, frontier: int) -> bool:
        """Does the frontier contain an accepting state?"""
        return bool(frontier & self.accepting_mask)

    def subset_of(self, mask: int) -> frozenset:
        """The frontier as a frozenset of original NFA states."""
        return frozenset(self.states.unpack(mask))
