"""Constant-delay answer enumeration: linear preprocessing, streaming cursors.

Every other entry point in this codebase *materializes* a selection —
``Document.select`` builds the complete answer list before returning its
first path, so time-to-first-answer, peak memory and response size all
scale with answer count even when the caller wants the first k hits.
This module turns the same Theorem 3.9 / Lemma 5.16 behavior-table
machinery into an *enumerator*: after the existing bottom-up typing
sweep (the linear preprocessing pass), a cursor walks only subtrees that
contain answers and yields selected nodes one at a time, in document
order, without ever building the full answer set.

The enabling fact is context-independence (Theorem 3.9): whether a
subtree contains *any* answer is fully determined by its ``(subtree
type, context)`` pair — the same pair the cached engines already key
their per-node work on.  So the module maintains, per engine, a lazily
resolved *productivity* memo::

    productive(type, ctx)  =  hit(type, ctx)  or  any child productive

and a *jump pointer* memo — for each productive ``(type, ctx)`` pair,
the child positions whose subtrees contain answers.  A cursor then runs
a preorder DFS that descends only through productive children: between
two consecutive answers it touches at most the jump chain connecting
them, never a barren subtree, which is what bounds the inter-answer
delay independently of document size.  Both memos are shared across
cursors (and documents) on the same engine, so repeated types pay once.

Entry points:

* :func:`stream_select` — the dispatcher behind
  :meth:`repro.core.pipeline.Document.select_iter`: routes marked-DBTA^u
  queries (compiled XPath/MSO/legacy patterns) and QA^u/SQA^u automata to
  their streaming cursors, on the dict engines of
  :mod:`repro.perf.trees` or the vectorized combo tables of
  :mod:`repro.perf.nptrees` (``engine="numpy"``);
* ``engine="naive"`` and unrecognized query objects degrade to a
  materialized-then-iterated select behind ``enumerate.fallbacks`` —
  results are identical either way, only the delay profile differs.

Counters: ``enumerate.cursors`` (streams opened), ``enumerate.answers``
(paths yielded), ``enumerate.nodes`` (nodes visited by cursors),
``enumerate.productive_misses`` (freshly resolved productivity flags)
and ``enumerate.fallbacks`` (cursors degraded to a materialized select).
"""

from __future__ import annotations

from .. import obs
from ..trees.tree import Path, Tree
from ..unranked.dbta import DeterministicUnrankedAutomaton
from ..unranked.twoway import UnrankedQueryAutomaton
from .npkernel import KernelOverflowError
from .registry import validate_engine
from .trees import _MARKED_ENGINES, _UNRANKED_ENGINES

#: Cap on a per-engine productivity memo.  A memo that outgrows the cap
#: is reset wholesale at the next cursor open — correctness is unchanged
#: (flags are recomputed), only amortization restarts.
MAX_PRODUCTIVE = 65536

_EXHAUSTED = object()


class _Productivity:
    """Per-engine memo of productive-subtree flags and jump pointers.

    Keys are engine-specific ``(type, context)`` identities (tuples for
    the dict engines, ``(type id, set id)`` pairs for the numpy combo
    engines); values answer "does a subtree with this type, seen under
    this context, contain at least one selected node?".  ``jumps`` memo
    the productive child positions per key — the next-answer pointers
    the cursor follows.
    """

    __slots__ = ("flags", "jumps")

    def __init__(self) -> None:
        self.flags: dict = {}
        self.jumps: dict = {}

    def productive(self, adapter, key) -> bool:
        """Resolve one key, filling the memo along the explored spine.

        Iterative DFS over the ``(type, context)`` dependency DAG (type
        ids strictly decrease from parent to child, so there are no
        cycles), short-circuiting on the first hit: resolution only
        descends until it finds one answer, and a ``True`` verdict marks
        every open frame — each is an ancestor of the hit — in one pass.
        """
        flags = self.flags
        cached = flags.get(key)
        if cached is not None:
            return cached
        before = len(flags)
        stack: list[tuple] = []
        current = key
        verdict = False
        while True:
            cached = flags.get(current)
            if cached is None:
                if adapter.hit(current):
                    flags[current] = True
                    cached = True
                else:
                    stack.append((current, iter(adapter.child_keys(current))))
            if cached:
                for open_key, _children in stack:
                    flags[open_key] = True
                verdict = True
                break
            # Advance: the next unresolved child of the innermost frame.
            while stack:
                frame_key, children = stack[-1]
                child = next(children, _EXHAUSTED)
                if child is _EXHAUSTED:
                    flags[frame_key] = False
                    stack.pop()
                    continue
                current = child
                break
            else:
                break
        sink = obs.SINK
        if sink.enabled:
            sink.incr("enumerate.productive_misses", len(flags) - before)
        return verdict

    def jump_positions(self, adapter, key, child_keys) -> tuple[int, ...]:
        """The productive child positions under ``key`` (the jump pointers)."""
        found = self.jumps.get(key)
        if found is None:
            found = tuple(
                i
                for i, child in enumerate(child_keys)
                if self.productive(adapter, child)
            )
            self.jumps[key] = found
        return found


def _productivity(engine) -> _Productivity:
    """The engine's shared productivity index (reset past the cap)."""
    found = getattr(engine, "_enum_productivity", None)
    if found is None or len(found.flags) >= MAX_PRODUCTIVE:
        found = _Productivity()
        engine._enum_productivity = found
    return found


# ----------------------------------------------------------------------
# Engine adapters: hit(key) and child_keys(key) per evaluator family
# ----------------------------------------------------------------------


class _MarkedAdapter:
    """Keys ``(type id, context frozenset)`` over a dict MarkedQueryEngine."""

    __slots__ = ("engine",)

    def __init__(self, engine) -> None:
        self.engine = engine

    def hit(self, key) -> bool:
        """Is a node with this (type, context) selected?  (Figure 5 test.)"""
        engine = self.engine
        found = engine._selects.get(key)
        if found is None:
            type_id, context = key
            found = engine._marked[type_id] in context
            engine._selects[key] = found
        return found

    def child_keys(self, key) -> tuple:
        """Per-child ``(type, context)`` keys (Lemma 3.10 sibling sweeps)."""
        type_id, context = key
        engine = self.engine
        child_types = engine.types.children[type_id]
        if not child_types:
            return ()
        return tuple(zip(child_types, engine._contexts_below(type_id, context)))


class _UnrankedAdapter:
    """Keys ``(type id, Assumed frozenset)`` over a dict UnrankedQueryEngine."""

    __slots__ = ("engine",)

    def __init__(self, engine) -> None:
        self.engine = engine

    def hit(self, key) -> bool:
        """Is a node with this (type, Assumed) selected?  (Lemma 5.16 test.)"""
        type_id, assumed = key
        engine = self.engine
        label = engine.types.labels[type_id]
        select_key = (label, assumed)
        found = engine._selects.get(select_key)
        if found is None:
            selecting = engine.qa.selecting
            found = any((state, label) in selecting for state in assumed)
            engine._selects[select_key] = found
        return found

    def child_keys(self, key) -> tuple:
        """Per-child ``(type, Assumed)`` keys (behavior contributions)."""
        type_id, assumed = key
        engine = self.engine
        child_types = engine.types.children[type_id]
        if not child_types:
            return ()
        return tuple(
            zip(child_types, engine._children_assumed(type_id, assumed))
        )


class _ComboAdapter:
    """Keys ``(global type id, set id)`` over a numpy combo propagator.

    Serves both :class:`~repro.perf.nptrees.NumpyMarkedEngine` and
    :class:`~repro.perf.nptrees.NumpyUnrankedEngine` — the shared
    ``_combo`` machinery memoizes the hit bit and the per-child set-id
    row per distinct combination, so the cursor reads the exact same
    tables the level-order array passes would.
    """

    __slots__ = ("engine", "universe")

    def __init__(self, engine, universe) -> None:
        self.engine = engine
        self.universe = universe

    def hit(self, key) -> bool:
        engine = self.engine
        return bool(engine._combo_hits.data[engine._combo(*key)])

    def child_keys(self, key) -> tuple:
        type_id, set_id = key
        kids = self.universe.type_children[type_id]
        if not kids:
            return ()
        engine = self.engine
        combo = engine._combo(type_id, set_id)
        rows = engine._combo_rows
        offset = int(rows.offsets[combo])
        return tuple(zip(kids, rows.values[offset : offset + len(kids)].tolist()))


# ----------------------------------------------------------------------
# The cursors
# ----------------------------------------------------------------------


def _dict_walk(adapter, tree: Tree, root_key):
    """Preorder DFS through productive children only (dict engines).

    Yields selected paths in document order: children are pushed in
    reversed jump order so the leftmost productive subtree pops first,
    and preorder visitation of Dewey paths *is* sorted-tuple order.
    """
    productivity = _productivity(adapter.engine)
    visited = yielded = 0
    try:
        if not productivity.productive(adapter, root_key):
            return
        stack: list[tuple] = [((), tree, root_key)]
        while stack:
            path, node, key = stack.pop()
            visited += 1
            if adapter.hit(key):
                yielded += 1
                yield path
            if node.children:
                child_keys = adapter.child_keys(key)
                jumps = productivity.jump_positions(adapter, key, child_keys)
                for i in reversed(jumps):
                    stack.append((path + (i,), node.children[i], child_keys[i]))
    finally:
        sink = obs.SINK
        if sink.enabled:
            sink.incr("enumerate.nodes", visited)
            sink.incr("enumerate.answers", yielded)


def _marked_cursor(engine, tree: Tree, type_memo: dict | None):
    """Stream a dict MarkedQueryEngine; ≡ sorted(engine.evaluate(tree)).

    The preprocessing pass is :meth:`incremental_type` against
    ``type_memo`` — with a warm per-document memo (the serve path) the
    root type is an O(1) identity hit and the first answer arrives after
    walking only its jump chain.
    """
    memo = type_memo if type_memo is not None else {}
    root_type = engine.incremental_type(tree, memo)
    root_context = frozenset(engine.automaton.accepting)
    yield from _dict_walk(_MarkedAdapter(engine), tree, (root_type, root_context))


def _unranked_cursor(engine, tree: Tree):
    """Stream a dict UnrankedQueryEngine; ≡ sorted(engine.evaluate(tree))."""
    types, _pairs = engine.types.type_tree(tree, engine._build_behavior)
    root_type = types[()]
    root_states, halting = engine._root_trajectory(root_type)
    if halting is None or halting not in engine.automaton.accepting:
        return
    root_key = (root_type, frozenset(root_states))
    yield from _dict_walk(_UnrankedAdapter(engine), tree, root_key)


def _combo_walk(engine, enc, root_key):
    """Preorder DFS over an :class:`EncodedDocument` (numpy engines)."""
    from .nptrees import UNIVERSE

    adapter = _ComboAdapter(engine, UNIVERSE)
    productivity = _productivity(engine)
    visited = yielded = 0
    try:
        if not productivity.productive(adapter, root_key):
            return
        paths, types = enc.paths, enc.types
        child_start, child_index = enc.child_start, enc.child_index
        stack: list[tuple] = [(enc.size - 1, root_key)]
        while stack:
            index, key = stack.pop()
            visited += 1
            if adapter.hit(key):
                yielded += 1
                yield paths[index]
            child_keys = adapter.child_keys(key)
            if child_keys:
                start = int(child_start[index])
                jumps = productivity.jump_positions(adapter, key, child_keys)
                for i in reversed(jumps):
                    stack.append(
                        (int(child_index[start + i]), child_keys[i])
                    )
    finally:
        sink = obs.SINK
        if sink.enabled:
            sink.incr("enumerate.nodes", visited)
            sink.incr("enumerate.answers", yielded)


def _numpy_marked_stream(engine, tree: Tree, encoding):
    """Stream a NumpyMarkedEngine, degrading exactly like its evaluate.

    Dead types (partial classifiers) fall back to the dict cursor —
    still streaming — behind ``npkernel.tree_fallbacks``; a kernel
    overflow mid-stream marks the engine dead and finishes the
    enumeration from the dict engine's materialized result (sound
    because both paths are differentially identical), behind
    ``npkernel.overflows`` + ``enumerate.fallbacks``.
    """
    from .nptrees import encode

    count = 0
    try:
        enc = encoding if encoding is not None else encode(tree)
        engine._ensure_types(enc)
        if (engine._tstate.data[enc.distinct] < 0).any():
            obs.SINK.incr("npkernel.tree_fallbacks")
            yield from _marked_cursor(
                _MARKED_ENGINES.get(engine.automaton), tree, None
            )
            return
        root_key = (int(enc.types[enc.size - 1]), engine._root_sid())
        for path in _combo_walk(engine, enc, root_key):
            count += 1
            yield path
    except KernelOverflowError:
        engine.dead = True
        obs.SINK.incr("npkernel.overflows")
        obs.SINK.incr("enumerate.fallbacks")
        full = sorted(_MARKED_ENGINES.get(engine.automaton).evaluate(tree))
        yield from full[count:]


def _numpy_unranked_stream(engine, tree: Tree):
    """Stream a NumpyUnrankedEngine; overflow degrades to its dict oracle."""
    from .nptrees import encode

    count = 0
    try:
        enc = encode(tree)
        engine._ensure_types(enc)
        root_local = int(engine._local.data[int(enc.types[enc.size - 1])])
        root_states, halting = engine.oracle._root_trajectory(root_local)
        if halting is None or halting not in engine.automaton.accepting:
            return
        root_key = (
            int(enc.types[enc.size - 1]),
            engine._intern_set(frozenset(root_states)),
        )
        for path in _combo_walk(engine, enc, root_key):
            count += 1
            yield path
    except KernelOverflowError:
        engine.dead = True
        obs.SINK.incr("npkernel.overflows")
        obs.SINK.incr("enumerate.fallbacks")
        yield from sorted(engine.oracle.evaluate(tree))[count:]


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------


def _materialized(query, tree: Tree, engine: str | None):
    """The counter-tracked fallback: iterate a materialized select."""
    from .batch import evaluate_one

    obs.SINK.incr("enumerate.fallbacks")
    return iter(sorted(evaluate_one(query, tree, engine=engine)))


def _marked_stream(automaton, tree: Tree, engine, type_memo, encoding):
    from .nptrees import tree_kernel

    kernel = tree_kernel(engine)
    if kernel is not None:
        np_engine = kernel.marked_engine(automaton)
        if not np_engine.dead:
            return _numpy_marked_stream(np_engine, tree, encoding)
        obs.SINK.incr("npkernel.tree_fallbacks")
    return _marked_cursor(_MARKED_ENGINES.get(automaton), tree, type_memo)


def _unranked_stream(qa, tree: Tree, engine):
    from .nptrees import tree_kernel

    kernel = tree_kernel(engine)
    if kernel is not None:
        np_engine = kernel.unranked_engine(qa)
        if not np_engine.dead:
            return _numpy_unranked_stream(np_engine, tree)
        obs.SINK.incr("npkernel.tree_fallbacks")
    return _unranked_cursor(_UNRANKED_ENGINES.get(qa), tree)


def stream_select(
    query,
    tree: Tree,
    engine: str | None = None,
    *,
    type_memo: dict | None = None,
    encoding=None,
):
    """An iterator of selected paths in document order; ≡ a sorted select.

    ``query`` is a compiled query object — a pair-marked
    :class:`DeterministicUnrankedAutomaton`, an
    :class:`UnrankedQueryAutomaton`, or any :class:`~repro.core.query.Query`
    wrapper (``MSOQuery``/``CompiledQuery``/``UnrankedAutomatonQuery``);
    query *strings* are compiled by the callers
    (:meth:`~repro.core.pipeline.Document.select_iter`,
    :meth:`~repro.serve.store.DocumentStore.select_iter`) so the pattern
    LRU and compile cache are shared with ``select``.

    ``engine`` follows the usual taxonomy: ``None``/``"table"`` stream
    through the dict engines, ``"numpy"`` through the vectorized combo
    tables (degrading behind the ``npkernel.*`` counters), ``"naive"``
    materializes through the uncached oracles (``enumerate.fallbacks``).

    ``type_memo`` threads a per-document incremental typing memo
    (:class:`~repro.perf.trees.TypeMemo`) into the preprocessing pass;
    ``encoding`` supplies a pre-built
    :class:`~repro.perf.nptrees.EncodedDocument` — the serve layer passes
    its per-revision state for O(1) warm preprocessing.

    Closing the returned generator stops the walk immediately; nothing
    past the last yielded answer is computed.
    """
    validate_engine(engine)
    obs.SINK.incr("enumerate.cursors")
    if engine == "naive":
        return _materialized(query, tree, engine)
    if isinstance(query, DeterministicUnrankedAutomaton):
        return _marked_stream(query, tree, engine, type_memo, encoding)
    if isinstance(query, UnrankedQueryAutomaton):
        return _unranked_stream(query, tree, engine)

    from ..core.query import CompiledQuery, MSOQuery, UnrankedAutomatonQuery

    if isinstance(query, MSOQuery) and query.engine != "naive":
        return _marked_stream(
            query.compiled(), tree, engine, type_memo, encoding
        )
    if isinstance(query, CompiledQuery):
        return _marked_stream(
            query.automaton, tree, engine, type_memo, encoding
        )
    if isinstance(query, UnrankedAutomatonQuery):
        return _unranked_stream(query.automaton, tree, engine)
    return _materialized(query, tree, engine)
