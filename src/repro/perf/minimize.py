"""Minimization engines for the compile-time automata.

Two DFA minimizers plus a DBTA^u minimizer, all consumed by the MSO
compilers (:mod:`repro.logic.compile_strings`,
:mod:`repro.logic.compile_trees`) so that every intermediate automaton
stays small before the next — potentially exponential — construction step:

* :func:`hopcroft_minimized` — Hopcroft's n·log n partition refinement
  over integer-indexed states, the default engine behind
  :meth:`repro.strings.dfa.DFA.minimized`;
* :func:`moore_minimized` — the quadratic Moore signature refinement,
  retained as the differential oracle (``engine="moore"``, mirroring the
  ``engine="naive"`` convention of :mod:`repro.decision.closure`);
* :func:`minimize_dbta` — congruence refinement for deterministic
  unranked tree automata in classifier form: reachability trimming of the
  vertical state set, per-label trimming of the horizontal DFAs, then a
  joint Moore-style refinement that merges language-equivalent vertical
  states *and* minimizes the horizontal DFAs of the regular child
  languages simultaneously;
* :func:`dbta_equivalent` — language equality of two DBTA^u via
  emptiness of the symmetric difference (Lemma 5.2 reachability on the
  NBTA view), the tree analogue of
  :meth:`repro.strings.dfa.DFA.equivalent`.

Every call records its effect under the ``minimize.*`` counters of the
:mod:`repro.obs` metrics contract (see DESIGN.md): ``minimize.calls`` /
``minimize.dbta_calls`` count invocations, ``minimize.states_before`` and
``minimize.states_after`` accumulate state counts on either side, so
``states_before - states_after`` is the total number of states removed.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from .. import obs
from ..strings.dfa import DFA, AutomatonError
from ..unranked.dbta import DeterministicUnrankedAutomaton, HorizontalClassifier
from ..unranked.nbta import UnrankedTreeAutomaton

State = Hashable
Symbol = Hashable


def _record(counter: str, before: int, after: int) -> None:
    """Accumulate one minimization's state delta under ``minimize.*``."""
    sink = obs.SINK
    if not sink.enabled:
        return
    sink.incr(counter)
    sink.incr("minimize.states_before", before)
    sink.incr("minimize.states_after", after)


def _quotient_dfa(total: DFA, block_of: dict) -> DFA:
    """The quotient DFA of a total automaton by an acceptance-respecting
    congruence, with frozenset equivalence blocks as states."""
    states = frozenset(block_of.values())
    transitions = {
        (block_of[source], symbol): block_of[target]
        for (source, symbol), target in total.transitions.items()
    }
    return DFA(
        states,
        total.alphabet,
        transitions,
        block_of[total.initial],
        frozenset(block_of[state] for state in total.accepting),
    ).trimmed()


def canonical_relabeled(dfa: DFA) -> DFA:
    """An isomorphic DFA over small integer states (BFS numbering).

    The quotient constructions above name result states as frozensets of
    originals; chained through a compilation pipeline those names nest
    ever deeper, making every later hash, sort and subset construction
    pay for exponentially growing state objects.  Relabeling after each
    reduction keeps them O(1).  The numbering is deterministic —
    breadth-first from the initial state with symbols in sorted order,
    unreachable states following in sorted order — so equal inputs yield
    byte-identical (cacheable) automata.
    """
    symbols = sorted(dfa.alphabet, key=repr)
    index: dict = {dfa.initial: 0}
    queue = deque([dfa.initial])
    while queue:
        here = queue.popleft()
        for symbol in symbols:
            target = dfa.transitions.get((here, symbol))
            if target is not None and target not in index:
                index[target] = len(index)
                queue.append(target)
    for state in sorted(
        (state for state in dfa.states if state not in index), key=repr
    ):
        index[state] = len(index)
    return DFA(
        frozenset(index.values()),
        dfa.alphabet,
        {
            (index[source], symbol): index[target]
            for (source, symbol), target in dfa.transitions.items()
        },
        index[dfa.initial],
        frozenset(index[state] for state in dfa.accepting),
    )


def canonical_relabeled_dbta(
    automaton: DeterministicUnrankedAutomaton,
) -> DeterministicUnrankedAutomaton:
    """An isomorphic DBTA^u over small integer states.

    The tree analogue of :func:`canonical_relabeled`: vertical states are
    numbered in sorted order (they double as the classifier DFAs' letters,
    so one numbering serves both roles), each label's horizontal DFA is
    BFS-renumbered over them.  Applied by the tree compiler after every
    :func:`minimize_dbta` so chained determinize/minimize stages never
    compound state-name size.
    """
    vertical = sorted(automaton.states, key=repr)
    vindex = {state: i for i, state in enumerate(vertical)}
    classifiers: dict = {}
    for label, classifier in automaton.classifiers.items():
        dfa = classifier.dfa
        hindex: dict = {dfa.initial: 0}
        queue = deque([dfa.initial])
        while queue:
            here = queue.popleft()
            for state in vertical:
                target = dfa.transitions.get((here, state))
                if target is not None and target not in hindex:
                    hindex[target] = len(hindex)
                    queue.append(target)
        for state in sorted(
            (state for state in dfa.states if state not in hindex), key=repr
        ):
            hindex[state] = len(hindex)
        quotient = DFA(
            frozenset(hindex.values()),
            frozenset(vindex.values()),
            {
                (hindex[source], vindex[letter]): hindex[target]
                for (source, letter), target in dfa.transitions.items()
            },
            hindex[dfa.initial],
            frozenset(hindex[state] for state in dfa.accepting),
        )
        classify = {
            hindex[state]: vindex[target]
            for state, target in classifier.classify.items()
        }
        classifiers[label] = HorizontalClassifier(quotient, classify)
    return DeterministicUnrankedAutomaton(
        frozenset(vindex.values()),
        automaton.alphabet,
        frozenset(vindex[state] for state in automaton.accepting),
        classifiers,
    )


def hopcroft_minimized(dfa: DFA) -> DFA:
    """The canonical minimal DFA, by Hopcroft's partition refinement.

    States are mapped to integers, inverse transitions are grouped per
    symbol, and the worklist holds (block, symbol) splitter pairs with the
    classic "replace if queued, else enqueue the smaller half" rule — the
    n·log n algorithm, in contrast to the quadratic Moore oracle
    (:func:`moore_minimized`) it is differentially tested against.
    States of the result are frozensets of original states.
    """
    total = dfa.completed().trimmed()
    originals = sorted(total.states, key=repr)
    count = len(originals)
    index = {state: i for i, state in enumerate(originals)}
    symbols = sorted(total.alphabet, key=repr)
    symbol_index = {symbol: i for i, symbol in enumerate(symbols)}

    inverse: list[list[list[int]]] = [
        [[] for _ in range(count)] for _ in symbols
    ]
    for (source, symbol), target in total.transitions.items():
        inverse[symbol_index[symbol]][index[target]].append(index[source])

    accepting = {index[state] for state in total.accepting}
    rejecting = set(range(count)) - accepting
    blocks: list[set[int]] = []
    block_id = [0] * count
    for members in (accepting, rejecting):
        if members:
            for member in members:
                block_id[member] = len(blocks)
            blocks.append(set(members))

    worklist: set[tuple[int, int]] = set()
    if len(blocks) == 2:
        smaller = 0 if len(blocks[0]) <= len(blocks[1]) else 1
        worklist = {(smaller, a) for a in range(len(symbols))}
    elif blocks:
        worklist = {(0, a) for a in range(len(symbols))}

    while worklist:
        splitter_id, a = worklist.pop()
        predecessors: set[int] = set()
        for member in blocks[splitter_id]:
            predecessors.update(inverse[a][member])
        touched: dict[int, set[int]] = {}
        for source in predecessors:
            touched.setdefault(block_id[source], set()).add(source)
        for bid, inside in touched.items():
            block = blocks[bid]
            if len(inside) == len(block):
                continue
            block -= inside
            new_id = len(blocks)
            blocks.append(inside)
            for member in inside:
                block_id[member] = new_id
            for b in range(len(symbols)):
                if (bid, b) in worklist:
                    worklist.add((new_id, b))
                else:
                    smaller_id = new_id if len(inside) <= len(block) else bid
                    worklist.add((smaller_id, b))

    frozen = [frozenset(originals[m] for m in block) for block in blocks]
    block_of = {
        originals[m]: frozen[bid] for m, bid in enumerate(block_id)
    }
    result = _quotient_dfa(total, block_of)
    _record("minimize.calls", len(dfa.states), len(result.states))
    return result


def moore_minimized(dfa: DFA) -> DFA:
    """The minimal DFA by Moore's quadratic signature refinement.

    The differential oracle for :func:`hopcroft_minimized`: iterate
    "split by (current block, tuple of successor blocks)" until the
    partition is stable.  Slower but transparently correct.
    """
    total = dfa.completed().trimmed()
    symbols = sorted(total.alphabet, key=repr)
    block_index = {
        state: (1 if state in total.accepting else 0) for state in total.states
    }
    block_count = len(set(block_index.values()))
    while True:
        signatures = {
            state: (
                block_index[state],
                tuple(
                    block_index[total.transitions[(state, symbol)]]
                    for symbol in symbols
                ),
            )
            for state in total.states
        }
        numbering: dict[tuple, int] = {}
        for state in sorted(total.states, key=repr):
            numbering.setdefault(signatures[state], len(numbering))
        block_index = {
            state: numbering[signatures[state]] for state in total.states
        }
        if len(numbering) == block_count:
            break
        block_count = len(numbering)

    members: dict[int, set] = {}
    for state, bid in block_index.items():
        members.setdefault(bid, set()).add(state)
    frozen = {bid: frozenset(group) for bid, group in members.items()}
    block_of = {state: frozen[bid] for state, bid in block_index.items()}
    result = _quotient_dfa(total, block_of)
    _record("minimize.calls", len(dfa.states), len(result.states))
    return result


# ----------------------------------------------------------------------
# DBTA^u minimization (congruence refinement in classifier form)
# ----------------------------------------------------------------------


def _reachable_vertical(automaton: DeterministicUnrankedAutomaton) -> set:
    """Vertical states realized by some tree (Lemma 5.2 fixpoint).

    A state is reached when some label's horizontal DFA, reading a word of
    already-reached states, classifies into it; the base case is the empty
    children word (leaves).
    """
    reached: set = set()
    changed = True
    while changed:
        changed = False
        for classifier in automaton.classifiers.values():
            dfa = classifier.dfa
            seen = {dfa.initial}
            frontier = [dfa.initial]
            letters = list(reached)
            while frontier:
                here = frontier.pop()
                vertical = classifier.classify[here]
                if vertical not in reached:
                    reached.add(vertical)
                    changed = True
                for letter in letters:
                    target = dfa.transitions.get((here, letter))
                    if target is not None and target not in seen:
                        seen.add(target)
                        frontier.append(target)
    return reached


def minimize_dbta(
    automaton: DeterministicUnrankedAutomaton,
) -> DeterministicUnrankedAutomaton:
    """A language-equivalent DBTA^u with merged states and minimal classifiers.

    Three phases, preserving the classifier-form invariants (per-label
    horizontal DFAs total over the vertical state set, every tree assigned
    exactly one state):

    1. *Vertical trimming* — drop vertical states no tree realizes
       (fixpoint over all labels' classifiers, the Lemma 5.2 argument).
    2. *Horizontal trimming* — restrict each label's DFA to the states
       reachable from its initial state over reachable vertical letters.
    3. *Joint congruence refinement* — Moore-style: the vertical partition
       starts at {accepting, rejecting}; each horizontal partition starts
       by the vertical block of its classification.  Horizontal blocks
       split on (classification block, successor blocks per vertical
       letter); vertical blocks split on their successor blocks as a
       *letter* of every horizontal DFA.  At the fixpoint the quotient is
       well defined and the horizontal DFAs are the minimal recognizers of
       the (merged) regular child languages.

    States of the result are frozensets of merged original states; the
    language — and hence every marked-query selection computed by
    :func:`repro.unranked.dbta.evaluate_marked_query` — is unchanged,
    which the differential suite checks via :func:`dbta_equivalent`.
    """
    before = len(automaton.states) + sum(
        len(c.dfa.states) for c in automaton.classifiers.values()
    )
    reached = _reachable_vertical(automaton)
    letters = sorted(reached, key=repr)
    labels = sorted(automaton.classifiers, key=repr)

    # Phase 2: per-label horizontal sub-DFA over reachable letters.
    horizontal_states: dict = {}
    for label in labels:
        dfa = automaton.classifiers[label].dfa
        seen = {dfa.initial}
        frontier = [dfa.initial]
        while frontier:
            here = frontier.pop()
            for letter in letters:
                target = dfa.transitions[(here, letter)]
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        horizontal_states[label] = sorted(seen, key=repr)

    # Phase 3: joint refinement.
    vblock = {q: (1 if q in automaton.accepting else 0) for q in reached}
    hblock: dict = {}
    for label in labels:
        classify = automaton.classifiers[label].classify
        hblock[label] = {
            h: vblock[classify[h]] for h in horizontal_states[label]
        }

    changed = True
    while changed:
        changed = False
        for label in labels:
            classifier = automaton.classifiers[label]
            blocks = hblock[label]
            signatures = {
                h: (
                    blocks[h],
                    vblock[classifier.classify[h]],
                    tuple(
                        blocks[classifier.dfa.transitions[(h, q)]]
                        for q in letters
                    ),
                )
                for h in horizontal_states[label]
            }
            numbering: dict[tuple, int] = {}
            for h in horizontal_states[label]:
                numbering.setdefault(signatures[h], len(numbering))
            if len(numbering) != len(set(blocks.values())):
                changed = True
            hblock[label] = {
                h: numbering[signatures[h]] for h in horizontal_states[label]
            }
        vertical_signatures = {
            q: (
                vblock[q],
                tuple(
                    tuple(
                        hblock[label][
                            automaton.classifiers[label].dfa.transitions[(h, q)]
                        ]
                        for h in horizontal_states[label]
                    )
                    for label in labels
                ),
            )
            for q in letters
        }
        vertical_numbering: dict[tuple, int] = {}
        for q in letters:
            vertical_numbering.setdefault(
                vertical_signatures[q], len(vertical_numbering)
            )
        if len(vertical_numbering) != len(set(vblock.values())):
            changed = True
        vblock = {q: vertical_numbering[vertical_signatures[q]] for q in letters}

    vertical_members: dict[int, set] = {}
    for q in letters:
        vertical_members.setdefault(vblock[q], set()).add(q)
    vertical_frozen = {
        bid: frozenset(group) for bid, group in vertical_members.items()
    }
    vertical_of = {q: vertical_frozen[vblock[q]] for q in letters}

    classifiers: dict = {}
    for label in labels:
        classifier = automaton.classifiers[label]
        blocks = hblock[label]
        members: dict[int, set] = {}
        for h in horizontal_states[label]:
            members.setdefault(blocks[h], set()).add(h)
        frozen = {bid: frozenset(group) for bid, group in members.items()}
        horizontal_of = {h: frozen[blocks[h]] for h in horizontal_states[label]}
        transitions = {}
        for h in horizontal_states[label]:
            for q in letters:
                transitions[(horizontal_of[h], vertical_of[q])] = horizontal_of[
                    classifier.dfa.transitions[(h, q)]
                ]
        quotient = DFA(
            frozenset(frozen.values()),
            frozenset(vertical_frozen.values()),
            transitions,
            horizontal_of[classifier.dfa.initial],
            frozenset(),
        )
        classify = {
            horizontal_of[h]: vertical_of[classifier.classify[h]]
            for h in horizontal_states[label]
        }
        classifiers[label] = HorizontalClassifier(quotient, classify)

    result = DeterministicUnrankedAutomaton(
        frozenset(vertical_frozen.values()),
        automaton.alphabet,
        frozenset(
            block
            for block in vertical_frozen.values()
            if block & automaton.accepting
        ),
        classifiers,
    )
    after = len(result.states) + sum(
        len(c.dfa.states) for c in result.classifiers.values()
    )
    _record("minimize.dbta_calls", before, after)
    return result


def dbta_equivalent(
    first: DeterministicUnrankedAutomaton,
    second: DeterministicUnrankedAutomaton,
) -> bool:
    """Language equality of two DBTA^u over the same alphabet.

    Decided by emptiness of the symmetric difference on the NBTA view:
    ``(L1 ∩ ¬L2) ∪ (L2 ∩ ¬L1)`` is built with the product and union
    constructions of :mod:`repro.unranked.nbta` and tested empty with the
    Lemma 5.2 reachability fixpoint — the tree analogue of
    :meth:`repro.strings.dfa.DFA.equivalent`, used by the differential
    suite to certify every minimized/cached compilation.
    """
    if first.alphabet != second.alphabet:
        raise AutomatonError("equivalence requires identical alphabets")
    left = first.to_nbta()
    right = second.to_nbta()
    left_only = left.intersection(second.complement().to_nbta())
    right_only = right.intersection(first.complement().to_nbta())
    symmetric: UnrankedTreeAutomaton = left_only.union(right_only)
    return symmetric.is_empty()
