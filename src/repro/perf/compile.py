"""Formula hash-consing and the content-addressed compile cache.

The MSO→automaton compilers (Theorems 2.5/3.9 for strings, 5.4/4.8/5.17
for trees) are doubly-exponential in quantifier depth, so recompiling a
formula — or any α-equivalent variant of it, which the ``fresh_var``-based
pattern helpers produce on every call — is the single most expensive
avoidable cost in the pipeline.  This module removes it in two layers:

* **Hash-consing keys** — :func:`canonical_key` maps a formula to a
  nested tuple that is invariant under bound-variable renaming
  (de-Bruijn-style indices into the binder scope), commutative-connective
  order (``And``/``Or`` chains are flattened and sorted), ``Implies``
  /``Forall``/``ForallSet`` sugar (normalized exactly as the compilers
  expand them) and double negation.  Formulas with equal keys define the
  same language per track assignment, so compiled automata may be shared.
* **Content-addressed cache** — :func:`cached` wraps an entry point's
  build function with a lookup keyed by the SHA-256 digest of
  ``(kind, canonical key, sorted alphabet, extras)``.  Hits come from an
  in-process LRU first and then, when :func:`set_disk_cache` enabled one,
  from an on-disk artifact directory (``repro ... --compile-cache DIR``).
  Disk artifacts store the *full* key payload next to the pickled value
  and are rejected on mismatch, so a digest collision (or a poisoned
  file) degrades to a miss, never to a wrong automaton.  Values that
  cannot be pickled (e.g. SQAs holding closures) silently stay
  memory-only.

Every operation is counted under the ``compile.*`` families of the
:mod:`repro.obs` metrics contract (see the DESIGN.md glossary), and the
cache snapshot is registered as ``perf.compile_cache`` in ``obs``
reports.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from collections.abc import Callable, Iterable
from pathlib import Path
from typing import Any

from .. import obs
from ..logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    Var,
)

Key = tuple


def _scope_index(variable, scope: tuple) -> tuple:
    """A variable's de-Bruijn-style key: its innermost binding position.

    ``scope`` lists the outer tracks followed by the binders crossed so
    far, so α-equivalent formulas compiled over the same track shape get
    identical keys.  Unbound variables (not expected from the compilers'
    entry points) fall back to their name.
    """
    for position in range(len(scope) - 1, -1, -1):
        if scope[position] == variable:
            return ("v", position)
    return ("free", type(variable).__name__, variable.name)


def canonical_key(formula: Formula, scope: tuple = ()) -> Key:
    """The hash-consing key of a formula relative to a binder scope.

    Nested tuples of strings and ints; equal keys imply equal languages
    over any alphabet (per track assignment given by ``scope``'s prefix).
    Normalizations applied: de-Bruijn variable indices, sorted flattened
    ``And``/``Or`` chains, symmetric ``Equal`` arguments, ``Implies`` →
    ``¬l ∨ r``, ``Forall`` → ``¬∃¬`` (matching the compilers' expansion),
    and ``¬¬φ`` → ``φ``.
    """
    if isinstance(formula, Not):
        inner = formula.inner
        if isinstance(inner, Not):
            return canonical_key(inner.inner, scope)
        return ("not", canonical_key(inner, scope))
    if isinstance(formula, (And, Or)):
        tag = "and" if isinstance(formula, And) else "or"
        kind = type(formula)
        parts: list[Key] = []
        stack = [formula]
        while stack:
            node = stack.pop()
            if isinstance(node, kind):
                stack.append(node.left)
                stack.append(node.right)
            else:
                parts.append(canonical_key(node, scope))
        parts.sort(key=repr)
        return (tag, tuple(parts))
    if isinstance(formula, Implies):
        return canonical_key(Or(Not(formula.left), formula.right), scope)
    if isinstance(formula, Exists):
        return ("exists", canonical_key(formula.inner, scope + (formula.var,)))
    if isinstance(formula, ExistsSet):
        return (
            "exists-set",
            canonical_key(formula.inner, scope + (formula.set_var,)),
        )
    if isinstance(formula, Forall):
        return canonical_key(
            Not(Exists(formula.var, Not(formula.inner))), scope
        )
    if isinstance(formula, ForallSet):
        return canonical_key(
            Not(ExistsSet(formula.set_var, Not(formula.inner))), scope
        )
    if isinstance(formula, Label):
        return ("label", _scope_index(formula.var, scope), repr(formula.label))
    if isinstance(formula, Less):
        return (
            "less",
            _scope_index(formula.left, scope),
            _scope_index(formula.right, scope),
        )
    if isinstance(formula, Equal):
        sides = sorted(
            (
                _scope_index(formula.left, scope),
                _scope_index(formula.right, scope),
            ),
            key=repr,
        )
        return ("equal", sides[0], sides[1])
    if isinstance(formula, Member):
        return (
            "member",
            _scope_index(formula.var, scope),
            _scope_index(formula.set_var, scope),
        )
    if isinstance(formula, Edge):
        return (
            "edge",
            _scope_index(formula.parent, scope),
            _scope_index(formula.child, scope),
        )
    if isinstance(formula, Descendant):
        return (
            "descendant",
            _scope_index(formula.ancestor, scope),
            _scope_index(formula.descendant, scope),
        )
    raise TypeError(f"unknown formula node {formula!r}")


def cache_payload(
    kind: str, formula: Formula, scope: tuple, alphabet: Iterable, extra: tuple = ()
) -> str:
    """The full (pre-digest) content key of a compilation artifact.

    A stable ``repr`` of ``(kind, canonical key, sorted alphabet,
    extras)`` — this exact string is stored inside every on-disk artifact
    and re-verified on load, which is what makes digest collisions safe.
    """
    return repr(
        (
            kind,
            canonical_key(formula, scope),
            tuple(sorted(repr(symbol) for symbol in alphabet)),
            extra,
        )
    )


def formula_digest(payload: str) -> str:
    """SHA-256 hex digest of a :func:`cache_payload` string."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CompileCache:
    """In-memory LRU + optional on-disk artifact store for compilations.

    Keys are content digests; the disk layer verifies the stored payload
    against the requested one before trusting an artifact.  Thread-unsafe
    by design (the compilers are single-threaded; worker processes get
    their own instance).
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self.directory: Path | None = None
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.disk_rejects = 0

    # -- lookup/store ----------------------------------------------------

    def lookup(self, digest: str, payload: str) -> tuple[bool, Any]:
        """``(True, value)`` on a memory or verified disk hit, else miss."""
        sink = obs.SINK
        if digest in self._memory:
            self._memory.move_to_end(digest)
            self.hits += 1
            if sink.enabled:
                sink.incr("compile.cache_hits")
            return True, self._memory[digest]
        value = self._disk_lookup(digest, payload)
        if value is not None:
            self.hits += 1
            self.disk_hits += 1
            if sink.enabled:
                sink.incr("compile.cache_hits")
                sink.incr("compile.disk_hits")
            self._remember(digest, value[0])
            return True, value[0]
        self.misses += 1
        if sink.enabled:
            sink.incr("compile.cache_misses")
        return False, None

    def store(self, digest: str, payload: str, value: Any) -> None:
        """Remember a freshly built artifact (and persist it if enabled)."""
        self._remember(digest, value)
        if self.directory is None:
            return
        sink = obs.SINK
        path = self.directory / f"{digest}.pkl"
        try:
            blob = pickle.dumps({"payload": payload, "value": value})
        except Exception:
            # SQAs and QARs hold rendering closures; they stay memory-only.
            if sink.enabled:
                sink.incr("compile.disk_unpicklable")
            return
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self.disk_writes += 1
        if sink.enabled:
            sink.incr("compile.disk_writes")

    def _remember(self, digest: str, value: Any) -> None:
        self._memory[digest] = value
        self._memory.move_to_end(digest)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def _disk_lookup(self, digest: str, payload: str) -> tuple[Any] | None:
        if self.directory is None:
            return None
        path = self.directory / f"{digest}.pkl"
        if not path.exists():
            return None
        try:
            artifact = pickle.loads(path.read_bytes())
        except Exception:
            artifact = None
        if (
            not isinstance(artifact, dict)
            or artifact.get("payload") != payload
        ):
            # Poisoned/colliding artifact: reject, treat as a miss.
            self.disk_rejects += 1
            if obs.SINK.enabled:
                obs.SINK.incr("compile.disk_rejects")
            return None
        return (artifact["value"],)

    # -- management ------------------------------------------------------

    def set_directory(self, directory: str | Path | None) -> None:
        """Enable (creating it if needed) or disable the on-disk layer."""
        if directory is None:
            self.directory = None
            return
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        self.directory = path

    def clear(self) -> None:
        """Drop the in-memory layer and reset counters (disk untouched)."""
        self._memory.clear()
        self.hits = self.misses = 0
        self.disk_hits = self.disk_writes = self.disk_rejects = 0

    def info(self) -> dict:
        """A cache snapshot for ``obs`` reports (mirrors ``lru_cache``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "maxsize": self.maxsize,
            "currsize": len(self._memory),
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_rejects": self.disk_rejects,
            "directory": str(self.directory) if self.directory else None,
        }


#: The process-wide compile cache shared by every entry point.
CACHE = CompileCache()


def set_disk_cache(directory: str | Path | None) -> None:
    """Point the shared cache's on-disk layer at a directory (or disable)."""
    CACHE.set_directory(directory)


def compile_cache_info() -> dict:
    """Snapshot of the shared compile cache, as a dict."""
    return CACHE.info()


def compile_cache_clear() -> None:
    """Drop the shared in-memory compile cache (on-disk artifacts remain)."""
    CACHE.clear()


obs.register_cache("perf.compile_cache", compile_cache_info)


def cached(
    kind: str,
    formula: Formula,
    scope: tuple,
    alphabet: Iterable,
    build: Callable[[], Any],
    extra: tuple = (),
) -> Any:
    """``build()`` memoized under the artifact's content digest.

    The entry-point wrapper used by ``compile_sentence``/``compile_query``
    (strings), ``compile_tree_sentence``/``compile_tree_query`` (trees)
    and the Theorem 4.8/5.17 constructions: ``kind`` namespaces the
    artifact type, ``scope`` fixes the free-variable tracks, ``extra``
    carries non-formula parameters (e.g. ``max_rank``).
    """
    payload = cache_payload(kind, formula, scope, alphabet, extra)
    digest = formula_digest(payload)
    hit, value = CACHE.lookup(digest, payload)
    if hit:
        return value
    value = build()
    CACHE.store(digest, payload, value)
    return value
