"""A tiny LRU registry mapping live objects to lazily-built engines.

Engines (behavior tables, tree-type indexes, …) are keyed by object
*identity* — the automata they serve contain dicts and are therefore not
hashable — with a weak finalizer evicting entries when the keyed object is
collected, and an LRU bound as a backstop for long-running processes.

A registry constructed with a ``name`` additionally registers a cache
snapshot provider with :func:`repro.obs.register_cache`, so every
:meth:`repro.obs.Stats.report` shows the registry's occupancy, hit/miss
counts, and evictions — the per-instance counters survive LRU eviction
(they count *events*, not live entries), which is what the eviction
differential tests assert.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, TypeVar
import weakref

from .. import obs

Engine = TypeVar("Engine")

#: Default number of engines retained per registry.
DEFAULT_CAPACITY = 128

#: Every ``engine=`` name the evaluation entry points accept
#: (``None`` always means the ``"table"`` default).
VALID_ENGINES = ("naive", "table", "numpy")


def unknown_engine(engine: object, valid: tuple = VALID_ENGINES) -> ValueError:
    """The uniform error for an unrecognized ``engine=`` choice.

    Every dispatcher raises this one format — ``unknown engine <name>:
    valid engines are ...`` — so callers see the same message whether
    the bad name reaches :func:`repro.perf.batch._engine_call`, the
    kernel resolvers, or a :mod:`repro.core.pipeline` entry point.
    """
    choices = ", ".join(repr(name) for name in valid)
    return ValueError(f"unknown engine {engine!r}: valid engines are {choices}")


def validate_engine(engine: str | None) -> str | None:
    """Check an ``engine=`` choice up front; returns it unchanged.

    Accepts ``None`` and :data:`VALID_ENGINES`; anything else raises the
    :func:`unknown_engine` ``ValueError``.  Entry points that shard work
    to subprocesses call this so a typo fails fast in the parent.
    """
    if engine is not None and engine not in VALID_ENGINES:
        raise unknown_engine(engine)
    return engine


class EngineRegistry(Generic[Engine]):
    """``get(obj)`` returns the engine built for ``obj``, caching by identity."""

    def __init__(
        self,
        factory: Callable[[object], Engine],
        capacity: int = DEFAULT_CAPACITY,
        name: str | None = None,
    ) -> None:
        self._factory = factory
        self._capacity = capacity
        self._entries: OrderedDict[int, tuple[Callable[[], object], Engine]] = (
            OrderedDict()
        )
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if name is not None:
            obs.register_cache(name, self.snapshot)

    def get(self, obj: object) -> Engine:
        """The cached engine for ``obj`` (built on first use, LRU-evicted)."""
        key = id(obj)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is obj:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.SINK.incr("engine.registry_hits")
            return entry[1]
        self.misses += 1
        obs.SINK.incr("engine.registry_misses")
        engine = self._factory(obj)
        try:
            ref: Callable[[], object] = weakref.ref(obj)
            weakref.finalize(obj, self._evict, key)
        except TypeError:  # non-weakrefable: keep a strong reference
            ref = lambda: obj  # noqa: E731
        self._entries[key] = (ref, engine)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.SINK.incr("engine.registry_evictions")
        return engine

    def _evict(self, key: int) -> None:
        """Finalizer hook: drop the entry of a collected keyed object."""
        if self._entries.pop(key, None) is not None:
            self.evictions += 1

    def snapshot(self) -> dict:
        """Occupancy and event counters, JSON-ready (a cache provider)."""
        return {
            "size": len(self._entries),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._entries)
