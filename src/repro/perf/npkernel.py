"""The numpy transition kernel: dense automata, vectorized sweeps.

The dict engines of :mod:`repro.perf.strings` pay a few Python dict hits
per position; this module compiles the same Theorem 3.9 recurrences into
*dense integer arrays* and evaluates whole words (and whole batches of
words) with array gathers and a logarithmic prefix-composition scan:

* :class:`DenseSweep` — the two sweep recurrences of one
  :class:`~repro.strings.twoway.TwoWayDFA` closed into transition
  matrices over interned *sweep states* ``(f⁻, first, cell)`` and
  *assumed* set ids.  A word's forward trajectory is then the prefix
  composition of per-position columns — computed for a whole batch at
  once by Hillis–Steele doubling (``O(S · N log N)`` vectorized work
  instead of ``O(N)`` sequential dict hits), with per-word *reset*
  letters giving an offset-indexed ragged layout: many words ride in one
  flat scan.
* :class:`NumpyQueryEngine` / :class:`NumpyTransducerEngine` — selection
  and GSQA output as boolean/code matrix gathers over the swept data,
  selectable as ``engine="numpy"`` through
  :func:`repro.perf.strings.fast_evaluate` /
  :func:`~repro.perf.strings.fast_transduce` /
  :func:`repro.perf.batch.batch_evaluate`.
* :class:`NumpyPackedNFA` — the bitset kernel's per-symbol successor
  masks re-packed with :func:`numpy.packbits`: one ``(states, bytes)``
  ``uint8`` row per symbol, so a frontier step is a row gather plus one
  ``bitwise_or`` reduction, and the antichain stores
  (:class:`MaskAntichain`, :class:`PairMaskAntichain`) decide domination
  over the *whole* antichain in one vectorized subset test.  These power
  ``engine="numpy"`` on the NBTA-emptiness and string-decision hot loops.
* :func:`export_program` / :class:`AttachedStringEngine` — a fully
  closed kernel serialized to one flat byte buffer (plus a small
  header), the payload of the shared-memory transport in
  :mod:`repro.perf.parallel`: workers attach array *views* instead of
  re-deriving (or unpickling) the closure per worker.

numpy is optional.  Every entry point degrades to the dict engines when
it is missing (counted as ``npkernel.fallbacks``), and any per-word
anomaly — an entry the closure could not compute because the underlying
machine cycles there, a capped table, a malformed run — falls back to
the dict engine for that word (``npkernel.word_fallbacks``), so results
and raised errors are *identical by construction* to the oracle's.  The
seeded differential suites in ``tests/perf/test_npkernel.py`` enforce
this.
"""

from __future__ import annotations

import pickle
from collections.abc import Hashable, Sequence

from .. import obs
from ..strings.twoway import (
    BOTTOM,
    LEFT_MARKER,
    RIGHT_MARKER,
    GeneralizedStringQA,
    NonTerminatingRunError,
    StringQueryAutomaton,
    as_symbol_sequence,
)
from ..strings.dfa import AutomatonError
from .registry import EngineRegistry
from .table import BehaviorTable

try:  # pragma: no cover - exercised via the availability tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

Symbol = Hashable

#: Sentinel sweep/assumed id for "the dict recurrence raised here" — the
#: closure records it instead of raising, and a trajectory touching it
#: sends that word to the dict engine (which raises or answers exactly
#: as the oracle would).
POISON = 0

#: Size caps for the dense spaces; a kernel that outgrows them is dead
#: and routes every call to the dict engine (``npkernel.overflows``).
MAX_SWEEP_STATES = 8192
MAX_ASSUMED_IDS = 8192
MAX_BACK_LETTERS = 16384

#: Cap on distinct transition-monoid elements tracked by a
#: :class:`_MonoidScan`; outgrowing it falls back to the (correct but
#: slower) matrix-row doubling scan, not to the dict engine.
MAX_MONOID = 1024

#: GSQA output codes below which no real output value is encoded.
_CODE_BOTTOM = 0
_CODE_CONFLICT = 1


def available() -> bool:
    """Is numpy importable in this process?"""
    return np is not None


def _count_fallback() -> None:
    obs.SINK.incr("npkernel.fallbacks")


class KernelOverflowError(RuntimeError):
    """A dense space outgrew its cap; the kernel falls back permanently."""


# ----------------------------------------------------------------------
# The prefix-composition scan
# ----------------------------------------------------------------------


def _prefix_compose(functions):
    """In-place Hillis–Steele prefix composition of function rows.

    ``functions`` is an ``(N, S)`` int array; row ``i`` is a function on
    ``range(S)``.  Afterwards row ``i`` is the composition ``f_i ∘ … ∘
    f_0`` (earliest applied first): ``log₂ N`` rounds of one aligned
    gather each, instead of ``N`` sequential applications.
    """
    count = len(functions)
    jump = 1
    while jump < count:
        functions[jump:] = np.take_along_axis(
            functions[jump:], functions[:-jump], axis=1
        )
        jump <<= 1
    return functions


class _MonoidOverflow(Exception):
    """A scan's transition monoid outgrew :data:`MAX_MONOID`."""


class _MonoidScan:
    """Prefix composition over interned transition-monoid element ids.

    The function rows a sweep composes are drawn from the (typically
    tiny) transition monoid they generate.  Interning each distinct row
    to an id and composing *ids* through a lazily filled Cayley table
    turns every doubling round of :func:`_prefix_compose` — an ``(N, S)``
    aligned gather — into one 1-D int32 gather, an ``S``-fold saving per
    round.  New products are composed on demand from the stored rows
    (each distinct pair exactly once, ever), so results are identical to
    the matrix scan by construction.
    """

    def __init__(self, matrix) -> None:
        self._size = int(matrix.shape[1])
        self._ids: dict[bytes, int] = {}
        self._count = 0
        capacity = 64
        self.rows = np.empty((capacity, self._size), dtype=np.int32)
        self.comp = np.full((capacity, capacity), -1, dtype=np.int32)
        self.identity = self._intern(np.arange(self._size, dtype=np.int32))
        base = np.ascontiguousarray(matrix, dtype=np.int32)
        self.letters = np.fromiter(
            (self._intern(row) for row in base), np.int32, count=len(base)
        )

    def _grow(self) -> None:
        capacity = len(self.rows) * 2
        rows = np.empty((capacity, self._size), dtype=np.int32)
        rows[: self._count] = self.rows[: self._count]
        comp = np.full((capacity, capacity), -1, dtype=np.int32)
        comp[: self._count, : self._count] = self.comp[
            : self._count, : self._count
        ]
        self.rows, self.comp = rows, comp

    def _intern(self, row) -> int:
        key = row.tobytes()
        found = self._ids.get(key)
        if found is None:
            if self._count >= MAX_MONOID:
                raise _MonoidOverflow
            if self._count >= len(self.rows):
                self._grow()
            found = self._count
            self.rows[found] = row
            self._ids[key] = found
            self._count += 1
        return found

    def constant(self, value: int) -> int:
        """The constant function ``s -> value`` as a monoid element.

        Word boundaries in a flat multi-word scan are these constants —
        like the matrix path's reset/seed rows, they absorb everything
        composed before them, so words cannot leak into each other.
        """
        return self._intern(
            np.full(self._size, value, dtype=np.int32)
        )

    def compose_scan(self, ids):
        """In-place doubling scan: ``ids[i]`` becomes ``e_i ∘ … ∘ e_0``."""
        count = len(ids)
        jump = 1
        while jump < count:
            later, earlier = ids[jump:], ids[: count - jump]
            found = self.comp[later, earlier]
            missing = found < 0
            if missing.any():
                pairs = np.unique(
                    np.stack([later[missing], earlier[missing]], axis=1),
                    axis=0,
                )
                for a, b in pairs.tolist():
                    self.comp[a, b] = self._intern(
                        self.rows[a][self.rows[b]]
                    )
                found = self.comp[later, earlier]
            ids[jump:] = found
            jump <<= 1
        return ids


# ----------------------------------------------------------------------
# Dense two-sweep kernel for one 2DFA
# ----------------------------------------------------------------------


class DenseSweep:
    """Both Theorem 3.9 sweeps of one 2DFA as dense transition matrices.

    Shared per automaton (via an :class:`EngineRegistry`) between the
    query and transducer engines, exactly as the dict engines share one
    :class:`~repro.perf.table.BehaviorTable` — which this class uses as
    its micro-oracle to fill matrix entries, so every dense entry is the
    interned dict recurrence's answer by construction.
    """

    def __init__(self, automaton) -> None:
        self.automaton = automaton
        self.table = BehaviorTable.for_automaton(automaton)
        self.dead = False
        # Cells (symbols + markers) interned to contiguous ids.
        self._cell_ids: dict = {}
        self._cells: list = []
        # Sweep states: (pair_id, cell_id); pair = (function_id, first).
        # Id 0 is POISON.
        self._pairs: list[tuple[int, object]] = [(-1, None)]
        self._pair_ids: dict[tuple[int, object], int] = {}
        self._sweep_states: list[tuple[int, int]] = [(-1, -1)]
        self._sweep_ids: dict[tuple[int, int], int] = {}
        # Forward transitions: cell id -> column (list over sweep ids).
        self._fwd_cols: dict[int, list[int]] = {}
        # Backward letters: (next_cell_id, pair_id) -> letter id; columns
        # over assumed ids (assumed id = table set id + 1; 0 is POISON).
        self._bletters: list[tuple[int, int]] = []
        self._bletter_ids: dict[tuple[int, int], int] = {}
        self._bwd_cols: list[list[int]] = []
        # Per-sweep-state caches.
        self._seed_aids: list[int] = [POISON]
        self._first_defined: list[bool] = [False]
        # Materialized ndarrays (rebuilt when the dict tables grow).
        self._fwd_matrix = None
        self._fwd_stamp = None
        self._bwd_matrix = None
        self._bwd_stamp = None
        # Monoid-id scans over the matrices (None: matrix fallback).
        self._fwd_scan = None
        self._fwd_scan_stamp = None
        self._fwd_monoid_ok = True
        self._bwd_scan = None
        self._bwd_scan_stamp = None
        self._bwd_monoid_ok = True
        # Dense (cell, pair) -> backward-letter id lookup.
        self._bletter_table = None
        self._lm = self._intern_cell(LEFT_MARKER)
        self._rm = self._intern_cell(RIGHT_MARKER)
        base_pair = self._intern_pair(self.table.base_id, automaton.initial)
        self.base = self._intern_sweep(base_pair, self._lm)

    # -- interning -------------------------------------------------------

    def _intern_cell(self, cell) -> int:
        found = self._cell_ids.get(cell)
        if found is None:
            found = len(self._cells)
            self._cells.append(cell)
            self._cell_ids[cell] = found
        return found

    def _intern_pair(self, function_id: int, first) -> int:
        key = (function_id, first)
        found = self._pair_ids.get(key)
        if found is None:
            found = len(self._pairs)
            self._pairs.append(key)
            self._pair_ids[key] = found
            self._seed_aids.append(-1)  # lazy
            self._first_defined.append(first is not None)
        return found

    def _intern_sweep(self, pair_id: int, cell_id: int) -> int:
        key = (pair_id, cell_id)
        found = self._sweep_ids.get(key)
        if found is None:
            found = len(self._sweep_states)
            if found > MAX_SWEEP_STATES:
                raise KernelOverflowError("sweep-state space overflow")
            self._sweep_states.append(key)
            self._sweep_ids[key] = found
        return found

    def _intern_bletter(self, cell_id: int, pair_id: int) -> int:
        key = (cell_id, pair_id)
        found = self._bletter_ids.get(key)
        if found is None:
            found = len(self._bletters)
            if found > MAX_BACK_LETTERS:
                raise KernelOverflowError("backward-letter space overflow")
            self._bletters.append(key)
            self._bletter_ids[key] = found
            self._bwd_cols.append([])
        return found

    # -- scalar recurrence fills (the dict oracle, poison on raise) ------

    def _fwd_step(self, sweep_id: int, cell_id: int) -> int:
        if sweep_id == POISON:
            return POISON
        pair_id, prev_cell_id = self._sweep_states[sweep_id]
        function_id, first = self._pairs[pair_id]
        previous = self._cells[prev_cell_id]
        cell = self._cells[cell_id]
        table = self.table
        try:
            next_function = table.step(function_id, previous, cell)
            next_first = table.first_step(function_id, first, previous)
        except NonTerminatingRunError:
            return POISON
        return self._intern_sweep(
            self._intern_pair(next_function, next_first), cell_id
        )

    def _bwd_step(self, bletter_id: int, assumed_id: int) -> int:
        if assumed_id == POISON:
            return POISON
        cell_id, pair_id = self._bletters[bletter_id]
        function_id, first = self._pairs[pair_id]
        try:
            next_set = self.table.assumed_step(
                assumed_id - 1, self._cells[cell_id], function_id, first
            )
        except NonTerminatingRunError:
            return POISON
        return next_set + 1

    def seed_aid(self, sweep_id: int) -> int:
        """The assumed id seeding the backward pass at ``rightmost``."""
        if sweep_id == POISON:
            return POISON
        pair_id, _cell = self._sweep_states[sweep_id]
        found = self._seed_aids[pair_id]
        if found < 0:
            function_id, first = self._pairs[pair_id]
            try:
                found = self.table.seed_id(function_id, first) + 1
            except NonTerminatingRunError:
                found = POISON
            self._seed_aids[pair_id] = found
        return found

    def _sweep_first_defined(self):
        """Per-*sweep-state* "is ``first`` defined" mask (POISON: False)."""
        defined = self._first_defined
        return np.array(
            [False]
            + [defined[pair_id] for pair_id, _cell in self._sweep_states[1:]],
            dtype=bool,
        )

    # -- closure ---------------------------------------------------------

    def _close_forward(self) -> None:
        """Complete every cell's column over every sweep state (fixpoint)."""
        filled = 0
        while True:
            grew = False
            for cell_id in range(len(self._cells)):
                column = self._fwd_cols.setdefault(cell_id, [POISON])
                while len(column) < len(self._sweep_states):
                    column.append(self._fwd_step(len(column), cell_id))
                    filled += 1
                    grew = True
            if not grew and all(
                len(self._fwd_cols.get(c, ())) == len(self._sweep_states)
                for c in range(len(self._cells))
            ):
                break
        if filled:
            obs.SINK.incr("npkernel.closure_steps", filled)

    def _assumed_count(self) -> int:
        return self.table.set_count() + 1

    def _close_backward(self) -> None:
        """Complete every backward letter's column over every assumed id.

        Filling may intern *new* assumed sets in the shared table, so the
        loop runs to a fixpoint; the cap bounds pathological machines.
        """
        filled = 0
        while True:
            count = self._assumed_count()
            if count > MAX_ASSUMED_IDS:
                raise KernelOverflowError("assumed-space overflow")
            grew = False
            for letter_id, column in enumerate(self._bwd_cols):
                if len(column) < count:
                    if not column:
                        column.append(POISON)
                    while len(column) < count:
                        column.append(self._bwd_step(letter_id, len(column)))
                        filled += 1
                    grew = True
            if not grew and self._assumed_count() == count:
                break
        if filled:
            obs.SINK.incr("npkernel.closure_steps", filled)

    # -- materialized matrices ------------------------------------------

    def forward_matrix(self):
        """``(cells+1, S)`` int32: per-cell columns plus the reset row."""
        self._close_forward()
        stamp = (len(self._cells), len(self._sweep_states))
        if self._fwd_stamp != stamp:
            rows = [self._fwd_cols[c] for c in range(len(self._cells))]
            rows.append([self.base] * len(self._sweep_states))  # reset
            self._fwd_matrix = np.array(rows, dtype=np.int32)
            self._fwd_stamp = stamp
            obs.SINK.incr("npkernel.rebuilds")
            obs.SINK.gauge_max("npkernel.sweep_states", stamp[1])
        return self._fwd_matrix

    def backward_matrix(self, seed_aids: Sequence[int]):
        """``(letters + seeds, A)`` int32 plus the seed-row index map."""
        self._close_backward()
        stamp = (len(self._bwd_cols), self._assumed_count())
        if self._bwd_stamp != stamp:
            base = (
                np.array(self._bwd_cols, dtype=np.int32)
                if self._bwd_cols
                else np.empty((0, stamp[1]), dtype=np.int32)
            )
            self._bwd_matrix = base
            self._bwd_stamp = stamp
            obs.SINK.incr("npkernel.rebuilds")
            obs.SINK.gauge_max("npkernel.assumed_ids", stamp[1])
        distinct = sorted(set(seed_aids))
        seed_rows = {
            aid: len(self._bwd_cols) + index
            for index, aid in enumerate(distinct)
        }
        if distinct:
            const = np.repeat(
                np.array(distinct, dtype=np.int32)[:, None],
                self._bwd_stamp[1],
                axis=1,
            )
            matrix = np.concatenate([self._bwd_matrix, const], axis=0)
        else:
            matrix = self._bwd_matrix
        return matrix, seed_rows

    # -- monoid-id scans -------------------------------------------------

    def _forward_scan(self):
        """The monoid scan over the forward matrix (None: use matrices)."""
        if not self._fwd_monoid_ok:
            return None
        if self._fwd_scan is None or self._fwd_scan_stamp != self._fwd_stamp:
            try:
                # The reset row is replaced by the monoid identity plus a
                # base-column readout, so only the cell rows are letters.
                self._fwd_scan = _MonoidScan(self._fwd_matrix[:-1])
            except _MonoidOverflow:
                self._fwd_monoid_ok = False
                self._fwd_scan = None
                obs.SINK.incr("npkernel.monoid_fallbacks")
            self._fwd_scan_stamp = self._fwd_stamp
        return self._fwd_scan

    def _backward_scan(self):
        """The monoid scan over the seedless backward matrix."""
        if not self._bwd_monoid_ok:
            return None
        if self._bwd_scan is None or self._bwd_scan_stamp != self._bwd_stamp:
            try:
                self._bwd_scan = _MonoidScan(self._bwd_matrix)
            except _MonoidOverflow:
                self._bwd_monoid_ok = False
                self._bwd_scan = None
                obs.SINK.incr("npkernel.monoid_fallbacks")
            self._bwd_scan_stamp = self._bwd_stamp
        return self._bwd_scan

    def _bletter_lookup(self, cells, pairs):
        """Vectorized ``(next cell, pair) -> backward letter id`` interning."""
        table = self._bletter_table
        n_cells, n_pairs = len(self._cells), len(self._pairs)
        if (
            table is None
            or table.shape[0] < n_cells
            or table.shape[1] < n_pairs
        ):
            table = np.full((n_cells, n_pairs), -1, dtype=np.int32)
            for letter_id, (cell_id, pair_id) in enumerate(self._bletters):
                table[cell_id, pair_id] = letter_id
            self._bletter_table = table
        found = table[cells, pairs]
        missing = found < 0
        if missing.any():
            combos = np.unique(
                np.stack([cells[missing], pairs[missing]], axis=1), axis=0
            )
            for cell_id, pair_id in combos.tolist():
                table[cell_id, pair_id] = self._intern_bletter(
                    cell_id, pair_id
                )
            found = table[cells, pairs]
        return found

    # -- the batched two-sweep scan --------------------------------------

    def sweep_batch(self, words: Sequence[tuple]):
        """Both sweeps for a whole batch, in two flat doubling scans.

        Returns, per word, ``(cell_ids, assumed_ids, rightmost)`` —
        int32 arrays over marked positions ``0 … n+1`` — or ``None``
        where the word must be answered by the dict engine.
        """
        if self.dead:
            raise KernelOverflowError("kernel is dead")
        if not words:
            return []
        cell_ids = self._cell_ids
        for word in words:
            for symbol in word:
                if symbol not in cell_ids:
                    self._intern_cell(symbol)
        fwd = self.forward_matrix()

        # Forward: flat [reset/identity, cells 1..n+1] per word — the
        # constant reset row restarts each word's composition at base.
        word_cells = []
        for word in words:
            ids = np.empty(len(word) + 2, dtype=np.int32)
            ids[0] = self._lm
            if word:
                ids[1:-1] = np.fromiter(
                    (cell_ids[symbol] for symbol in word),
                    np.int32,
                    count=len(word),
                )
            ids[-1] = self._rm
            word_cells.append(ids)
        states = self._forward_states(fwd, word_cells)
        total_positions = len(states)

        pair_of = np.fromiter(
            (pair_id for pair_id, _cell in self._sweep_states),
            np.int32,
            count=len(self._sweep_states),
        )
        first_defined = self._sweep_first_defined()
        results: list = [None] * len(words)
        sweeps: list = [None] * len(words)
        offset = 0
        for index, word in enumerate(words):
            span = len(word) + 2
            trajectory = states[offset : offset + span]
            offset += span
            if (trajectory == POISON).any():
                continue
            defined = first_defined[trajectory]
            rightmost = int(np.nonzero(defined)[0][-1])
            seed = self.seed_aid(int(trajectory[rightmost]))
            if seed == POISON:
                continue
            sweeps[index] = (trajectory, rightmost, seed)

        # Backward: flat reversed [seed, letters rightmost-1 .. 0] per word.
        back_parts = []
        spans = []
        seeds = []
        for index, word in enumerate(words):
            if sweeps[index] is None:
                continue
            trajectory, rightmost, seed = sweeps[index]
            seeds.append(seed)
            letters = np.empty(rightmost + 1, dtype=np.int32)
            if rightmost:
                cells = word_cells[index]
                letters[1:] = self._bletter_lookup(
                    cells[1 : rightmost + 1], pair_of[trajectory[:rightmost]]
                )[::-1]
            spans.append((index, rightmost + 1))
            back_parts.append(letters)
        if back_parts:
            assumed_flat = self._backward_values(back_parts, seeds)
            offset = 0
            empty_aid = self.table.empty_set_id + 1
            for (index, span), part in zip(spans, back_parts):
                values = assumed_flat[offset : offset + span]
                offset += span
                if (values == POISON).any():
                    continue
                trajectory, rightmost, _seed = sweeps[index]
                cells = word_cells[index]
                assumed = np.full(len(cells), empty_aid, dtype=np.int32)
                assumed[rightmost :: -1] = values  # noqa: E203
                results[index] = (cells, assumed, rightmost)
        sink = obs.SINK
        if sink.enabled:
            sink.incr("npkernel.sweeps", len(words))
            sink.incr("npkernel.scan_positions", int(total_positions))
        return results

    def _forward_states(self, fwd, word_cells):
        """Flat forward trajectories (sweep ids) for concatenated words."""
        scan = self._forward_scan()
        if scan is not None:
            try:
                reset = scan.constant(self.base)
                parts = []
                for ids in word_cells:
                    part = np.empty(len(ids), dtype=np.int32)
                    part[0] = reset
                    part[1:] = scan.letters[ids[1:]]
                    parts.append(part)
                composed = scan.compose_scan(np.concatenate(parts))
            except _MonoidOverflow:
                self._fwd_monoid_ok = False
                self._fwd_scan = None
                obs.SINK.incr("npkernel.monoid_fallbacks")
            else:
                return scan.rows[composed, self.base]
        reset_row = fwd.shape[0] - 1
        parts = []
        for ids in word_cells:
            part = np.empty(len(ids), dtype=np.int32)
            part[0] = reset_row
            part[1:] = ids[1:]
            parts.append(part)
        flat = np.concatenate(parts)
        return _prefix_compose(fwd[flat])[:, self.base]

    def _backward_values(self, back_parts, seeds):
        """Flat assumed-id values for the reversed backward parts.

        ``back_parts`` hold backward-letter ids from slot 1 on; slot 0 is
        the per-word seed — the monoid identity read out at the seed
        column, or a constant seed row under the matrix fallback.
        """
        bwd, seed_rows = self.backward_matrix(seeds)
        scan = self._backward_scan()
        if scan is not None:
            try:
                parts = []
                for letters, seed in zip(back_parts, seeds):
                    part = np.empty(len(letters), dtype=np.int32)
                    part[0] = scan.constant(seed)
                    part[1:] = scan.letters[letters[1:]]
                    parts.append(part)
                composed = scan.compose_scan(np.concatenate(parts))
            except _MonoidOverflow:
                self._bwd_monoid_ok = False
                self._bwd_scan = None
                obs.SINK.incr("npkernel.monoid_fallbacks")
            else:
                return scan.rows[composed, 0]
        for letters, seed in zip(back_parts, seeds):
            letters[0] = seed_rows[seed]
        flat_back = np.concatenate(back_parts)
        return _prefix_compose(bwd[flat_back])[:, 0]


_SWEEPS: EngineRegistry[DenseSweep] = EngineRegistry(
    DenseSweep, name="perf.np_sweeps"
)


# ----------------------------------------------------------------------
# Readout engines
# ----------------------------------------------------------------------


class _ReadoutEngine:
    """Shared plumbing: the dense sweep plus lazily rebuilt readout
    matrices over ``(assumed id, cell id)``."""

    def __init__(self, automaton) -> None:
        self.sweep = _SWEEPS.get(automaton)
        self._matrices = None
        self._stamp = None

    def _readout(self):
        sweep = self.sweep
        stamp = (sweep._assumed_count(), len(sweep._cells))
        if self._stamp != stamp:
            self._matrices = self._build_readout(*stamp)
            self._stamp = stamp
        return self._matrices

    def _halting_matrices(self, assumed_count, cell_count):
        """Count of halting states and acceptance per (assumed, cell)."""
        sweep = self.sweep
        table, accepting = sweep.table, sweep.automaton.accepting
        counts = np.zeros((assumed_count, cell_count), dtype=np.int8)
        accepts = np.zeros((assumed_count, cell_count), dtype=bool)
        for aid in range(1, assumed_count):
            for cid, cell in enumerate(sweep._cells):
                halters = table.halting_states(aid - 1, cell)
                counts[aid, cid] = min(len(halters), 127)
                if len(halters) == 1:
                    accepts[aid, cid] = halters[0] in accepting
        return counts, accepts

    def _dict_fallback(self, word):
        raise NotImplementedError

    def _finish(self, word, swept):
        raise NotImplementedError

    def _batch(self, words: Sequence) -> list:
        words = [as_symbol_sequence(word) for word in words]
        sweep = self.sweep
        sink = obs.SINK
        if sweep.dead:
            swept: list = [None] * len(words)
        else:
            try:
                swept = sweep.sweep_batch(words)
            except KernelOverflowError:
                sweep.dead = True
                sink.incr("npkernel.overflows")
                swept = [None] * len(words)
        results = []
        for word, data in zip(words, swept):
            if data is None:
                sink.incr("npkernel.word_fallbacks")
                results.append(self._dict_fallback(word))
            else:
                results.append(self._finish(word, data))
        return results


class NumpyQueryEngine(_ReadoutEngine):
    """``engine="numpy"`` evaluator for one :class:`StringQueryAutomaton`."""

    def __init__(self, qa: StringQueryAutomaton) -> None:
        super().__init__(qa.automaton)
        self.qa = qa

    def _build_readout(self, assumed_count, cell_count):
        sweep = self.sweep
        table, selecting = sweep.table, self.qa.selecting
        select = np.zeros((assumed_count, cell_count), dtype=bool)
        for aid in range(1, assumed_count):
            states = table.assumed_set(aid - 1)
            for cid, cell in enumerate(sweep._cells):
                select[aid, cid] = any(
                    (state, cell) in selecting for state in states
                )
        counts, accepts = self._halting_matrices(assumed_count, cell_count)
        return select, counts, accepts

    def _dict_fallback(self, word):
        from .strings import _QUERY_ENGINES

        return _QUERY_ENGINES.get(self.qa).evaluate(word)

    def _finish(self, word, swept) -> frozenset[int]:
        cells, assumed, rightmost = swept
        select, counts, accepts = self._readout()
        live_assumed = assumed[: rightmost + 1]
        live_cells = cells[: rightmost + 1]
        halting = counts[live_assumed, live_cells]
        if int(halting.sum()) != 1:
            obs.SINK.incr("npkernel.word_fallbacks")
            return self._dict_fallback(word)  # raises the oracle's error
        position = int(np.nonzero(halting)[0][0])
        if not accepts[int(assumed[position]), int(cells[position])]:
            return frozenset()
        stop = min(rightmost, len(word))
        hits = select[assumed[1 : stop + 1], cells[1 : stop + 1]]
        return frozenset((np.nonzero(hits)[0] + 1).tolist())

    def evaluate(self, word) -> frozenset[int]:
        """Selected positions; ≡ the dict engine and the naive oracle."""
        obs.SINK.incr("npkernel.evaluations")
        return self._batch([word])[0]

    def evaluate_batch(self, words: Sequence) -> list:
        """One flat scan for many words (offset-indexed ragged layout)."""
        obs.SINK.incr("npkernel.batches")
        return self._batch(words)


class NumpyTransducerEngine(_ReadoutEngine):
    """``engine="numpy"`` transducer for one :class:`GeneralizedStringQA`."""

    def __init__(self, gsqa: GeneralizedStringQA) -> None:
        super().__init__(gsqa.automaton)
        self.gsqa = gsqa
        self._values: list = []

    def _build_readout(self, assumed_count, cell_count):
        sweep = self.sweep
        table, output = sweep.table, self.gsqa.output
        value_codes: dict = {}
        self._values = []
        codes = np.zeros((assumed_count, cell_count), dtype=np.int32)
        for aid in range(1, assumed_count):
            states = table.assumed_set(aid - 1)
            for cid, cell in enumerate(sweep._cells):
                value = BOTTOM
                conflict = False
                for state in states:
                    candidate = output.get((state, cell), BOTTOM)
                    if candidate is BOTTOM:
                        continue
                    if value is not BOTTOM and value != candidate:
                        conflict = True
                        break
                    value = candidate
                if conflict:
                    codes[aid, cid] = _CODE_CONFLICT
                elif value is not BOTTOM:
                    code = value_codes.get(value)
                    if code is None:
                        code = len(self._values) + 2
                        value_codes[value] = code
                        self._values.append(value)
                    codes[aid, cid] = code
        counts, accepts = self._halting_matrices(assumed_count, cell_count)
        return codes, counts

    def _dict_fallback(self, word):
        from .strings import _TRANSDUCERS

        return _TRANSDUCERS.get(self.gsqa).transduce(word)

    def _finish(self, word, swept) -> tuple:
        cells, assumed, rightmost = swept
        codes, counts = self._readout()
        halting = counts[assumed[: rightmost + 1], cells[: rightmost + 1]]
        if int(halting.sum()) != 1:
            obs.SINK.incr("npkernel.word_fallbacks")
            return self._dict_fallback(word)  # raises the oracle's error
        stop = min(rightmost, len(word))
        outputs = np.zeros(len(word), dtype=np.int32)
        outputs[:stop] = codes[assumed[1 : stop + 1], cells[1 : stop + 1]]
        conflicts = np.nonzero(outputs == _CODE_CONFLICT)[0]
        if len(conflicts):
            raise AutomatonError(
                f"two outputs at position {int(conflicts[0]) + 1}"
            )
        missing = (np.nonzero(outputs == _CODE_BOTTOM)[0] + 1).tolist()
        if missing:
            raise AutomatonError(f"no output at positions {missing!r} of {word!r}")
        values = self._values
        return tuple(values[code - 2] for code in outputs.tolist())

    def transduce(self, word) -> tuple:
        """``M(w)``; ≡ the dict engine and the naive oracle."""
        obs.SINK.incr("npkernel.transductions")
        return self._batch([word])[0]

    def transduce_batch(self, words: Sequence) -> list:
        """One flat scan for many words."""
        obs.SINK.incr("npkernel.batches")
        return self._batch(words)


_NP_QUERY_ENGINES: EngineRegistry = EngineRegistry(
    NumpyQueryEngine, name="perf.np_query_engines"
)
_NP_TRANSDUCERS: EngineRegistry = EngineRegistry(
    NumpyTransducerEngine, name="perf.np_transducers"
)


def query_engine(qa: StringQueryAutomaton) -> NumpyQueryEngine:
    """The shared numpy evaluator of ``qa`` (requires numpy)."""
    return _NP_QUERY_ENGINES.get(qa)


def transducer_engine(gsqa: GeneralizedStringQA) -> NumpyTransducerEngine:
    """The shared numpy transducer of ``gsqa`` (requires numpy)."""
    return _NP_TRANSDUCERS.get(gsqa)


# ----------------------------------------------------------------------
# Packed-NFA successor kernel (NBTA emptiness, antichain searches)
# ----------------------------------------------------------------------


def _mask_to_bytes(mask: int, width: int):
    """A Python-int bitset as a little-bit-order uint8 array."""
    return np.frombuffer(mask.to_bytes(width, "little"), dtype=np.uint8)


class NumpyPackedNFA:
    """A :class:`~repro.perf.bitset.PackedNFA` with packbits successor rows.

    ``rows[k]`` is a ``(states, width)`` uint8 matrix — the ε-closed
    successor bitsets of symbol ``k``, eight states per byte — so one
    frontier step is a row gather plus a single ``bitwise_or`` reduce,
    independent of how many states the frontier holds.
    """

    def __init__(self, packed) -> None:
        self.packed = packed
        count = len(packed.states)
        self.count = count
        self.width = max(1, (count + 7) // 8)
        self.symbols = packed.symbols
        self.symbol_rows: dict = {}
        matrices = []
        for symbol in packed.symbols:
            rows = packed.succ.get(symbol)
            if rows is None:
                continue
            self.symbol_rows[symbol] = len(matrices)
            matrices.append(
                np.stack([_mask_to_bytes(mask, self.width) for mask in rows])
            )
        self.rows = (
            np.stack(matrices)
            if matrices
            else np.zeros((0, count, self.width), dtype=np.uint8)
        )
        self.initial = _mask_to_bytes(packed.initial_mask, self.width).copy()
        self.accepting = _mask_to_bytes(packed.accepting_mask, self.width).copy()
        obs.SINK.incr("npkernel.packed_nfas")

    def members(self, frontier) -> "np.ndarray":
        """Indices of the states set in a packed frontier."""
        return np.nonzero(
            np.unpackbits(frontier, bitorder="little", count=self.count)
        )[0]

    def step_options(self, frontier, row_ids) -> "np.ndarray":
        """OR of the successor rows of every (state, symbol) combination."""
        members = self.members(frontier)
        if not len(members) or not len(row_ids):
            return np.zeros(self.width, dtype=np.uint8)
        selected = self.rows[row_ids][:, members, :]
        return np.bitwise_or.reduce(
            selected.reshape(-1, self.width), axis=0
        )

    def step_symbol(self, frontier, symbol) -> "np.ndarray":
        """The ε-closed successor frontier after one symbol."""
        row = self.symbol_rows.get(symbol)
        if row is None:
            return np.zeros(self.width, dtype=np.uint8)
        return self.step_options(frontier, [row])

    def accepts(self, frontier) -> bool:
        """Does the packed frontier contain an accepting state?"""
        return bool(np.bitwise_and(frontier, self.accepting).any())


_NP_PACKED: EngineRegistry[NumpyPackedNFA] = EngineRegistry(
    NumpyPackedNFA, capacity=512, name="perf.np_packed_nfas"
)


def packed_nfa(packed) -> NumpyPackedNFA:
    """The shared packbits view of a :class:`PackedNFA` (requires numpy)."""
    return _NP_PACKED.get(packed)


def word_of_sets_intersects(packed, child_sets) -> bool:
    """Vectorized twin of the bitset frontier product over child sets."""
    dense = packed_nfa(packed)
    current = dense.initial
    symbol_rows = dense.symbol_rows
    for options in child_sets:
        row_ids = [
            symbol_rows[symbol] for symbol in options if symbol in symbol_rows
        ]
        current = dense.step_options(current, row_ids)
        if not current.any():
            return False
    return dense.accepts(current)


def pack_ids(ids, width: int):
    """Interned ids as a little-bit-order uint8 mask of ``width`` bytes.

    The glue between dynamically interned frontiers (the lazy selection
    NFAs of :mod:`repro.decision.strings`) and the mask antichains below.
    """
    mask = np.zeros(width, dtype=np.uint8)
    for index in ids:
        mask[index >> 3] |= 1 << (index & 7)
    return mask


class MaskAntichain:
    """⊆-maximal packed frontiers with whole-antichain domination tests.

    One vectorized subset test replaces the per-member Python loop of the
    bitset antichains: ``covers`` and ``insert`` each cost a single
    ``(k, width)`` uint8 comparison regardless of the antichain size.
    """

    def __init__(self, width: int) -> None:
        self._rows = np.zeros((0, width), dtype=np.uint8)

    def widen(self, width: int) -> None:
        """Grow the mask universe (new bits start unset in old rows)."""
        missing = width - self._rows.shape[1]
        if missing > 0:
            self._rows = np.pad(self._rows, ((0, 0), (0, missing)))

    def covers(self, mask) -> bool:
        """Is ``mask`` ⊆ some stored frontier (i.e. dominated)?"""
        if not len(self._rows):
            return False
        return bool(np.all(mask & ~self._rows == 0, axis=1).any())

    def insert(self, mask) -> None:
        """Add a ⊆-maximal frontier, dropping the rows it dominates."""
        if len(self._rows):
            keep = np.any(self._rows & ~mask != 0, axis=1)
            self._rows = self._rows[keep]
        self._rows = np.concatenate([self._rows, mask[None, :]])

    def __len__(self) -> int:
        return len(self._rows)


class PairMaskAntichain:
    """The containment-search antichain on frontier *pairs*.

    A pair ``(t₁, t₂)`` is dominated by a stored ``(a₁, a₂)`` when
    ``t₁ ⊆ a₁`` and ``a₂ ⊆ t₂`` (De Wulf–Doyen–Raskin ordering); both
    directions are one vectorized subset test each.
    """

    def __init__(self, left_width: int, right_width: int) -> None:
        self._left = np.zeros((0, left_width), dtype=np.uint8)
        self._right = np.zeros((0, right_width), dtype=np.uint8)

    def widen(self, left_width: int, right_width: int) -> None:
        """Grow either mask universe."""
        for attr, width in (("_left", left_width), ("_right", right_width)):
            rows = getattr(self, attr)
            missing = width - rows.shape[1]
            if missing > 0:
                setattr(self, attr, np.pad(rows, ((0, 0), (0, missing))))

    def covers(self, left, right) -> bool:
        """Is ``(left, right)`` dominated by a stored pair?"""
        if not len(self._left):
            return False
        dominated = np.all(left & ~self._left == 0, axis=1)
        dominated &= np.all(self._right & ~right == 0, axis=1)
        return bool(dominated.any())

    def insert(self, left, right) -> None:
        """Add a pair, dropping every stored pair it dominates."""
        if len(self._left):
            dominates = np.all(self._left & ~left == 0, axis=1)
            dominates &= np.all(right & ~self._right == 0, axis=1)
            keep = ~dominates
            self._left = self._left[keep]
            self._right = self._right[keep]
        self._left = np.concatenate([self._left, left[None, :]])
        self._right = np.concatenate([self._right, right[None, :]])

    def __len__(self) -> int:
        return len(self._left)


def shortest_word_over(packed, allowed):
    """Vectorized twin of the antichain BFS in :mod:`repro.unranked.nbta`.

    Identical expansion order and pruning rule, so the returned word is
    byte-identical to the bitset engine's.
    """
    sink = obs.SINK
    sink.incr("antichain.searches")
    dense = packed_nfa(packed)
    allowed_set = set(allowed)
    symbols = [
        symbol
        for symbol in dense.symbols
        if symbol in allowed_set and symbol in dense.symbol_rows
    ]
    row_ids = [dense.symbol_rows[symbol] for symbol in symbols]
    start = dense.initial
    if dense.accepts(start):
        return ()
    antichain = MaskAntichain(dense.width)
    antichain.insert(start)
    frontier = [(start, ())]
    while frontier:
        next_frontier = []
        for mask, word in frontier:
            for symbol, row in zip(symbols, row_ids):
                target = dense.step_options(mask, [row])
                if not target.any():
                    continue
                if dense.accepts(target):
                    return word + (symbol,)
                if antichain.covers(target):
                    sink.incr("antichain.prunes")
                    continue
                antichain.insert(target)
                if sink.enabled:
                    sink.incr("antichain.expansions")
                    sink.gauge_max("antichain.max_size", len(antichain))
                next_frontier.append((target, word + (symbol,)))
        frontier = next_frontier
    return None


# ----------------------------------------------------------------------
# Exported programs (the shared-memory packed-automaton channel)
# ----------------------------------------------------------------------

#: Arrays shipped per program, in buffer order.
_PROGRAM_ARRAYS = (
    "forward",
    "first_defined",
    "seed_aids",
    "backward",
    "bletter_lookup",
    "select",
    "halt_counts",
    "halt_accepts",
    "out_codes",
)


def export_program(query) -> tuple[bytes, bytes] | None:
    """Fully close the kernel of ``query`` and freeze it to one buffer.

    Returns ``(header, payload)`` — a small picklable header (dtypes,
    shapes, offsets, interned cells, the query itself for the fallback
    path) plus a flat byte buffer holding every dense array — or ``None``
    when numpy is missing, the query is not a string QA/GSQA, or the
    closure overflows its caps.  The buffer is what the shared-memory
    transport maps; :class:`AttachedStringEngine` evaluates directly on
    views into it, so attaching is O(1) in the automaton size.
    """
    if np is None:
        _count_fallback()
        return None
    if isinstance(query, StringQueryAutomaton):
        engine: _ReadoutEngine = query_engine(query)
        kind = "query"
    elif isinstance(query, GeneralizedStringQA):
        engine = transducer_engine(query)
        kind = "transducer"
    else:
        return None
    sweep = engine.sweep
    try:
        # Closing over the full alphabet makes the export word-agnostic.
        for symbol in sorted(sweep.automaton.alphabet, key=repr):
            sweep._intern_cell(symbol)
        sweep._close_forward()
        forward = sweep.forward_matrix()
        # Seed and backward letters for every (cell, pair) combination.
        seed_aids = np.array(
            [sweep.seed_aid(s) for s in range(len(sweep._sweep_states))],
            dtype=np.int32,
        )
        cell_count = len(sweep._cells)
        lookup = np.full(
            (cell_count, len(sweep._sweep_states)), -1, dtype=np.int32
        )
        for cell_id in range(cell_count):
            for sweep_id in range(1, len(sweep._sweep_states)):
                pair_id, _cell = sweep._sweep_states[sweep_id]
                lookup[cell_id, sweep_id] = sweep._intern_bletter(
                    cell_id, pair_id
                )
        backward, _seed_rows = sweep.backward_matrix(())
    except KernelOverflowError:
        sweep.dead = True
        obs.SINK.incr("npkernel.overflows")
        return None

    readout = engine._readout()
    if kind == "query":
        select, halt_counts, halt_accepts = readout
        out_codes = np.zeros((0, 0), dtype=np.int32)
        out_values: list = []
    else:
        out_codes, halt_counts = readout
        select = np.zeros((0, 0), dtype=bool)
        halt_accepts = np.zeros((0, 0), dtype=bool)
        out_values = list(engine._values)

    arrays = {
        "forward": np.ascontiguousarray(forward),
        "first_defined": sweep._sweep_first_defined(),
        "seed_aids": seed_aids,
        "backward": np.ascontiguousarray(backward),
        "bletter_lookup": lookup,
        "select": np.ascontiguousarray(select),
        "halt_counts": np.ascontiguousarray(halt_counts),
        "halt_accepts": np.ascontiguousarray(halt_accepts),
        "out_codes": np.ascontiguousarray(out_codes),
    }
    layout = {}
    offset = 0
    chunks = []
    for name in _PROGRAM_ARRAYS:
        array = arrays[name]
        data = array.tobytes()
        layout[name] = (str(array.dtype), array.shape, offset, len(data))
        chunks.append(data)
        offset += len(data)
    header = pickle.dumps(
        {
            "kind": kind,
            "query": query,
            "cells": list(sweep._cells),
            "base": sweep.base,
            "empty_aid": sweep.table.empty_set_id + 1,
            "out_values": out_values,
            "layout": layout,
            "payload_length": offset,
        }
    )
    obs.SINK.incr("npkernel.exports")
    return header, b"".join(chunks)


class AttachedStringEngine:
    """Evaluate a frozen exported program, typically over shared memory.

    The arrays are *views* into the provided buffer — nothing is copied
    or re-derived at attach time.  Inputs the frozen closure cannot
    answer (unknown symbols, poisoned entries) fall back to a lazily
    built dict engine from the shipped query object, preserving oracle
    semantics exactly.
    """

    def __init__(self, header: bytes, buffer) -> None:
        meta = pickle.loads(header)
        self.kind = meta["kind"]
        self.query = meta["query"]
        self.base = meta["base"]
        self.empty_aid = meta["empty_aid"]
        self.out_values = meta["out_values"]
        self.cell_ids = {cell: i for i, cell in enumerate(meta["cells"])}
        self.arrays = {}
        for name, (dtype, shape, offset, length) in meta["layout"].items():
            view = np.frombuffer(buffer, dtype=dtype, count=length // np.dtype(dtype).itemsize, offset=offset)
            self.arrays[name] = view.reshape(shape)
        self._fallback_call = None
        obs.SINK.incr("npkernel.attached_programs")

    def _fallback(self, word):
        if self._fallback_call is None:
            if self.kind == "query":
                from .strings import _QUERY_ENGINES

                self._fallback_call = _QUERY_ENGINES.get(self.query).evaluate
            else:
                from .strings import _TRANSDUCERS

                self._fallback_call = _TRANSDUCERS.get(self.query).transduce
        obs.SINK.incr("npkernel.word_fallbacks")
        return self._fallback_call(word)

    def __call__(self, word):
        word = as_symbol_sequence(word)
        cell_ids = self.cell_ids
        try:
            ids = np.array(
                [cell_ids[LEFT_MARKER]]
                + [cell_ids[symbol] for symbol in word]
                + [cell_ids[RIGHT_MARKER]],
                dtype=np.int32,
            )
        except KeyError:  # symbol outside the exported alphabet
            return self._fallback(word)
        forward = self.arrays["forward"]
        flat = np.empty(len(ids), dtype=np.int32)
        flat[0] = forward.shape[0] - 1  # reset row
        flat[1:] = ids[1:]
        states = _prefix_compose(forward[flat])[:, self.base]
        if (states == POISON).any():
            return self._fallback(word)
        defined = self.arrays["first_defined"][states]
        rightmost = int(np.nonzero(defined)[0][-1])
        seed = int(self.arrays["seed_aids"][int(states[rightmost])])
        if seed == POISON:
            return self._fallback(word)
        lookup = self.arrays["bletter_lookup"]
        letters = np.empty(rightmost + 1, dtype=np.int32)
        back_range = np.arange(rightmost - 1, -1, -1)
        letters[1:] = lookup[ids[back_range + 1], states[back_range]]
        if (letters[1:] < 0).any():
            return self._fallback(word)
        backward = self.arrays["backward"]
        seed_row = np.full(
            (1, backward.shape[1]), seed, dtype=backward.dtype
        )
        rows = np.concatenate(
            [seed_row, backward[letters[1:]]], axis=0
        )
        values = _prefix_compose(rows)[:, 0]
        if (values == POISON).any():
            return self._fallback(word)
        assumed = np.full(len(ids), self.empty_aid, dtype=np.int32)
        assumed[rightmost :: -1] = values  # noqa: E203
        halting = self.arrays["halt_counts"][
            assumed[: rightmost + 1], ids[: rightmost + 1]
        ]
        if int(halting.sum()) != 1:
            return self._fallback(word)  # raises the oracle's error
        stop = min(rightmost, len(word))
        if self.kind == "query":
            position = int(np.nonzero(halting)[0][0])
            if not self.arrays["halt_accepts"][
                int(assumed[position]), int(ids[position])
            ]:
                return frozenset()
            hits = self.arrays["select"][
                assumed[1 : stop + 1], ids[1 : stop + 1]
            ]
            return frozenset((np.nonzero(hits)[0] + 1).tolist())
        outputs = np.zeros(len(word), dtype=np.int32)
        outputs[:stop] = self.arrays["out_codes"][
            assumed[1 : stop + 1], ids[1 : stop + 1]
        ]
        conflicts = np.nonzero(outputs == _CODE_CONFLICT)[0]
        if len(conflicts):
            raise AutomatonError(
                f"two outputs at position {int(conflicts[0]) + 1}"
            )
        missing = (np.nonzero(outputs == _CODE_BOTTOM)[0] + 1).tolist()
        if missing:
            raise AutomatonError(f"no output at positions {missing!r} of {word!r}")
        values_list = self.out_values
        return tuple(values_list[code - 2] for code in outputs.tolist())
