"""Batched query evaluation: one engine, many inputs.

``batch_evaluate`` dispatches any query-like object in this codebase to
its fast cached engine and maps it over an input sequence, so table and
type-index construction is amortized across the whole batch (and — since
the engines live in identity-keyed registries — across batches too).

Accepted query objects:

* :class:`~repro.strings.twoway.StringQueryAutomaton` over words,
* :class:`~repro.strings.twoway.GeneralizedStringQA` over words
  (results are output tuples rather than position sets),
* :class:`~repro.unranked.twoway.UnrankedQueryAutomaton` over trees,
* compiled marked-alphabet DBTA^u
  (:class:`~repro.unranked.dbta.DeterministicUnrankedAutomaton`) over trees,
* any :class:`~repro.core.query.Query` — ``MSOQuery`` (compiled once,
  then the cached marked engine), ``UnrankedAutomatonQuery``,
  ``CompiledQuery``; other ``Query`` subclasses fall back to their own
  ``evaluate``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .. import obs
from ..strings.twoway import GeneralizedStringQA, StringQueryAutomaton
from ..unranked.dbta import DeterministicUnrankedAutomaton, evaluate_marked_query
from ..unranked.twoway import UnrankedQueryAutomaton
from .nptrees import tree_kernel
from .registry import validate_engine
from .strings import _QUERY_ENGINES, _TRANSDUCERS, numpy_kernel
from .trees import _MARKED_ENGINES, _UNRANKED_ENGINES


def _pair_mark(label, bit):
    """The pair marking every compiled query in this codebase uses."""
    return (label, bit)


def _uncached_marked(automaton):
    """The uncached Figure 5 two-pass — the ``engine="naive"`` oracle."""
    return lambda tree: evaluate_marked_query(automaton, tree, _pair_mark)


def _engine_call(query, engine: str | None = None):
    """The per-input evaluation callable for a query-like object.

    ``engine="numpy"`` selects the vectorized kernels — the string kernel
    of :mod:`repro.perf.npkernel` and the tree kernel of
    :mod:`repro.perf.nptrees`; without numpy installed the choice
    degrades to the table/dict engines behind ``npkernel.fallbacks``.
    ``engine="naive"`` selects the uncached differential oracles (cut
    simulation for query automata, the uncached two-pass for compiled
    queries); ``None`` / ``"table"`` the interned-dict default engines.
    Any other name raises the uniform
    :func:`repro.perf.registry.unknown_engine` ``ValueError``.
    """
    validate_engine(engine)
    if isinstance(query, StringQueryAutomaton):
        if engine == "naive":
            return query.evaluate
        kernel = numpy_kernel(engine)
        if kernel is not None:
            return kernel.query_engine(query).evaluate
        return _QUERY_ENGINES.get(query).evaluate
    if isinstance(query, GeneralizedStringQA):
        if engine == "naive":
            return query.transduce
        kernel = numpy_kernel(engine)
        if kernel is not None:
            return kernel.transducer_engine(query).transduce
        return _TRANSDUCERS.get(query).transduce
    if isinstance(query, UnrankedQueryAutomaton):
        if engine == "naive":
            return query.evaluate
        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.unranked_engine(query).evaluate
        return _UNRANKED_ENGINES.get(query).evaluate
    if isinstance(query, DeterministicUnrankedAutomaton):
        if engine == "naive":
            return _uncached_marked(query)
        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.marked_engine(query).evaluate
        return _MARKED_ENGINES.get(query).evaluate

    # Core Query objects: imported lazily (core.query does not depend on
    # this package at import time).
    from ..core.query import CompiledQuery, MSOQuery, Query, UnrankedAutomatonQuery

    if isinstance(query, MSOQuery):
        if query.engine == "naive":
            return query.evaluate
        if engine == "naive":
            return _uncached_marked(query.compiled())
        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.marked_engine(query.compiled()).evaluate
        return _MARKED_ENGINES.get(query.compiled()).evaluate
    if isinstance(query, CompiledQuery):
        if engine == "naive":
            return _uncached_marked(query.automaton)
        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.marked_engine(query.automaton).evaluate
        return _MARKED_ENGINES.get(query.automaton).evaluate
    if isinstance(query, UnrankedAutomatonQuery):
        if engine == "naive":
            return query.automaton.evaluate
        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.unranked_engine(query.automaton).evaluate
        return _UNRANKED_ENGINES.get(query.automaton).evaluate
    if isinstance(query, Query):
        return query.evaluate
    raise TypeError(f"cannot batch-evaluate {type(query).__name__} objects")


def batch_evaluate(query, inputs: Iterable, engine: str | None = None) -> list:
    """Evaluate ``query`` on every input, amortizing engine construction.

    Returns one result per input, in order: position sets for string QAs,
    output tuples for GSQAs, path sets for tree queries.

    With ``engine="numpy"`` and a string query, the whole batch is
    evaluated in one flat vectorized scan (offset-indexed ragged layout —
    see :mod:`repro.perf.npkernel`) rather than word by word.
    """
    kernel = numpy_kernel(engine) if engine == "numpy" else None
    if kernel is not None:
        if isinstance(query, StringQueryAutomaton):
            return _count_batch(kernel.query_engine(query).evaluate_batch(list(inputs)))
        if isinstance(query, GeneralizedStringQA):
            return _count_batch(
                kernel.transducer_engine(query).transduce_batch(list(inputs))
            )
    call = _engine_call(query, engine=engine)
    return _count_batch([call(item) for item in inputs])


def _count_batch(results: list) -> list:
    sink = obs.SINK
    if sink.enabled:
        sink.incr("batch.calls")
        sink.incr("batch.inputs", len(results))
    return results


def evaluate_one(query, item, engine: str | None = None):
    """``batch_evaluate`` for a single input (shares the same engines)."""
    return _engine_call(query, engine=engine)(item)
