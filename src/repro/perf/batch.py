"""Batched query evaluation: one engine, many inputs.

``batch_evaluate`` dispatches any query-like object in this codebase to
its fast cached engine and maps it over an input sequence, so table and
type-index construction is amortized across the whole batch (and — since
the engines live in identity-keyed registries — across batches too).

Accepted query objects:

* :class:`~repro.strings.twoway.StringQueryAutomaton` over words,
* :class:`~repro.strings.twoway.GeneralizedStringQA` over words
  (results are output tuples rather than position sets),
* :class:`~repro.unranked.twoway.UnrankedQueryAutomaton` over trees,
* compiled marked-alphabet DBTA^u
  (:class:`~repro.unranked.dbta.DeterministicUnrankedAutomaton`) over trees,
* any :class:`~repro.core.query.Query` — ``MSOQuery`` (compiled once,
  then the cached marked engine), ``UnrankedAutomatonQuery``,
  ``CompiledQuery``; other ``Query`` subclasses fall back to their own
  ``evaluate``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .. import obs
from ..strings.twoway import GeneralizedStringQA, StringQueryAutomaton
from ..unranked.dbta import DeterministicUnrankedAutomaton
from ..unranked.twoway import UnrankedQueryAutomaton
from .strings import _QUERY_ENGINES, _TRANSDUCERS, numpy_kernel
from .trees import _MARKED_ENGINES, _UNRANKED_ENGINES


def _engine_call(query, engine: str | None = None):
    """The per-input evaluation callable for a query-like object.

    ``engine="numpy"`` selects the vectorized kernel for the string query
    types (trees have no numpy engine yet and use their default path);
    without numpy installed the choice degrades to the table engines.
    """
    if isinstance(query, StringQueryAutomaton):
        kernel = numpy_kernel(engine)
        if kernel is not None:
            return kernel.query_engine(query).evaluate
        return _QUERY_ENGINES.get(query).evaluate
    if isinstance(query, GeneralizedStringQA):
        kernel = numpy_kernel(engine)
        if kernel is not None:
            return kernel.transducer_engine(query).transduce
        return _TRANSDUCERS.get(query).transduce
    if isinstance(query, UnrankedQueryAutomaton):
        return _UNRANKED_ENGINES.get(query).evaluate
    if isinstance(query, DeterministicUnrankedAutomaton):
        return _MARKED_ENGINES.get(query).evaluate

    # Core Query objects: imported lazily (core.query does not depend on
    # this package at import time).
    from ..core.query import CompiledQuery, MSOQuery, Query, UnrankedAutomatonQuery

    if isinstance(query, MSOQuery):
        if query.engine == "naive":
            return query.evaluate
        return _MARKED_ENGINES.get(query.compiled()).evaluate
    if isinstance(query, CompiledQuery):
        return _MARKED_ENGINES.get(query.automaton).evaluate
    if isinstance(query, UnrankedAutomatonQuery):
        return _UNRANKED_ENGINES.get(query.automaton).evaluate
    if isinstance(query, Query):
        return query.evaluate
    raise TypeError(f"cannot batch-evaluate {type(query).__name__} objects")


def batch_evaluate(query, inputs: Iterable, engine: str | None = None) -> list:
    """Evaluate ``query`` on every input, amortizing engine construction.

    Returns one result per input, in order: position sets for string QAs,
    output tuples for GSQAs, path sets for tree queries.

    With ``engine="numpy"`` and a string query, the whole batch is
    evaluated in one flat vectorized scan (offset-indexed ragged layout —
    see :mod:`repro.perf.npkernel`) rather than word by word.
    """
    kernel = numpy_kernel(engine) if engine is not None else None
    if kernel is not None:
        if isinstance(query, StringQueryAutomaton):
            return _count_batch(kernel.query_engine(query).evaluate_batch(list(inputs)))
        if isinstance(query, GeneralizedStringQA):
            return _count_batch(
                kernel.transducer_engine(query).transduce_batch(list(inputs))
            )
    call = _engine_call(query, engine=engine)
    return _count_batch([call(item) for item in inputs])


def _count_batch(results: list) -> list:
    sink = obs.SINK
    if sink.enabled:
        sink.incr("batch.calls")
        sink.incr("batch.inputs", len(results))
    return results


def evaluate_one(query, item, engine: str | None = None):
    """``batch_evaluate`` for a single input (shares the same engines)."""
    return _engine_call(query, engine=engine)(item)
