"""Behavior-composition fast paths for query evaluation.

This package makes query evaluation single-sweep and cached end-to-end:

* :class:`~repro.perf.table.BehaviorTable` — interned, memoized behavior
  functions of a 2DFA with monoid-style composition (step, doubling and
  prefix-product tables), shared across calls;
* :func:`fast_evaluate` / :func:`fast_transduce` — linear two-pass
  evaluation of string query automata and GSQAs (Theorem 3.9 / Lemma
  3.10, executable);
* :func:`fast_evaluate_unranked` / :func:`fast_evaluate_marked` — tree
  evaluation with hashed subtree types, so identical subtrees and sibling
  words are summarized once (Lemma 5.16 / Figure 5);
* :func:`batch_evaluate` — one engine, many inputs;
* :class:`~repro.perf.parallel.ParallelExecutor` /
  :func:`parallel_map` — one query, many documents, many *processes*:
  spawn-safe sharded execution with worker-local engine registries,
  adaptive chunking (:mod:`~repro.perf.shard`), submission-order merge,
  and structured :class:`~repro.perf.shard.ShardError` failures;
* :mod:`~repro.perf.bitset` — the bitset kernel (interned ids,
  Python-int state sets, :class:`PackedNFA`) powering the subset
  construction, NBTA emptiness, and the packed worklist closure of
  :mod:`repro.decision.closure`;
* :mod:`~repro.perf.npkernel` — the optional numpy kernel behind
  ``engine="numpy"``: dense two-sweep scans for string QAs/GSQAs (whole
  words and batches as array gathers plus a logarithmic prefix-composition
  scan), packbits successor masks and vectorized antichains for the
  NBTA-emptiness and decision searches, and the exported dense programs
  the shared-memory parallel transport maps into workers.  Falls back to
  the table/bitset engines — counted in ``npkernel.fallbacks`` — whenever
  numpy is missing;
* :mod:`~repro.perf.nptrees` — the tree side of the numpy kernel: a
  struct-of-arrays postorder document encoding with globally interned
  subtree types, per-distinct-type bottom-up state passes (child-sequence
  sweeps through the Cayley scan), vectorized level-order Figure 5 /
  Lemma 5.16 propagation, and :func:`~repro.perf.nptrees
  .export_tree_program` freezing the dense per-label classifier tables
  for the shared-memory transport.

The naive simulators in :mod:`repro.strings`, :mod:`repro.ranked` and
:mod:`repro.unranked` remain the reference oracles; the differential
tests in ``tests/perf/`` enforce agreement.
"""

from .batch import batch_evaluate, evaluate_one
from .bitset import Interner, PackedNFA, is_subset, iter_bits, mask_of
from .compile import (
    CompileCache,
    cached,
    canonical_key,
    compile_cache_clear,
    compile_cache_info,
    set_disk_cache,
)
from .minimize import (
    canonical_relabeled,
    canonical_relabeled_dbta,
    dbta_equivalent,
    hopcroft_minimized,
    minimize_dbta,
    moore_minimized,
)
from .nptrees import (
    AttachedTreeEngine,
    EncodedDocument,
    NumpyMarkedEngine,
    NumpyUnrankedEngine,
    export_tree_program,
    tree_kernel,
)
from .parallel import (
    ParallelExecutor,
    default_jobs,
    default_transport,
    parallel_map,
)
from .registry import EngineRegistry
from .shard import ShardError
from .strings import (
    StringQueryEngine,
    TransductionEngine,
    fast_accepts,
    fast_evaluate,
    fast_final_state,
    fast_transduce,
    numpy_kernel,
)
from .table import BehaviorTable
from .trees import (
    MarkedQueryEngine,
    UnrankedQueryEngine,
    fast_evaluate_marked,
    fast_evaluate_unranked,
    marked_engine,
)

__all__ = [
    "AttachedTreeEngine",
    "BehaviorTable",
    "CompileCache",
    "EncodedDocument",
    "EngineRegistry",
    "Interner",
    "MarkedQueryEngine",
    "NumpyMarkedEngine",
    "NumpyUnrankedEngine",
    "PackedNFA",
    "ParallelExecutor",
    "ShardError",
    "StringQueryEngine",
    "TransductionEngine",
    "UnrankedQueryEngine",
    "batch_evaluate",
    "export_tree_program",
    "tree_kernel",
    "cached",
    "canonical_key",
    "compile_cache_clear",
    "compile_cache_info",
    "canonical_relabeled",
    "canonical_relabeled_dbta",
    "dbta_equivalent",
    "default_jobs",
    "default_transport",
    "evaluate_one",
    "fast_accepts",
    "fast_evaluate",
    "fast_evaluate_marked",
    "fast_evaluate_unranked",
    "fast_final_state",
    "fast_transduce",
    "hopcroft_minimized",
    "is_subset",
    "iter_bits",
    "mask_of",
    "marked_engine",
    "minimize_dbta",
    "moore_minimized",
    "numpy_kernel",
    "parallel_map",
    "set_disk_cache",
]
