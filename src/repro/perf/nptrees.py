"""Vectorized tree-query kernel: ``engine="numpy"`` for the serving path.

This module extends the numpy kernel of :mod:`repro.perf.npkernel` from
strings to *trees* — the Lemma 5.16 QA^u/SQA^u evaluator and the
Figure 5 two-phase marked-DBTA^u propagation, i.e. the hot loop behind
``Document.select``:

* :class:`EncodedDocument` — a struct-of-arrays postorder encoding of
  one tree (label ids, arities, child-span offsets into a flat child
  index, level-order node groups), built in one pass and cached per tree
  object, with subtree types interned into a process-global
  :class:`TreeTypeUniverse` so *every* engine shares one type id space;
* per-type work is deduplicated with ``np.unique``: vertical states and
  sibling summaries are computed once per *distinct* subtree type (and
  per distinct ``(type, context)`` / ``(type, Assumed)`` combination),
  not once per node;
* horizontal child-sequence sweeps are dispatched through the existing
  :class:`~repro.perf.npkernel._MonoidScan` transition-monoid Cayley
  scan — the Lemma 3.10 forward/backward sweeps reuse the Theorem 3.9
  machinery the string kernel already built;
* the Figure 5 two-phase propagation runs as level-order array passes: a
  bottom-up per-type state pass, then one vectorized ragged scatter per
  level pushing interned context ids to children;
* :func:`export_tree_program` freezes the dense per-label classifier
  tables to one flat buffer (cached on the engine, so repeated parallel
  executors never re-encode the automaton) and
  :class:`AttachedTreeEngine` evaluates directly on shared-memory views
  of it — the tree counterpart of ``npkernel.export_program``.

Every missing-numpy / overflow / partial-classifier path silently
degrades to the dict engines of :mod:`repro.perf.trees` behind
``npkernel.*`` counters, so results *and raised errors* are identical by
construction to the oracles; the uncached evaluators remain the
differential reference.
"""

from __future__ import annotations

import pickle
import sys

from .. import obs
from ..trees.tree import Path, Tree
from ..unranked.dbta import DeterministicUnrankedAutomaton
from ..unranked.twoway import UnrankedQueryAutomaton
from .npkernel import KernelOverflowError, _MonoidOverflow, _MonoidScan
from .registry import EngineRegistry, unknown_engine
from .trees import _MARKED_ENGINES, _UNRANKED_ENGINES

try:  # pragma: no cover - exercised via the availability tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Per-type sentinel states: not yet computed / uncomputable with the
#: dense tables (the dict oracle reproduces the exact behavior, errors
#: included, for any tree touching a dead type).
_UNBUILT = -1
_DEAD = -2

#: Caps on the interned propagated-set and ``(type, set)`` combo spaces;
#: an engine that outgrows them is dead and routes every call to the
#: dict engine (``npkernel.overflows``).
MAX_TREE_SETS = 8192
MAX_TREE_COMBOS = 65536

#: Minimum total child-sequence length before a per-label batch is worth
#: routing through the Cayley scan rather than scalar table walks.
_SCAN_THRESHOLD = 16


def available() -> bool:
    """Is numpy importable in this process?"""
    return np is not None


def tree_kernel(engine: str | None):
    """Resolve an ``engine=`` choice to this module, or ``None``.

    Mirrors :func:`repro.perf.strings.numpy_kernel` for the tree
    evaluators: ``None`` / ``"table"`` select the interned-dict default,
    ``"numpy"`` this kernel; asking for numpy without numpy installed
    degrades to the dict engines and counts ``npkernel.fallbacks``.
    """
    if engine is None or engine == "table":
        return None
    if engine != "numpy":
        raise unknown_engine(engine, ("table", "numpy"))
    if available():
        return sys.modules[__name__]
    obs.SINK.incr("npkernel.fallbacks")
    return None


# ----------------------------------------------------------------------
# The shared type universe and the struct-of-arrays document encoding
# ----------------------------------------------------------------------


class TreeTypeUniverse:
    """Process-global interning of labels and subtree types.

    Types are pure shape+label data — ``(label id, child type ids)`` —
    so one universe serves every automaton: a type interned while
    serving one query is a cache hit for the next.  Ids are assigned in
    first-intern order, which is postorder within any single tree, so a
    type's children always have strictly smaller ids than the type —
    ascending id order is a valid bottom-up build order.
    """

    def __init__(self) -> None:
        self._label_ids: dict = {}
        self.labels: list = []
        self._type_ids: dict[tuple[int, tuple[int, ...]], int] = {}
        self.type_label: list[int] = []
        self.type_children: list[tuple[int, ...]] = []

    def label_id(self, label) -> int:
        """The id of ``label`` (interned on first use)."""
        found = self._label_ids.get(label)
        if found is None:
            found = len(self.labels)
            self._label_ids[label] = found
            self.labels.append(label)
        return found

    def intern(self, label_id: int, child_ids: tuple[int, ...]) -> int:
        """The global type id of ``(label, children types)``."""
        key = (label_id, child_ids)
        found = self._type_ids.get(key)
        if found is None:
            found = len(self.type_label)
            self._type_ids[key] = found
            self.type_label.append(label_id)
            self.type_children.append(child_ids)
        return found

    def __len__(self) -> int:
        return len(self.type_label)


#: The one universe per process; worker processes build their own.
UNIVERSE = TreeTypeUniverse()


class EncodedDocument:
    """One tree as flat postorder arrays (automaton-independent).

    Built in a single iterative pass: node ``i`` (postorder) carries its
    global type id, label id, arity and an offset into ``child_index``
    (the postorder indices of its children, grouped per parent), plus
    the node-index arrays of every depth level for the top-down passes
    and the Dewey path per node for result readout.  The root is the
    last postorder index.
    """

    __slots__ = (
        "size",
        "types",
        "labels",
        "arity",
        "child_start",
        "child_index",
        "levels",
        "paths",
        "distinct",
    )

    def __init__(self, tree: Tree, type_memo: dict | None = None) -> None:
        universe = UNIVERSE
        reused = 0
        n = tree.size
        types = np.empty(n, dtype=np.int32)
        labels = np.empty(n, dtype=np.int32)
        arity = np.empty(n, dtype=np.int32)
        child_start = np.empty(n, dtype=np.int32)
        child_index = np.empty(max(0, n - 1), dtype=np.int32)
        depths = np.empty(n, dtype=np.int32)
        paths: list[Path] = [()] * n
        type_of = [0] * n
        index = 0
        cpos = 0
        stack: list = [(tree, (), 0, None)]
        while stack:
            entry = stack.pop()
            if len(entry) == 4:
                node, path, depth, parent_kids = entry
                kids: list[int] = []
                stack.append((node, path, depth, parent_kids, kids))
                children = node.children
                for i in range(len(children) - 1, -1, -1):
                    stack.append((children[i], path + (i,), depth + 1, kids))
            else:
                node, path, depth, parent_kids, kids = entry
                hit = (
                    type_memo.get(id(node))
                    if type_memo is not None
                    else None
                )
                if hit is not None and hit[0] is node:
                    _node, tid, lid = hit
                    reused += 1
                else:
                    lid = universe.label_id(node.label)
                    tid = universe.intern(
                        lid, tuple(type_of[k] for k in kids)
                    )
                    if type_memo is not None:
                        type_memo[id(node)] = (node, tid, lid)
                type_of[index] = tid
                types[index] = tid
                labels[index] = lid
                arity[index] = len(kids)
                child_start[index] = cpos
                for k in kids:
                    child_index[cpos] = k
                    cpos += 1
                depths[index] = depth
                paths[index] = path
                if parent_kids is not None:
                    parent_kids.append(index)
                index += 1
        self.size = n
        self.types = types
        self.labels = labels
        self.arity = arity
        self.child_start = child_start
        self.child_index = child_index
        self.levels = [
            np.nonzero(depths == d)[0]
            for d in range(int(depths.max()) + 1)
        ]
        self.paths = paths
        self.distinct = np.unique(types)
        obs.SINK.incr("npkernel.tree_encodings")
        if reused:
            obs.SINK.incr("npkernel.type_memo_hits", reused)


#: Encoded documents, keyed on the tree object.  ``Tree`` has no
#: ``__weakref__`` slot, so entries hold strong references — the modest
#: capacity bounds how many trees stay resident.
_DOCUMENTS: EngineRegistry[EncodedDocument] = EngineRegistry(
    EncodedDocument, capacity=64, name="perf.tree_documents"
)


def encode(tree: Tree) -> EncodedDocument:
    """The cached struct-of-arrays encoding of ``tree``."""
    return _DOCUMENTS.get(tree)


def encode_with_memo(tree: Tree, type_memo: dict) -> EncodedDocument:
    """An encoding that reuses per-node type ids from earlier encodings.

    ``type_memo`` maps ``id(node) -> (node, type id, label id)`` and is
    updated in place.  After a structural-sharing edit every untouched
    subtree object still hits the memo, so its cached global type id is
    reused verbatim (no interning-dict probes) and only the fresh spine
    and edited fragment are typed anew — the :mod:`repro.serve`
    incremental-maintenance path.  The arrays produced are identical to
    a fresh :class:`EncodedDocument` (verified by the serve differential
    suite).  Bypasses the :func:`encode` registry: the caller owns the
    encoding's lifetime (one per document revision).
    """
    return EncodedDocument(tree, type_memo)


# ----------------------------------------------------------------------
# Small growable-array helpers
# ----------------------------------------------------------------------


class _IdArray:
    """An int32 array over a growing id space, padded with a sentinel."""

    __slots__ = ("data", "fill")

    def __init__(self, fill: int) -> None:
        self.fill = fill
        self.data = np.full(16, fill, dtype=np.int32)

    def ensure(self, size: int) -> None:
        if size <= len(self.data):
            return
        capacity = len(self.data)
        while capacity < size:
            capacity *= 2
        data = np.full(capacity, self.fill, dtype=np.int32)
        data[: len(self.data)] = self.data
        self.data = data


class _Bits:
    """A growable bool vector (per-combo selection hits)."""

    __slots__ = ("data", "count")

    def __init__(self) -> None:
        self.data = np.zeros(64, dtype=bool)
        self.count = 0

    def append(self, value: bool) -> None:
        if self.count >= len(self.data):
            data = np.zeros(len(self.data) * 2, dtype=bool)
            data[: self.count] = self.data[: self.count]
            self.data = data
        self.data[self.count] = value
        self.count += 1


class _FlatRows:
    """Append-only int32 rows in one flat buffer with per-row offsets."""

    __slots__ = ("values", "used", "offsets", "count")

    def __init__(self) -> None:
        self.values = np.empty(64, dtype=np.int32)
        self.used = 0
        self.offsets = np.empty(64, dtype=np.int64)
        self.count = 0

    def append(self, row) -> None:
        width = len(row)
        while self.used + width > len(self.values):
            grown = np.empty(len(self.values) * 2, dtype=np.int32)
            grown[: self.used] = self.values[: self.used]
            self.values = grown
        if self.count >= len(self.offsets):
            grown = np.empty(len(self.offsets) * 2, dtype=np.int64)
            grown[: self.count] = self.offsets[: self.count]
            self.offsets = grown
        self.offsets[self.count] = self.used
        if width:
            self.values[self.used : self.used + width] = row
        self.used += width
        self.count += 1


_EMPTY_I32 = None  # assigned below when numpy is present
if np is not None:
    _EMPTY_I32 = np.empty(0, dtype=np.int32)


# ----------------------------------------------------------------------
# The shared two-phase propagation (Figure 5 / Lemma 5.16 top-down pass)
# ----------------------------------------------------------------------


class _TreePropagator:
    """Level-order propagation of interned per-node sets.

    Both tree engines reduce their top-down phase to the same shape:
    each node carries an interned *set id* (a context for the marked
    engine, an Assumed set for the QA^u engine); for every distinct
    ``(type, set)`` combination the engine computes — exactly once, via
    :meth:`_new_combo` — whether such a node is selected and which set
    id each child receives.  The per-level pass is then pure array work:
    one ``np.unique`` over packed ``(type, set)`` keys, a gather for the
    hit mask, and a ragged ``np.repeat``/``cumsum`` scatter pushing the
    pooled child rows to the children.
    """

    def _init_propagation(self) -> None:
        self._combo_ids: dict[tuple[int, int], int] = {}
        self._combo_hits = _Bits()
        self._combo_rows = _FlatRows()

    def _new_combo(self, type_id: int, set_id: int):
        raise NotImplementedError  # pragma: no cover - subclass hook

    def _combo(self, type_id: int, set_id: int) -> int:
        key = (type_id, set_id)
        found = self._combo_ids.get(key)
        if found is None:
            if len(self._combo_ids) >= MAX_TREE_COMBOS:
                raise KernelOverflowError(
                    f"more than {MAX_TREE_COMBOS} (type, set) combinations"
                )
            hit, row = self._new_combo(type_id, set_id)
            found = self._combo_rows.count
            self._combo_rows.append(row)
            self._combo_hits.append(hit)
            self._combo_ids[key] = found
        return found

    def _propagate(self, enc: EncodedDocument, root_sid: int):
        """Per-node selection hits for the whole tree, level by level."""
        sids = np.full(enc.size, -1, dtype=np.int64)
        sids[enc.size - 1] = root_sid
        hits = np.zeros(enc.size, dtype=bool)
        for nodes in enc.levels:
            keys = (enc.types[nodes].astype(np.int64) << 32) | sids[nodes]
            uniq, inverse = np.unique(keys, return_inverse=True)
            cids = np.empty(len(uniq), dtype=np.int64)
            for j, key in enumerate(uniq.tolist()):
                cids[j] = self._combo(key >> 32, key & 0xFFFFFFFF)
            node_cids = cids[inverse]
            hits[nodes] = self._combo_hits.data[node_cids]
            ar = enc.arity[nodes]
            active = np.nonzero(ar)[0]
            if not len(active):
                continue
            a_nodes = nodes[active]
            a_ar = ar[active]
            a_cids = node_cids[active]
            total = int(a_ar.sum())
            rep = np.repeat(np.arange(len(a_nodes)), a_ar)
            starts = np.cumsum(a_ar) - a_ar
            pos = np.arange(total) - starts[rep]
            src = self._combo_rows.offsets[a_cids][rep] + pos
            dst = enc.child_index[enc.child_start[a_nodes][rep] + pos]
            sids[dst] = self._combo_rows.values[src]
        return hits


# ----------------------------------------------------------------------
# Figure 5: the marked-alphabet DBTA^u engine (the XML serving path)
# ----------------------------------------------------------------------


class _LabelTables:
    """Dense per-label classifier tables over interned state ids.

    ``delta0``/``delta1`` are ``(V, H+1)`` int32 next-state tables for
    the ``(label, 0)`` / ``(label, 1)`` horizontal DFAs — row ``v`` is
    the monoid letter "read child state ``v``", with horizontal id 0 the
    absorbing poison for missing transitions.  ``classify*`` map
    horizontal ids back to vertical ids (-1 at poison).  ``partial``
    flags a non-total DFA: trees touching such a label fall back
    wholesale so the dict oracle reproduces its exact error.
    """

    __slots__ = (
        "delta0",
        "classify0",
        "initial0",
        "delta1",
        "classify1",
        "initial1",
        "partial",
        "_scans",
    )

    def __init__(
        self, delta0, classify0, initial0, delta1, classify1, initial1, partial
    ) -> None:
        self.delta0 = delta0
        self.classify0 = classify0
        self.initial0 = initial0
        self.delta1 = delta1
        self.classify1 = classify1
        self.initial1 = initial1
        self.partial = partial
        self._scans: list = [None, None]

    def scan(self, which: int):
        """The lazily built Cayley scan over this table's letters.

        Returns ``None`` (permanently) once the transition monoid
        outgrows its cap — callers then use the scalar table walk, which
        is slower but identical (``npkernel.monoid_fallbacks``).
        """
        found = self._scans[which]
        if found is None:
            delta = self.delta0 if which == 0 else self.delta1
            try:
                found = _MonoidScan(np.ascontiguousarray(delta))
            except _MonoidOverflow:
                obs.SINK.incr("npkernel.monoid_fallbacks")
                found = False
            self._scans[which] = found
        return found if found is not False else None


class NumpyMarkedEngine(_TreePropagator):
    """Vectorized Figure 5 propagation for one pair-marked DBTA^u.

    Per distinct subtree type the bottom-up phase stores the vertical
    states of the unmarked and marked readings (``np.unique`` over the
    encoded tree dedupes the work; batches of new types with one label
    go through the transition-monoid Cayley scan).  The top-down phase
    interns contexts as bool masks over vertical ids and runs the
    shared level-order propagation; per ``(type, context)`` combination
    the Lemma 3.10 forward/backward sibling sweep is vectorized over the
    vertical state axis and computed once, ever.
    """

    def __init__(
        self,
        automaton: DeterministicUnrankedAutomaton,
        vstates: list | None = None,
    ) -> None:
        self.automaton = automaton
        self.dead = np is None
        self._program = None
        if self.dead:  # pragma: no cover - engines are not built without numpy
            return
        self._vstates = (
            sorted(automaton.states, key=repr) if vstates is None else vstates
        )
        self._vids = {state: i for i, state in enumerate(self._vstates)}
        self._nv = len(self._vstates)
        self._accept_mask = np.fromiter(
            (state in automaton.accepting for state in self._vstates),
            dtype=bool,
            count=self._nv,
        )
        self._tstate = _IdArray(_UNBUILT)
        self._tmarked = _IdArray(_UNBUILT)
        self._labels: dict[int, _LabelTables | None] = {}
        self._set_ids: dict[bytes, int] = {}
        self._set_masks: list = []
        self._root_sid_cache: int | None = None
        self._init_propagation()

    # -- per-label dense tables -----------------------------------------

    def _dense(self, classifier):
        dfa = classifier.dfa
        hstates = sorted(dfa.states, key=repr)
        hid = {h: i + 1 for i, h in enumerate(hstates)}
        width = len(hstates) + 1
        delta = np.zeros((self._nv, width), dtype=np.int32)
        written = 0
        for (h, v), nh in dfa.transitions.items():
            vi = self._vids.get(v)
            hi = hid.get(h)
            if vi is None or hi is None:
                continue
            delta[vi, hi] = hid[nh]
            written += 1
        partial = written < self._nv * len(hstates)
        classify = np.full(width, -1, dtype=np.int32)
        for h, v in classifier.classify.items():
            vi = self._vids.get(v)
            if vi is not None:
                classify[hid[h]] = vi
        partial = partial or bool((classify[1:] < 0).any())
        return delta, classify, hid[dfa.initial], partial

    def _label_tables(self, label_id: int) -> _LabelTables | None:
        found = self._labels.get(label_id, _UNBUILT)
        if found is not _UNBUILT:
            return found
        label = UNIVERSE.labels[label_id]
        classifiers = self.automaton.classifiers
        plain = classifiers.get((label, 0))
        marked = classifiers.get((label, 1))
        if plain is None or marked is None:
            # The dict oracle raises its exact KeyError for this label.
            self._labels[label_id] = None
            return None
        delta0, classify0, initial0, partial0 = self._dense(plain)
        delta1, classify1, initial1, partial1 = self._dense(marked)
        tables = _LabelTables(
            delta0, classify0, initial0,
            delta1, classify1, initial1,
            partial0 or partial1,
        )
        self._labels[label_id] = tables
        return tables

    # -- bottom-up phase: per-type vertical states ----------------------

    def _run_seq(self, delta, initial: int, states) -> int:
        here = initial
        for v in states.tolist():
            here = int(delta[v, here])
        return here

    def _scan_finals(self, tables: _LabelTables, which: int, seqs):
        scan = tables.scan(which)
        if scan is None:
            return None
        initial = tables.initial0 if which == 0 else tables.initial1
        boundary = scan.constant(initial)
        total = sum(len(seq) for seq in seqs) + len(seqs)
        flat = np.empty(total, dtype=np.int32)
        ends = np.empty(len(seqs), dtype=np.int64)
        offset = 0
        for i, seq in enumerate(seqs):
            flat[offset] = boundary
            flat[offset + 1 : offset + 1 + len(seq)] = scan.letters[seq]
            offset += 1 + len(seq)
            ends[i] = offset - 1
        try:
            composed = scan.compose_scan(flat)
        except _MonoidOverflow:
            obs.SINK.incr("npkernel.monoid_fallbacks")
            tables._scans[which] = False
            return None
        obs.SINK.incr("npkernel.tree_scans")
        return scan.rows[composed[ends]][:, 0].tolist()

    def _build_group(self, label_id: int, group: list[int]) -> None:
        universe = UNIVERSE
        tstate, tmarked = self._tstate.data, self._tmarked.data
        tables = self._label_tables(label_id)
        if tables is None or tables.partial:
            for t in group:
                tstate[t] = tmarked[t] = _DEAD
            return
        ready: list[int] = []
        seqs: list = []
        for t in group:
            kids = universe.type_children[t]
            if kids:
                states = tstate[np.asarray(kids, dtype=np.int64)]
                if (states < 0).any():
                    tstate[t] = tmarked[t] = _DEAD
                    continue
            else:
                states = _EMPTY_I32
            ready.append(t)
            seqs.append(states)
        if not ready:
            return
        finals0 = finals1 = None
        if len(ready) > 1 and sum(len(s) for s in seqs) >= _SCAN_THRESHOLD:
            finals0 = self._scan_finals(tables, 0, seqs)
            finals1 = self._scan_finals(tables, 1, seqs)
        if finals0 is None:
            finals0 = [
                self._run_seq(tables.delta0, tables.initial0, s) for s in seqs
            ]
        if finals1 is None:
            finals1 = [
                self._run_seq(tables.delta1, tables.initial1, s) for s in seqs
            ]
        for t, h0, h1 in zip(ready, finals0, finals1):
            tstate[t] = tables.classify0[h0]
            tmarked[t] = tables.classify1[h1]

    def _ensure_types(self, enc: EncodedDocument) -> None:
        universe = UNIVERSE
        self._tstate.ensure(len(universe))
        self._tmarked.ensure(len(universe))
        state = self._tstate.data
        todo = enc.distinct[state[enc.distinct] == _UNBUILT]
        if not len(todo):
            return
        obs.SINK.incr("npkernel.tree_types", int(len(todo)))
        # Dependency rounds: ascending ids guarantee progress (children
        # have smaller ids), batching sibling-ready types per label so
        # each round's horizontal sweeps share one Cayley scan.
        pending = todo.tolist()
        while pending:
            rest: list[int] = []
            by_label: dict[int, list[int]] = {}
            for t in pending:
                if all(
                    state[c] != _UNBUILT for c in universe.type_children[t]
                ):
                    by_label.setdefault(universe.type_label[t], []).append(t)
                else:
                    rest.append(t)
            for label_id, group in by_label.items():
                self._build_group(label_id, group)
            pending = rest

    # -- top-down phase: interned contexts ------------------------------

    def _intern_mask(self, mask) -> int:
        key = mask.tobytes()
        found = self._set_ids.get(key)
        if found is None:
            if len(self._set_masks) >= MAX_TREE_SETS:
                raise KernelOverflowError(
                    f"more than {MAX_TREE_SETS} distinct contexts"
                )
            found = len(self._set_masks)
            self._set_ids[key] = found
            self._set_masks.append(np.ascontiguousarray(mask))
        return found

    def _root_sid(self) -> int:
        if self._root_sid_cache is None:
            self._root_sid_cache = self._intern_mask(self._accept_mask)
        return self._root_sid_cache

    def _new_combo(self, type_id: int, set_id: int):
        universe = UNIVERSE
        mask = self._set_masks[set_id]
        hit = bool(mask[self._tmarked.data[type_id]])
        kids = universe.type_children[type_id]
        if not kids:
            return hit, _EMPTY_I32
        tables = self._labels[universe.type_label[type_id]]
        delta0 = tables.delta0
        states = self._tstate.data[np.asarray(kids, dtype=np.int64)]
        count = len(kids)
        # Forward sweep: the horizontal state *before* each child.
        forward = np.empty(count, dtype=np.int32)
        here = tables.initial0
        states_list = states.tolist()
        for i, v in enumerate(states_list):
            forward[i] = here
            here = int(delta0[v, here])
        # Backward sweep: which horizontal states still reach a state
        # classifying into the context (vectorized over H).
        good = np.zeros(delta0.shape[1], dtype=bool)
        classified = tables.classify0 >= 0
        good[classified] = mask[tables.classify0[classified]]
        backward = np.empty((count + 1, delta0.shape[1]), dtype=bool)
        backward[count] = good
        for i in range(count - 1, -1, -1):
            backward[i] = backward[i + 1][delta0[states_list[i]]]
        # Child context i: vertical states driving forward[i] into
        # backward[i+1] — one gather over the whole vertical axis.
        row = np.empty(count, dtype=np.int32)
        for i in range(count):
            row[i] = self._intern_mask(backward[i + 1][delta0[:, forward[i]]])
        return hit, row

    # -- evaluation ------------------------------------------------------

    def _fallback(self, tree: Tree):
        obs.SINK.incr("npkernel.tree_fallbacks")
        return _MARKED_ENGINES.get(self.automaton).evaluate(tree)

    def evaluate(
        self, tree: Tree, enc: EncodedDocument | None = None
    ) -> frozenset[Path]:
        """Selected paths; ≡ the dict engine and the uncached two-pass.

        ``enc`` supplies a pre-built encoding (the incremental serving
        path builds one per document revision via
        :func:`encode_with_memo`); by default the :func:`encode`
        registry caches one per tree object.
        """
        if self.dead or np is None:
            return self._fallback(tree)
        try:
            if enc is None:
                enc = encode(tree)
            self._ensure_types(enc)
            if (self._tstate.data[enc.distinct] < 0).any():
                return self._fallback(tree)
            hits = self._propagate(enc, self._root_sid())
        except KernelOverflowError:
            self.dead = True
            obs.SINK.incr("npkernel.overflows")
            return self._fallback(tree)
        sink = obs.SINK
        if sink.enabled:
            sink.incr("npkernel.tree_evaluations")
            sink.incr("npkernel.tree_nodes", enc.size)
        paths = enc.paths
        return frozenset(paths[i] for i in np.nonzero(hits)[0].tolist())


# ----------------------------------------------------------------------
# Lemma 5.16: the QA^u / SQA^u engine
# ----------------------------------------------------------------------


class NumpyUnrankedEngine(_TreePropagator):
    """Vectorized Lemma 5.16 evaluation of one QA^u / SQA^u.

    The per-type quantities — behavior functions, excursion results
    (stays routed through the fast GSQA transducer) and per-``(type,
    Assumed)`` child contributions — come from the shared dict
    :class:`~repro.perf.trees.UnrankedQueryEngine`, used as a micro-
    oracle and warmed for both engines at once; this class contributes
    the array side: the cached struct-of-arrays encoding, ``np.unique``
    type dedup against a global-to-oracle id map, and the level-order
    vectorized propagation of interned Assumed sets.
    """

    def __init__(self, qa: UnrankedQueryAutomaton) -> None:
        self.qa = qa
        self.automaton = qa.automaton
        self.dead = np is None
        if self.dead:  # pragma: no cover - engines are not built without numpy
            return
        self.oracle = _UNRANKED_ENGINES.get(qa)
        self._local = _IdArray(_UNBUILT)
        self._set_ids: dict[frozenset, int] = {}
        self._sets: list[frozenset] = []
        self._init_propagation()

    def _ensure_types(self, enc: EncodedDocument) -> None:
        universe = UNIVERSE
        self._local.ensure(len(universe))
        local = self._local.data
        todo = enc.distinct[local[enc.distinct] == _UNBUILT]
        if not len(todo):
            return
        obs.SINK.incr("npkernel.tree_types", int(len(todo)))
        oracle = self.oracle
        for t in todo.tolist():
            label = universe.labels[universe.type_label[t]]
            local_kids = tuple(
                int(local[c]) for c in universe.type_children[t]
            )
            local_id, new = oracle.types.intern(label, local_kids)
            if new:
                try:
                    oracle._build_behavior(local_id)
                except BaseException:
                    oracle.types.rollback(label, local_kids)
                    raise
            local[t] = local_id

    def _intern_set(self, states: frozenset) -> int:
        found = self._set_ids.get(states)
        if found is None:
            if len(self._sets) >= MAX_TREE_SETS:
                raise KernelOverflowError(
                    f"more than {MAX_TREE_SETS} distinct Assumed sets"
                )
            found = len(self._sets)
            self._set_ids[states] = found
            self._sets.append(states)
        return found

    def _new_combo(self, type_id: int, set_id: int):
        universe = UNIVERSE
        assumed = self._sets[set_id]
        label = universe.labels[universe.type_label[type_id]]
        oracle = self.oracle
        key = (label, assumed)
        hit = oracle._selects.get(key)
        if hit is None:
            selecting = self.qa.selecting
            hit = any((state, label) in selecting for state in assumed)
            oracle._selects[key] = hit
        kids = universe.type_children[type_id]
        if not kids:
            return hit, _EMPTY_I32
        contributions = oracle._children_assumed(
            int(self._local.data[type_id]), assumed
        )
        row = np.fromiter(
            (self._intern_set(s) for s in contributions),
            dtype=np.int32,
            count=len(kids),
        )
        return hit, row

    def _fallback(self, tree: Tree):
        obs.SINK.incr("npkernel.tree_fallbacks")
        return _UNRANKED_ENGINES.get(self.qa).evaluate(tree)

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """``A(t)``; ≡ the dict engine and ``qa.evaluate(tree)``."""
        if self.dead or np is None:
            return self._fallback(tree)
        try:
            enc = encode(tree)
            self._ensure_types(enc)
            root_local = int(self._local.data[int(enc.types[enc.size - 1])])
            root_states, halting = self.oracle._root_trajectory(root_local)
            sink = obs.SINK
            if sink.enabled:
                sink.incr("npkernel.tree_evaluations")
                sink.incr("npkernel.tree_nodes", enc.size)
            if halting is None or halting not in self.automaton.accepting:
                return frozenset()
            hits = self._propagate(
                enc, self._intern_set(frozenset(root_states))
            )
        except KernelOverflowError:
            self.dead = True
            obs.SINK.incr("npkernel.overflows")
            return self._fallback(tree)
        paths = enc.paths
        return frozenset(paths[i] for i in np.nonzero(hits)[0].tolist())


# ----------------------------------------------------------------------
# Registries and entry points
# ----------------------------------------------------------------------

_NP_MARKED: EngineRegistry[NumpyMarkedEngine] = EngineRegistry(
    NumpyMarkedEngine, name="perf.np_marked_engines"
)
_NP_UNRANKED: EngineRegistry[NumpyUnrankedEngine] = EngineRegistry(
    NumpyUnrankedEngine, name="perf.np_unranked_engines"
)


def marked_engine(automaton: DeterministicUnrankedAutomaton) -> NumpyMarkedEngine:
    """The shared vectorized engine of a pair-marked DBTA^u."""
    return _NP_MARKED.get(automaton)


def unranked_engine(qa: UnrankedQueryAutomaton) -> NumpyUnrankedEngine:
    """The shared vectorized engine of a QA^u / SQA^u."""
    return _NP_UNRANKED.get(qa)


# ----------------------------------------------------------------------
# Exported tree programs (the shared-memory packed-automaton channel)
# ----------------------------------------------------------------------

_TREE_PROGRAM_ARRAYS = ("delta0", "classify0", "delta1", "classify1")


def _marked_automaton(query) -> DeterministicUnrankedAutomaton | None:
    """The pair-marked DBTA^u behind a tree query object, if any."""
    if isinstance(query, DeterministicUnrankedAutomaton):
        return query
    from ..core.query import CompiledQuery, MSOQuery

    if isinstance(query, CompiledQuery):
        return query.automaton
    if isinstance(query, MSOQuery) and query.engine != "naive":
        return query.compiled()
    return None


def export_tree_program(query) -> tuple[bytes, bytes] | None:
    """Freeze the dense per-label tables of a tree query to one buffer.

    Returns ``(header, payload)`` — a picklable header (the automaton,
    its frozen vertical-state order, per-label dtypes/shapes/offsets)
    plus one flat byte buffer holding every dense classifier table — or
    ``None`` when numpy is missing or the query carries no pair-marked
    DBTA^u.  The program is cached on the registry engine, so repeated
    parallel executors (e.g. chunked ``Corpus.stream`` serving) never
    re-encode the automaton; :class:`AttachedTreeEngine` maps the buffer
    with zero table rebuild on the worker side.
    """
    if np is None:
        obs.SINK.incr("npkernel.fallbacks")
        return None
    automaton = _marked_automaton(query)
    if automaton is None:
        return None
    engine = _NP_MARKED.get(automaton)
    if engine._program is not None:
        return engine._program
    base_labels = sorted(
        {
            key[0]
            for key in automaton.classifiers
            if isinstance(key, tuple) and len(key) == 2 and key[1] in (0, 1)
        },
        key=repr,
    )
    labels_meta: dict = {}
    chunks: list[bytes] = []
    offset = 0
    for label in base_labels:
        tables = engine._label_tables(UNIVERSE.label_id(label))
        if tables is None:
            labels_meta[label] = None
            continue
        entry = {
            "initial0": tables.initial0,
            "initial1": tables.initial1,
            "partial": tables.partial,
            "arrays": {},
        }
        for name in _TREE_PROGRAM_ARRAYS:
            array = np.ascontiguousarray(getattr(tables, name))
            data = array.tobytes()
            entry["arrays"][name] = (
                str(array.dtype), array.shape, offset, len(data)
            )
            chunks.append(data)
            offset += len(data)
        labels_meta[label] = entry
    header = pickle.dumps(
        {
            "kind": "tree_query",
            "query": query,
            "automaton": automaton,
            "vstates": engine._vstates,
            "labels": labels_meta,
            "payload_length": offset,
        }
    )
    engine._program = (header, b"".join(chunks))
    obs.SINK.incr("npkernel.tree_exports")
    return engine._program


class AttachedTreeEngine:
    """Evaluate a frozen tree program, typically over shared memory.

    The dense per-label classifier tables are *views* into the provided
    buffer — nothing is re-derived from the automaton's dict DFAs at
    attach time (only the tiny per-label Cayley-scan caches build
    lazily, per worker).  Trees the frozen tables cannot answer fall
    back to the worker-local dict engine, preserving oracle semantics
    exactly.
    """

    def __init__(self, header: bytes, buffer) -> None:
        meta = pickle.loads(header)
        self.query = meta["query"]
        engine = NumpyMarkedEngine(meta["automaton"], vstates=meta["vstates"])
        for label, entry in meta["labels"].items():
            label_id = UNIVERSE.label_id(label)
            if entry is None:
                engine._labels[label_id] = None
                continue
            arrays = {}
            for name, (dtype, shape, off, length) in entry["arrays"].items():
                view = np.frombuffer(
                    buffer,
                    dtype=dtype,
                    count=length // np.dtype(dtype).itemsize,
                    offset=off,
                )
                arrays[name] = view.reshape(shape)
            engine._labels[label_id] = _LabelTables(
                arrays["delta0"],
                arrays["classify0"],
                entry["initial0"],
                arrays["delta1"],
                arrays["classify1"],
                entry["initial1"],
                entry["partial"],
            )
        self.engine = engine
        obs.SINK.incr("npkernel.attached_tree_programs")

    def __call__(self, tree: Tree) -> frozenset[Path]:
        return self.engine.evaluate(tree)
