"""Tree query evaluation with hashed subtree types and cached behaviors.

Both tree evaluators in this module rest on one idea: in a deterministic
bottom-up (or behavior-function) computation, everything a node
contributes is determined by its *subtree type* — the label plus the
types of its children.  Interning types as small integers turns forests
with repeated structure (XML documents, generated circuits, sibling
sequences) into a handful of distinct computations:

* :class:`UnrankedQueryEngine` — the Lemma 5.16 evaluator for QA^u/SQA^u
  with per-type behavior functions, per-``(type, state)`` excursion
  results (stay transitions routed through the fast GSQA transducer of
  :mod:`repro.perf.strings`), and per-``(type, Assumed)`` child
  contributions.
* :class:`MarkedQueryEngine` — the Figure 5 two-phase propagation over a
  marked-alphabet DBTA^u (the Theorem 4.8 / §6 ``A'`` form): per-type
  subtree states, and per-``(type, context)`` sibling-word summaries
  (forward/backward horizontal sweeps — the Lemma 3.10 pattern) reused
  across nodes with identical hashed subtree types.

Both engines persist across calls via :class:`EngineRegistry`; the cut
simulators and the uncached evaluators remain the differential oracles.
"""

from __future__ import annotations

from collections.abc import Hashable

from .. import obs
from ..strings.twoway import NonTerminatingRunError
from ..trees.tree import Path, Tree
from ..unranked.dbta import DeterministicUnrankedAutomaton
from ..unranked.twoway import (
    STAY,
    StayLimitError,
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UP,
)
from .registry import EngineRegistry
from .strings import fast_transduce

State = Hashable
Label = Hashable
BehaviorFunction = dict

#: Cap on the per-engine ``(type, context) -> relative selection`` memo.
#: Entries past the cap live in a per-call overlay and are recomputed on
#: the next evaluation instead of growing the engine without bound.
MAX_REL_SELECTED = 65536

#: A per-document incremental typing memo: ``id(node) -> (node, type_id)``.
#: The node is kept in the tuple both to pin the id (CPython reuses ids of
#: collected objects) and to verify identity on lookup.
TypeMemo = dict


class _TypeIndex:
    """Shared interning of subtree types: ``(label, child types) -> id``."""

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self.labels: list[Label] = []
        self.children: list[tuple[int, ...]] = []

    def intern(self, label: Label, child_ids: tuple[int, ...]) -> tuple[int, bool]:
        """The type id plus whether it is new (first time seen)."""
        key = (label, child_ids)
        found = self._ids.get(key)
        if found is not None:
            return found, False
        index = len(self.labels)
        self._ids[key] = index
        self.labels.append(label)
        self.children.append(child_ids)
        return index, True

    def rollback(self, label: Label, child_ids: tuple[int, ...]) -> None:
        """Forget the most recently interned type (failed construction)."""
        del self._ids[(label, child_ids)]
        self.labels.pop()
        self.children.pop()

    def type_tree(self, tree: Tree, on_new) -> tuple[dict[Path, int], list]:
        """Type ids per node path (document order also returned as pairs).

        ``on_new(type_id)`` runs once per freshly interned type, after its
        children are available — the hook that builds cached per-type data.
        """
        types: dict[Path, int] = {}
        pairs: list[tuple[Path, Tree]] = []
        stack: list[tuple[Path, Tree, bool]] = [((), tree, False)]
        while stack:
            path, node, expanded = stack.pop()
            if expanded:
                child_ids = tuple(
                    types[path + (i,)] for i in range(len(node.children))
                )
                type_id, new = self.intern(node.label, child_ids)
                if new:
                    try:
                        on_new(type_id)
                    except BaseException:
                        self.rollback(node.label, child_ids)
                        raise
                types[path] = type_id
            else:
                pairs.append((path, node))
                stack.append((path, node, True))
                for i in range(len(node.children) - 1, -1, -1):
                    stack.append((path + (i,), node.children[i], False))
        return types, pairs


class UnrankedQueryEngine:
    """Cached Lemma 5.16 evaluation of one QA^u / SQA^u."""

    def __init__(self, qa: UnrankedQueryAutomaton) -> None:
        self.qa = qa
        self.automaton = qa.automaton
        self.types = _TypeIndex()
        self._behaviors: list[BehaviorFunction] = []
        self._orbits: dict[tuple[int, State], tuple[State, ...]] = {}
        self._excursions: dict[tuple[int, State], tuple] = {}
        self._downs: dict[tuple[State, Label, int], tuple | None] = {}
        self._classifications: dict[tuple, tuple | None] = {}
        self._contributions: dict[tuple[int, frozenset], tuple] = {}
        self._selects: dict[tuple[Label, frozenset], bool] = {}

    # -- per-type data --------------------------------------------------

    def _down(self, state: State, label: Label, arity: int):
        key = (state, label, arity)
        if key in self._downs:
            return self._downs[key]
        result = self.automaton.delta_down(state, label, arity)
        self._downs[key] = result
        return result

    def _classify(self, word: tuple):
        if word in self._classifications:
            return self._classifications[word]
        found = self.automaton.up_classifier.classify(word)
        self._classifications[word] = found
        return found

    def orbit(self, type_id: int, state: State) -> tuple[State, ...]:
        """States visited from ``state`` under the type's behavior (memoized)."""
        key = (type_id, state)
        found = self._orbits.get(key)
        if found is not None:
            return found
        behavior = self._behaviors[type_id]
        trail = [state]
        seen = {state}
        current = state
        while current in behavior:
            nxt = behavior[current]
            if nxt == current:
                break
            if nxt in seen:
                raise NonTerminatingRunError(f"behavior cycles from {state!r}")
            trail.append(nxt)
            seen.add(nxt)
            current = nxt
        result = tuple(trail)
        self._orbits[key] = result
        return result

    def _settle(self, type_id: int, state: State) -> State | None:
        """``up(f, q)``: the fixed point reached from ``state``, if any."""
        trail = self.orbit(type_id, state)
        last = trail[-1]
        return last if self._behaviors[type_id].get(last) == last else None

    def _settle_word(self, child_types: tuple[int, ...], entry_states):
        word = []
        for child_type, entry in zip(child_types, entry_states):
            settled = self._settle(child_type, entry)
            if settled is None:
                return None
            word.append((settled, self.types.labels[child_type]))
        return tuple(word)

    def _excursion(self, type_id: int, state: State) -> tuple:
        """``(return_state, stay_states)`` of one down excursion (cached)."""
        key = (type_id, state)
        found = self._excursions.get(key)
        if found is not None:
            return found
        automaton = self.automaton
        label = self.types.labels[type_id]
        child_types = self.types.children[type_id]
        result: tuple = (None, None)
        down = self._down(state, label, len(child_types))
        if down is not None:
            word = self._settle_word(child_types, down)
            if word is not None:
                outcome = self._classify(word)
                if outcome is None:
                    pass
                elif outcome[0] == UP:
                    result = (outcome[1], None)
                else:
                    assert outcome[0] == STAY and automaton.stay_gsqa is not None
                    stay_states = fast_transduce(automaton.stay_gsqa, word)
                    result = (None, stay_states)
                    word2 = self._settle_word(child_types, stay_states)
                    if word2 is not None:
                        outcome2 = self._classify(word2)
                        if outcome2 is not None:
                            if outcome2[0] == STAY:
                                if (
                                    automaton.stay_limit is not None
                                    and automaton.stay_limit <= 1
                                ):
                                    raise StayLimitError(
                                        "second stay transition at the "
                                        "children of one node"
                                    )
                                raise NotImplementedError(
                                    "behavior evaluation supports at most "
                                    "one stay per node"
                                )
                            result = (outcome2[1], stay_states)
        self._excursions[key] = result
        return result

    def _build_behavior(self, type_id: int) -> None:
        """The ``on_new`` hook: fix ``f^A`` for a freshly interned type."""
        automaton = self.automaton
        label = self.types.labels[type_id]
        leaf = not self.types.children[type_id]
        behavior: BehaviorFunction = {}
        self._behaviors.append(behavior)
        try:
            for state in automaton.states:
                pair = (state, label)
                if pair in automaton.up_pairs:
                    behavior[state] = state
                elif pair in automaton.down_pairs:
                    if leaf:
                        target = automaton.delta_leaf.get(pair)
                        if target is not None:
                            behavior[state] = target
                    else:
                        returned, _stays = self._excursion(type_id, state)
                        if returned is not None:
                            behavior[state] = returned
        except BaseException:
            # The type is about to be rolled back; its id will be reused,
            # so evict everything cached under it.
            self._behaviors.pop()
            for cache in (self._orbits, self._excursions, self._contributions):
                for key in [k for k in cache if k[0] == type_id]:
                    del cache[key]
            raise

    # -- per-tree passes ------------------------------------------------

    def _root_trajectory(
        self, type_id: int
    ) -> tuple[list[State], State | None]:
        automaton = self.automaton
        label = self.types.labels[type_id]
        arity = len(self.types.children[type_id])
        behavior = self._behaviors[type_id]
        assumed: list[State] = []
        seen: set[State] = set()
        state = automaton.initial
        while True:
            if state in seen:
                raise NonTerminatingRunError("root trajectory cycles")
            seen.add(state)
            assumed.append(state)
            pair = (state, label)
            if pair in automaton.down_pairs:
                if state in behavior:
                    state = behavior[state]
                    continue
                fires = (
                    pair in automaton.delta_leaf
                    if arity == 0
                    else self._down(state, label, arity) is not None
                )
                return assumed, (None if fires else state)
            if pair in automaton.up_pairs:
                target = automaton.delta_root.get(pair)
                if target is None:
                    return assumed, state
                state = target
                continue
            return assumed, state

    def _children_assumed(
        self, type_id: int, assumed: frozenset
    ) -> tuple[frozenset, ...]:
        """What a node with this type and Assumed set hands its children."""
        key = (type_id, assumed)
        found = self._contributions.get(key)
        if found is not None:
            return found
        automaton = self.automaton
        label = self.types.labels[type_id]
        child_types = self.types.children[type_id]
        buckets: list[set] = [set() for _ in child_types]
        for state in assumed:
            if (state, label) not in automaton.down_pairs:
                continue
            down = self._down(state, label, len(child_types))
            if down is None:
                continue
            _returned, stay_states = self._excursion(type_id, state)
            for i, child_state in enumerate(down):
                buckets[i].update(self.orbit(child_types[i], child_state))
            if stay_states is not None:
                for i, child_state in enumerate(stay_states):
                    buckets[i].update(self.orbit(child_types[i], child_state))
        result = tuple(frozenset(bucket) for bucket in buckets)
        self._contributions[key] = result
        return result

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """The computed query ``A(t)``; ≡ the cut-simulation ``evaluate``."""
        sink = obs.SINK
        types_before = len(self.types.labels) if sink.enabled else 0
        types, pairs = self.types.type_tree(tree, self._build_behavior)
        if sink.enabled:
            misses = len(self.types.labels) - types_before
            sink.incr("trees.evaluations")
            sink.incr("trees.nodes", len(pairs))
            sink.incr("trees.type_misses", misses)
            sink.incr("trees.type_hits", len(pairs) - misses)
        root_states, halting = self._root_trajectory(types[()])
        if halting is None or halting not in self.automaton.accepting:
            return frozenset()
        assumed: dict[Path, frozenset] = {(): frozenset(root_states)}
        selects, selecting = self._selects, self.qa.selecting
        selected: set[Path] = set()
        for path, node in pairs:
            here = assumed[path]
            key = (node.label, here)
            hit = selects.get(key)
            if hit is None:
                hit = any((state, node.label) in selecting for state in here)
                selects[key] = hit
            if hit:
                selected.add(path)
            if node.children:
                contributions = self._children_assumed(types[path], here)
                for i, contribution in enumerate(contributions):
                    assumed[path + (i,)] = contribution
        return frozenset(selected)


class MarkedQueryEngine:
    """Cached Figure 5 propagation over a marked-alphabet DBTA^u."""

    def __init__(
        self, automaton: DeterministicUnrankedAutomaton, mark=None
    ) -> None:
        self.automaton = automaton
        self.mark = mark if mark is not None else (lambda label, bit: (label, bit))
        self.types = _TypeIndex()
        self._states: list[State] = []
        self._marked: list[State] = []
        self._child_contexts: dict[tuple[int, frozenset], tuple] = {}
        self._selects: dict[tuple[int, frozenset], bool] = {}
        self._rel_selected: dict[tuple[int, frozenset], frozenset] = {}

    def _build_states(self, type_id: int) -> None:
        label = self.types.labels[type_id]
        children = [self._states[c] for c in self.types.children[type_id]]
        try:
            self._states.append(
                self.automaton.classifiers[self.mark(label, 0)].result(children)
            )
            self._marked.append(
                self.automaton.classifiers[self.mark(label, 1)].result(children)
            )
        except BaseException:
            del self._states[type_id:]
            del self._marked[type_id:]
            raise

    def _contexts_below(
        self, type_id: int, context: frozenset
    ) -> tuple[frozenset, ...]:
        """Per-child context sets via one forward + one backward sibling sweep."""
        key = (type_id, context)
        found = self._child_contexts.get(key)
        if found is not None:
            return found
        classifier = self.automaton.classifiers[
            self.mark(self.types.labels[type_id], 0)
        ]
        dfa = classifier.dfa
        child_states = [self._states[c] for c in self.types.children[type_id]]

        forward = [dfa.initial]
        for state in child_states:
            forward.append(dfa.transitions[(forward[-1], state)])

        good_horizontal = frozenset(
            h for h, v in classifier.classify.items() if v in context
        )
        backward: list[frozenset] = [good_horizontal]
        for state in reversed(child_states):
            previous = backward[-1]
            backward.append(
                frozenset(
                    h for h in dfa.states if dfa.transitions[(h, state)] in previous
                )
            )
        backward.reverse()

        result = tuple(
            frozenset(
                q
                for q in self.automaton.states
                if dfa.transitions[(forward[i], q)] in backward[i + 1]
            )
            for i in range(len(child_states))
        )
        self._child_contexts[key] = result
        return result

    def evaluate(self, tree: Tree) -> frozenset[Path]:
        """Selected paths; ≡ :func:`repro.unranked.dbta.evaluate_marked_query`."""
        sink = obs.SINK
        types_before = len(self.types.labels) if sink.enabled else 0
        types, pairs = self.types.type_tree(tree, self._build_states)
        if sink.enabled:
            misses = len(self.types.labels) - types_before
            sink.incr("trees.evaluations")
            sink.incr("trees.nodes", len(pairs))
            sink.incr("trees.type_misses", misses)
            sink.incr("trees.type_hits", len(pairs) - misses)
        contexts: dict[Path, frozenset] = {
            (): frozenset(self.automaton.accepting)
        }
        selects = self._selects
        selected: set[Path] = set()
        for path, node in pairs:
            type_id = types[path]
            context = contexts[path]
            key = (type_id, context)
            hit = selects.get(key)
            if hit is None:
                hit = self._marked[type_id] in context
                selects[key] = hit
            if hit:
                selected.add(path)
            if node.children:
                below = self._contexts_below(type_id, context)
                for i, child_context in enumerate(below):
                    contexts[path + (i,)] = child_context
        return frozenset(selected)

    # -- incremental maintenance ----------------------------------------

    def incremental_type(self, tree: Tree, memo: TypeMemo) -> int:
        """The root's type id, descending only into unmemoized subtrees.

        ``memo`` maps ``id(node) -> (node, type_id)`` for subtrees typed
        by earlier calls.  After a structural-sharing edit, every
        untouched subtree object is still in the memo, so only the fresh
        spine (and the edited fragment) is walked and interned — the
        dirty-set threading of ROADMAP item 2.  The walk is iterative, so
        chain-deep documents do not recurse, and fresh types run
        :meth:`_build_states` exactly as :meth:`evaluate` would.
        """
        found = memo.get(id(tree))
        if found is not None and found[0] is tree:
            return found[1]
        sink = obs.SINK
        walked = interned = 0
        results: list[int] = []
        stack: list[tuple[Tree, bool]] = [(tree, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                arity = len(node.children)
                child_ids = tuple(results[len(results) - arity :])
                del results[len(results) - arity :]
                type_id, new = self.types.intern(node.label, child_ids)
                if new:
                    interned += 1
                    try:
                        self._build_states(type_id)
                    except BaseException:
                        self.types.rollback(node.label, child_ids)
                        raise
                memo[id(node)] = (node, type_id)
                results.append(type_id)
            else:
                hit = memo.get(id(node))
                if hit is not None and hit[0] is node:
                    results.append(hit[1])
                    continue
                walked += 1
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
        if sink.enabled:
            sink.incr("trees.incremental_walked", walked)
            sink.incr("trees.incremental_interned", interned)
        return results[0]

    def _rel_paths(self, type_id: int, context: frozenset) -> frozenset:
        """Paths selected inside a subtree of this type, relative to it.

        Memoized per ``(type, context)``: the selection set of a subtree
        is fully determined by its type and the context set its root sees
        (Theorem 3.9's two sweeps), so repeated types across — and within
        — documents pay once.  Computed iteratively over the
        ``(type, context)`` dependency DAG (child types are interned
        before parents, so ids strictly decrease downward); entries past
        ``MAX_REL_SELECTED`` live in a per-call overlay only.
        """
        memo = self._rel_selected
        overlay: dict[tuple[int, frozenset], frozenset] = {}
        stack = [(type_id, context, False)]
        while stack:
            tid, ctx, expanded = stack.pop()
            key = (tid, ctx)
            if key in memo or key in overlay:
                continue
            child_types = self.types.children[tid]
            below = (
                self._contexts_below(tid, ctx) if child_types else ()
            )
            if not expanded:
                stack.append((tid, ctx, True))
                for ctid, cctx in zip(child_types, below):
                    ckey = (ctid, cctx)
                    if ckey not in memo and ckey not in overlay:
                        stack.append((ctid, cctx, False))
                continue
            selected: list[Path] = [()] if self._marked[tid] in ctx else []
            for i, (ctid, cctx) in enumerate(zip(child_types, below)):
                ckey = (ctid, cctx)
                sub = memo.get(ckey)
                if sub is None:
                    sub = overlay[ckey]
                for rel in sub:
                    selected.append((i,) + rel)
            value = frozenset(selected)
            if len(memo) < MAX_REL_SELECTED:
                memo[key] = value
            else:
                overlay[key] = value
        found = memo.get((type_id, context))
        return found if found is not None else overlay[(type_id, context)]

    def incremental_evaluate(
        self, tree: Tree, memo: TypeMemo
    ) -> frozenset[Path]:
        """:meth:`evaluate` with per-*changed*-type cost; ≡ ``evaluate``.

        Typing reuses ``memo`` so only fresh subtrees are interned, and
        the selection itself assembles cached relative path sets instead
        of sweeping every node — after a small edit the work is
        proportional to the fresh ``(type, context)`` pairs on the spine,
        not to the document size.  The result is exactly
        ``self.evaluate(tree)`` (the differential suites hold both paths
        identical).
        """
        sink = obs.SINK
        rel_before = len(self._rel_selected) if sink.enabled else 0
        type_id = self.incremental_type(tree, memo)
        root_context = frozenset(self.automaton.accepting)
        result = self._rel_paths(type_id, root_context)
        if sink.enabled:
            sink.incr("trees.incremental_evaluations")
            sink.incr(
                "trees.rel_select_misses",
                len(self._rel_selected) - rel_before,
            )
        return result


_UNRANKED_ENGINES: EngineRegistry[UnrankedQueryEngine] = EngineRegistry(
    UnrankedQueryEngine
)
_MARKED_ENGINES: EngineRegistry[MarkedQueryEngine] = EngineRegistry(
    MarkedQueryEngine
)


def fast_evaluate_unranked(
    qa: UnrankedQueryAutomaton, tree: Tree, engine: str | None = None
) -> frozenset[Path]:
    """``A(t)`` via cached behavior composition; ≡ ``qa.evaluate(tree)``.

    ``engine="numpy"`` routes through the vectorized tree kernel of
    :mod:`repro.perf.nptrees` (degrading to this dict engine when numpy
    is missing); ``None`` / ``"table"`` select the dict engine directly.
    """
    if engine is not None:
        from .nptrees import tree_kernel

        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.unranked_engine(qa).evaluate(tree)
    return _UNRANKED_ENGINES.get(qa).evaluate(tree)


def marked_engine(
    automaton: DeterministicUnrankedAutomaton,
) -> MarkedQueryEngine:
    """The shared pair-marked engine of a compiled query automaton."""
    return _MARKED_ENGINES.get(automaton)


def fast_evaluate_marked(
    automaton: DeterministicUnrankedAutomaton,
    tree: Tree,
    engine: str | None = None,
) -> frozenset[Path]:
    """Marked-alphabet unary query with cross-call caching.

    Equivalent to ``evaluate_marked_query(automaton, tree, lambda label,
    bit: (label, bit))`` — the pair-marking every compiled query in this
    codebase uses.  ``engine="numpy"`` selects the vectorized tree
    kernel of :mod:`repro.perf.nptrees` (falling back here when numpy is
    missing); ``None`` / ``"table"`` select this dict engine.
    """
    if engine is not None:
        from .nptrees import tree_kernel

        kernel = tree_kernel(engine)
        if kernel is not None:
            return kernel.marked_engine(automaton).evaluate(tree)
    return marked_engine(automaton).evaluate(tree)
