"""Memoized behavior-function algebra of a two-way string automaton.

The Theorem 3.9 evaluator in :mod:`repro.strings.behavior` recomputes the
prefix behavior functions ``f⁻_0 .. f⁻_{n+1}`` — and every orbit inside
them — from scratch on every call.  This module turns that machinery into
a *table*: behavior functions, ``Assumed`` sets, and the per-position
recurrences are interned once per automaton and reused across positions,
words, and calls.

The key observation is that every recurrence of Theorem 3.9 is *local*:

* ``f⁻_i``       depends only on ``(f⁻_{i-1}, cell_{i-1}, cell_i)``;
* ``first_i``    depends only on ``(f⁻_{i-1}, first_{i-1}, cell_{i-1})``;
* ``Assumed_i``  depends only on ``(Assumed_{i+1}, cell_{i+1}, f⁻_i, first_i)``.

Interning behavior functions and assumed sets as small integers makes each
recurrence a single dictionary hit once warm, so evaluating a query
automaton costs a handful of dict lookups per position — independent of
how many sweeps the two-way head makes — and repeated substrings (across
one word or across a whole batch of words) share their table entries.
The per-symbol actions form a monoid under composition;
:meth:`BehaviorTable.power_step` exposes binary-lifting (doubling) tables
over it for jumping across ``σ^k`` runs, and
:meth:`BehaviorTable.prefix_products` the corresponding prefix-product
view of a word.

Tables are obtained through :meth:`BehaviorTable.for_automaton`, an LRU
registry keyed by automaton identity, so independent call sites (query
evaluation, GSQA transduction, the unranked stay transitions) share one
table per machine.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from collections import OrderedDict
import weakref

from .. import obs
from ..strings.twoway import (
    LEFT_MARKER,
    NonTerminatingRunError,
    RIGHT_MARKER,
    TwoWayDFA,
)

State = Hashable
Symbol = Hashable
Cell = Hashable

#: Maximum number of automata whose tables are retained by the registry.
REGISTRY_CAPACITY = 128


class BehaviorTable:
    """All Theorem 3.9 recurrences of one :class:`TwoWayDFA`, memoized.

    Behavior functions and assumed sets are interned to integer ids; the
    three recurrences become id-to-id maps filled lazily while sweeping
    words.  One instance may serve any number of words and callers.
    """

    def __init__(self, automaton: TwoWayDFA) -> None:
        self.automaton = automaton
        self._functions: list[dict[State, State]] = []
        self._function_ids: dict[tuple, int] = {}
        self._sets: list[frozenset[State]] = []
        self._set_ids: dict[frozenset, int] = {}
        # The three recurrences (see the module docstring).
        self._steps: dict[tuple[int, Cell, Cell], int] = {}
        self._first_steps: dict[tuple[int, State | None, Cell], State | None] = {}
        self._assumed_steps: dict[tuple[int, Cell, int, State | None], int] = {}
        # Auxiliary caches.
        self._orbits: dict[tuple[int, State], tuple[State, ...]] = {}
        self._halting: dict[tuple[int, Cell], tuple[State, ...]] = {}
        self._seed_ids: dict[tuple[int, State], int] = {}
        # Doubling tables: (cell, level) -> {function id: function id after
        # reading cell 2**level more times}.
        self._powers: dict[tuple[Cell, int], dict[int, int]] = {}
        self.empty_set_id = self._intern_set(frozenset())
        self.base_id = self._intern_function(
            {
                state: state
                for state in automaton.states
                if automaton.in_right(state, LEFT_MARKER)
            }
        )

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    _registry: OrderedDict[int, "BehaviorTable"] = OrderedDict()

    @classmethod
    def for_automaton(cls, automaton: TwoWayDFA) -> "BehaviorTable":
        """The shared (LRU-cached) table of this automaton."""
        key = id(automaton)
        table = cls._registry.get(key)
        if table is not None and table.automaton is automaton:
            cls._registry.move_to_end(key)
            obs.SINK.incr("table.registry_hits")
            return table
        obs.SINK.incr("table.registry_misses")
        table = cls(automaton)
        cls._registry[key] = table
        try:
            weakref.finalize(automaton, cls._registry.pop, key, None)
        except TypeError:  # pragma: no cover - non-weakrefable automaton
            pass
        while len(cls._registry) > REGISTRY_CAPACITY:
            cls._registry.popitem(last=False)
        return table

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    def _intern_function(self, function: dict[State, State]) -> int:
        key = tuple(sorted(function.items(), key=repr))
        found = self._function_ids.get(key)
        if found is not None:
            return found
        index = len(self._functions)
        self._functions.append(function)
        self._function_ids[key] = index
        return index

    def _intern_set(self, states: frozenset) -> int:
        found = self._set_ids.get(states)
        if found is not None:
            return found
        index = len(self._sets)
        self._sets.append(states)
        self._set_ids[states] = index
        return index

    def function(self, function_id: int) -> dict[State, State]:
        """The behavior function interned under ``function_id``."""
        return self._functions[function_id]

    def assumed_set(self, set_id: int) -> frozenset:
        """The assumed set interned under ``set_id``."""
        return self._sets[set_id]

    def set_count(self) -> int:
        """How many distinct assumed sets have been interned so far.

        Dense engines (:mod:`repro.perf.npkernel`) size their
        assumed-space arrays by this count; it only ever grows.
        """
        return len(self._sets)

    def seed_id(self, function_id: int, first: State) -> int:
        """The interned id of ``States(f⁻_r, first_r)`` at the rightmost
        position — the seed of the right-to-left ``Assumed`` pass."""
        key = (function_id, first)
        found = self._seed_ids.get(key)
        if found is not None:
            return found
        result = self._intern_set(frozenset(self.orbit(function_id, first)))
        self._seed_ids[key] = result
        return result

    # ------------------------------------------------------------------
    # Orbits
    # ------------------------------------------------------------------

    def orbit(self, function_id: int, state: State) -> tuple[State, ...]:
        """``States(f, s)`` under the interned function (cached)."""
        key = (function_id, state)
        found = self._orbits.get(key)
        if found is not None:
            return found
        function = self._functions[function_id]
        trail = [state]
        seen = {state}
        current = state
        while current in function:
            nxt = function[current]
            if nxt == current:
                break
            if nxt in seen:
                raise NonTerminatingRunError(
                    f"behavior function cycles on state {state!r}"
                )
            trail.append(nxt)
            seen.add(nxt)
            current = nxt
        result = tuple(trail)
        self._orbits[key] = result
        return result

    def settle(self, function_id: int, state: State, cell: Cell) -> State | None:
        """``right(f, s, σ)``: the first orbit state with ``(s', σ) ∈ R``.

        ``None`` when the head instead halts or the excursion never
        returns.  (A fixed point of ``f⁻`` is *usually* a right-mover, but
        an excursion may return in its own start state — that must not be
        mistaken for one, so the membership test is explicit.)
        """
        in_right = self.automaton.in_right
        for candidate in self.orbit(function_id, state):
            if in_right(candidate, cell):
                return candidate
        return None

    # ------------------------------------------------------------------
    # The three recurrences
    # ------------------------------------------------------------------

    def step(self, function_id: int, previous_cell: Cell, cell: Cell) -> int:
        """``f⁻_i`` from ``f⁻_{i-1}`` (items 1–2 of Theorem 3.9)."""
        key = (function_id, previous_cell, cell)
        found = self._steps.get(key)
        if found is not None:
            return found
        automaton = self.automaton
        current: dict[State, State] = {}
        for state in automaton.states:
            if automaton.in_right(state, cell):
                current[state] = state
                continue
            if not automaton.in_left(state, cell):
                continue
            entered = automaton.left_moves[(state, cell)]
            returner = self.settle(function_id, entered, previous_cell)
            if returner is None:
                continue
            current[state] = automaton.right_moves[(returner, previous_cell)]
        result = self._intern_function(current)
        self._steps[key] = result
        return result

    def first_step(
        self, function_id: int, first: State | None, cell: Cell
    ) -> State | None:
        """``first_{i}`` from ``first_{i-1}`` and ``f⁻_{i-1}`` (item 2)."""
        if first is None:
            return None
        key = (function_id, first, cell)
        if key in self._first_steps:
            return self._first_steps[key]
        mover = self.settle(function_id, first, cell)
        result = (
            None
            if mover is None
            else self.automaton.right_moves[(mover, cell)]
        )
        self._first_steps[key] = result
        return result

    def assumed_step(
        self,
        next_set_id: int,
        next_cell: Cell,
        function_id: int,
        first: State | None,
    ) -> int:
        """``Assumed_i`` from ``Assumed_{i+1}`` (items 3–4)."""
        key = (next_set_id, next_cell, function_id, first)
        found = self._assumed_steps.get(key)
        if found is not None:
            return found
        automaton = self.automaton
        bucket: set[State] = set()
        if first is not None:
            bucket.update(self.orbit(function_id, first))
        for later in self._sets[next_set_id]:
            if automaton.in_left(later, next_cell):
                entered = automaton.left_moves[(later, next_cell)]
                bucket.update(self.orbit(function_id, entered))
        result = self._intern_set(frozenset(bucket))
        self._assumed_steps[key] = result
        return result

    def halting_states(self, set_id: int, cell: Cell) -> tuple[State, ...]:
        """The assumed states with no applicable transition on ``cell``."""
        key = (set_id, cell)
        found = self._halting.get(key)
        if found is not None:
            return found
        result = tuple(
            state
            for state in sorted(self._sets[set_id], key=repr)
            if self.automaton.move(state, cell) is None
        )
        self._halting[key] = result
        return result

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def sweep(
        self, word: Sequence[Symbol]
    ) -> tuple[list[Cell], list[int], list[State | None]]:
        """Left-to-right pass: marked cells, ``f⁻`` ids, ``first`` states."""
        sink = obs.SINK
        functions_before = len(self._functions) if sink.enabled else 0
        cells: list[Cell] = [LEFT_MARKER, *word, RIGHT_MARKER]
        function_ids = [self.base_id]
        firsts: list[State | None] = [self.automaton.initial]
        step, first_step = self.step, self.first_step
        for i in range(1, len(cells)):
            function_ids.append(step(function_ids[i - 1], cells[i - 1], cells[i]))
            firsts.append(first_step(function_ids[i - 1], firsts[i - 1], cells[i - 1]))
        if sink.enabled:
            positions = len(cells) - 1
            misses = len(self._functions) - functions_before
            sink.incr("table.sweeps")
            sink.incr("table.positions", positions)
            sink.incr("table.intern_misses", misses)
            sink.incr("table.intern_hits", positions - misses)
        return cells, function_ids, firsts

    def assumed_ids(
        self,
        cells: list[Cell],
        function_ids: list[int],
        firsts: list[State | None],
        rightmost: int,
    ) -> list[int]:
        """Right-to-left pass: interned ``Assumed`` ids per marked position.

        Positions beyond ``rightmost`` (never reached) get the empty set.
        """
        assumed = [self.empty_set_id] * len(cells)
        seed: set[State] = set(self.orbit(function_ids[rightmost], firsts[rightmost]))
        assumed[rightmost] = self._intern_set(frozenset(seed))
        for i in range(rightmost - 1, -1, -1):
            assumed[i] = self.assumed_step(
                assumed[i + 1], cells[i + 1], function_ids[i], firsts[i]
            )
        return assumed

    # ------------------------------------------------------------------
    # Doubling / prefix products (monoid view)
    # ------------------------------------------------------------------

    def power_step(self, function_id: int, cell: Cell, count: int) -> int:
        """``f⁻`` after reading ``count`` further copies of ``cell``.

        ``function_id`` must already be the behavior *at* a ``cell``
        position (so the symbol acts as an endomorphism); binary lifting
        makes the jump O(log count) table hits.  Equivalent to iterating
        :meth:`step` ``count`` times with both cells equal to ``cell``.
        """
        if count < 0:
            raise ValueError("count must be nonnegative")
        level = 0
        while count:
            if count & 1:
                table = self._powers.setdefault((cell, level), {})
                found = table.get(function_id)
                if found is None:
                    if level == 0:
                        found = self.step(function_id, cell, cell)
                    else:
                        half = self.power_step(function_id, cell, 1 << (level - 1))
                        found = self.power_step(half, cell, 1 << (level - 1))
                    table[function_id] = found
                function_id = found
            count >>= 1
            level += 1
        return function_id

    def prefix_products(self, word: Sequence[Symbol]) -> list[int]:
        """Interned ``f⁻`` ids for every prefix of ``⊳ w`` (monoid products).

        ``result[i]`` is the behavior at marked position ``i``; the last
        entry is the behavior at ``⊲``.  Runs of repeated symbols are
        filled through the doubling tables so their interior entries cost
        one table hit each even on the first visit.
        """
        cells: list[Cell] = [LEFT_MARKER, *word, RIGHT_MARKER]
        ids = [self.base_id]
        i = 1
        while i < len(cells):
            run_end = i
            while (
                run_end + 1 < len(cells) and cells[run_end + 1] == cells[i]
            ):
                run_end += 1
            ids.append(self.step(ids[-1], cells[i - 1], cells[i]))
            for _ in range(i + 1, run_end + 1):
                ids.append(self.power_step(ids[-1], cells[i], 1))
            i = run_end + 1
        return ids
