"""Corpus sharding: adaptive chunk planning and structured worker failures.

A parallel run splits its inputs into contiguous *chunks* — index ranges
in submission order — sized by estimated evaluation cost (node count for
trees and documents, length for words) so that one huge document does
not ride in the same chunk as fifty small ones.  Chunks are the unit of
dispatch, result merging, and failure attribution: whatever order
workers finish in, results are reassembled by chunk index, and a failure
is reported as a :class:`ShardError` naming the *input* index that
failed together with the worker's counter snapshot at that moment.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

#: Estimated-cost target per chunk when the total corpus cost is unknown
#: (streaming ingestion): roughly "a few thousand tree nodes per task".
DEFAULT_CHUNK_COST = 4096

#: Hard cap on items per chunk, so huge corpora of tiny documents still
#: spread across workers.
MAX_CHUNK_ITEMS = 256

#: Chunks planned per worker when the total cost is known — mild
#: oversubscription lets fast workers absorb straggler chunks.
OVERSUBSCRIBE = 4


class ShardError(RuntimeError):
    """A worker failed while evaluating one input of a parallel run.

    Raised in the *parent* process in place of the worker's bare pickled
    traceback.  Attributes:

    * ``index`` — the failing input's position in submission order;
    * ``worker`` — the worker's process id;
    * ``kind`` — the original exception's type name (e.g.
      ``"BudgetExceededError"``);
    * ``detail`` — the original exception's message;
    * ``counters`` — the worker's ``obs`` counter snapshot accumulated up
      to (and including) the failing evaluation;
    * ``exc_counters`` — the counter snapshot *carried by the exception
      itself* when it has one (``BudgetExceededError.counters``),
      preserved intact across the process boundary;
    * ``budget`` — the tripped budget for budget-style failures, else
      ``None``;
    * ``worker_traceback`` — the worker-side formatted traceback, for
      debugging.
    """

    def __init__(
        self,
        index: int,
        kind: str,
        detail: str,
        *,
        worker: int | None = None,
        counters: dict | None = None,
        exc_counters: dict | None = None,
        budget: int | None = None,
        worker_traceback: str | None = None,
    ) -> None:
        parts = [f"shard failed at input {index}: {kind}: {detail}"]
        if worker is not None:
            parts.append(f"worker={worker}")
        if budget is not None:
            parts.append(f"budget={budget}")
        if counters:
            parts.append(
                "counters: "
                + ", ".join(f"{key}={counters[key]}" for key in sorted(counters))
            )
        super().__init__("; ".join(parts))
        self.index = index
        self.kind = kind
        self.detail = detail
        self.worker = worker
        self.counters = dict(counters) if counters else {}
        self.exc_counters = dict(exc_counters) if exc_counters else {}
        self.budget = budget
        self.worker_traceback = worker_traceback


def estimate_cost(item: object) -> int:
    """Estimated evaluation cost of one input, in "node" units.

    Trees report their ``size``; documents report their tree's size;
    words report their length; anything else costs 1.  The estimate only
    steers chunk balance — it never changes results.
    """
    size = getattr(item, "size", None)
    if isinstance(size, int):
        return max(1, size)
    tree = getattr(item, "tree", None)
    if tree is not None:
        size = getattr(tree, "size", None)
        if isinstance(size, int):
            return max(1, size)
    try:
        return max(1, len(item))  # type: ignore[arg-type]
    except TypeError:
        return 1


def chunk_cost_target(items: Sequence | None, jobs: int) -> int:
    """The per-chunk cost target for a corpus.

    With a materialized corpus the total cost is known: divide it over
    ``jobs * OVERSUBSCRIBE`` chunks.  For streaming corpora (``items is
    None``) fall back to :data:`DEFAULT_CHUNK_COST`.
    """
    if items is None:
        return DEFAULT_CHUNK_COST
    total = sum(estimate_cost(item) for item in items)
    return max(1, -(-total // max(1, jobs * OVERSUBSCRIBE)))


def iter_chunks(
    items: Iterable,
    target_cost: int,
    max_items: int = MAX_CHUNK_ITEMS,
) -> Iterator[tuple[int, list, int]]:
    """Split ``items`` into ``(start_index, chunk, estimated_cost)`` triples.

    Chunks are contiguous in submission order; a chunk closes when its
    accumulated estimated cost reaches ``target_cost`` or it holds
    ``max_items`` items.  Consumes the iterable lazily, so a streaming
    corpus is only ever materialized one chunk at a time.
    """
    buffer: list = []
    cost = 0
    start = 0
    for index, item in enumerate(items):
        buffer.append(item)
        cost += estimate_cost(item)
        if cost >= target_cost or len(buffer) >= max_items:
            yield start, buffer, cost
            start = index + 1
            buffer = []
            cost = 0
    if buffer:
        yield start, buffer, cost
