"""Single-sweep string query evaluation over cached behavior tables.

The naive :meth:`StringQueryAutomaton.evaluate` replays the entire
two-way run — for a machine making ``k`` head sweeps that is ``k·n``
simulated steps plus a trace and a seen-set per call.  The fast path here
is the executable form of Theorem 3.9 (and of Lemma 3.10's output pairs):
one left-to-right pass fixes the behavior functions and ``first`` states,
one right-to-left pass fixes the ``Assumed`` sets, and selection (or GSQA
output) is read off per position.  All recurrences go through the
interned :class:`~repro.perf.table.BehaviorTable`, so the cost per
position is a few dictionary hits regardless of how much the simulated
head zig-zags — and the tables persist across calls, making batch
workloads cheaper still.

The naive simulators remain the reference oracle; agreement is enforced
by the differential tests in ``tests/perf/``.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .. import obs
from ..strings.behavior import BehaviorError
from ..strings.twoway import (
    BOTTOM,
    GeneralizedStringQA,
    StringQueryAutomaton,
    TwoWayDFA,
    as_symbol_sequence,
)
from ..strings.dfa import AutomatonError
from .registry import EngineRegistry, unknown_engine
from .table import BehaviorTable

State = Hashable
Symbol = Hashable

#: Cache marker for "two distinct outputs assumed at one position".
_CONFLICT = object()


def _swept(table: BehaviorTable, word: tuple):
    """Both passes: cells, assumed-set ids, rightmost position, halting state."""
    cells, function_ids, firsts = table.sweep(word)
    rightmost = max(i for i, state in enumerate(firsts) if state is not None)
    assumed = table.assumed_ids(cells, function_ids, firsts, rightmost)
    halting_configurations = [
        (i, state)
        for i in range(rightmost + 1)
        for state in table.halting_states(assumed[i], cells[i])
    ]
    if len(halting_configurations) != 1:
        raise BehaviorError(
            f"expected one halting configuration, found {halting_configurations!r}"
        )
    return cells, assumed, rightmost, halting_configurations[0][1]


def fast_final_state(automaton: TwoWayDFA, word: Sequence[Symbol]) -> State:
    """The halting state of the run, without simulating it."""
    table = BehaviorTable.for_automaton(automaton)
    _cells, _assumed, _rightmost, halting = _swept(
        table, as_symbol_sequence(word)
    )
    return halting


def fast_accepts(automaton: TwoWayDFA, word: Sequence[Symbol]) -> bool:
    """Sweep-based equivalent of :meth:`TwoWayDFA.accepts`."""
    return fast_final_state(automaton, word) in automaton.accepting


class StringQueryEngine:
    """Cached evaluator for one :class:`StringQueryAutomaton`.

    Holds the shared behavior table of the underlying 2DFA plus a
    selection cache keyed on interned ``(Assumed, symbol)`` pairs, so
    repeated local contexts — across positions and across words — decide
    selection with one dictionary hit.
    """

    def __init__(self, qa: StringQueryAutomaton) -> None:
        self.qa = qa
        self.table = BehaviorTable.for_automaton(qa.automaton)
        self._selects: dict[tuple[int, Symbol], bool] = {}

    def evaluate(self, word: Sequence[Symbol]) -> frozenset[int]:
        """All selected positions of the word, in two table sweeps."""
        word = as_symbol_sequence(word)
        sink = obs.SINK
        if sink.enabled:
            sink.incr("strings.evaluations")
            select_cache_before = len(self._selects)
        table = self.table
        cells, assumed, rightmost, halting = _swept(table, word)
        if halting not in self.qa.automaton.accepting:
            return frozenset()
        selects, selecting = self._selects, self.qa.selecting
        selected: set[int] = set()
        for position in range(1, min(rightmost, len(word)) + 1):
            symbol = word[position - 1]
            key = (assumed[position], symbol)
            hit = selects.get(key)
            if hit is None:
                hit = any(
                    (state, symbol) in selecting
                    for state in table.assumed_set(assumed[position])
                )
                selects[key] = hit
            if hit:
                selected.add(position)
        if sink.enabled:
            decided = min(rightmost, len(word))
            misses = len(self._selects) - select_cache_before
            sink.incr("strings.select_cache_misses", misses)
            sink.incr("strings.select_cache_hits", decided - misses)
        return frozenset(selected)


class TransductionEngine:
    """Cached transducer for one :class:`GeneralizedStringQA`.

    The output at a position depends only on its ``Assumed`` set and its
    symbol; both the value and the paper's well-formedness violations
    (zero or two outputs) are cached per interned pair.
    """

    def __init__(self, gsqa: GeneralizedStringQA) -> None:
        self.gsqa = gsqa
        self.table = BehaviorTable.for_automaton(gsqa.automaton)
        self._outputs: dict[tuple[int, Symbol], object] = {}

    def _output_at(self, set_id: int, symbol: Symbol):
        key = (set_id, symbol)
        if key in self._outputs:
            return self._outputs[key]
        output = self.gsqa.output
        value = BOTTOM
        for state in self.table.assumed_set(set_id):
            candidate = output.get((state, symbol), BOTTOM)
            if candidate is BOTTOM:
                continue
            if value is not BOTTOM and value != candidate:
                value = _CONFLICT
                break
            value = candidate
        self._outputs[key] = value
        return value

    def transduce(self, word: Sequence[Symbol]) -> tuple[Hashable, ...]:
        """The GSQA's output at every position, in two table sweeps."""
        word = as_symbol_sequence(word)
        obs.SINK.incr("strings.transductions")
        _cells, assumed, rightmost, _halting = _swept(self.table, word)
        outputs: list[Hashable] = [BOTTOM] * len(word)
        for position in range(1, min(rightmost, len(word)) + 1):
            value = self._output_at(assumed[position], word[position - 1])
            if value is _CONFLICT:
                raise AutomatonError(f"two outputs at position {position}")
            outputs[position - 1] = value
        missing = [index + 1 for index, value in enumerate(outputs) if value is BOTTOM]
        if missing:
            raise AutomatonError(f"no output at positions {missing!r} of {word!r}")
        return tuple(outputs)


_QUERY_ENGINES: EngineRegistry[StringQueryEngine] = EngineRegistry(
    StringQueryEngine, name="perf.query_engines"
)
_TRANSDUCERS: EngineRegistry[TransductionEngine] = EngineRegistry(
    TransductionEngine, name="perf.transducers"
)


def numpy_kernel(engine: str | None):
    """Resolve an ``engine=`` choice to the numpy kernel module, or ``None``.

    ``None`` / ``"table"`` (the interned-dict default) and ``"numpy"``
    are accepted; asking for numpy without numpy installed degrades to
    the table engine and counts an ``npkernel.fallbacks`` event — callers
    never have to guard the import themselves.
    """
    if engine is None or engine == "table":
        return None
    if engine != "numpy":
        raise unknown_engine(engine, ("table", "numpy"))
    from . import npkernel

    if npkernel.available():
        return npkernel
    obs.SINK.incr("npkernel.fallbacks")
    return None


def fast_evaluate(
    qa: StringQueryAutomaton,
    word: Sequence[Symbol],
    engine: str | None = None,
) -> frozenset[int]:
    """Selected positions of ``word``; ≡ :meth:`StringQueryAutomaton.evaluate`.

    One forward and one backward sweep over cached behavior tables —
    O(n·|Q|) worst case, a few dict hits per position once warm.
    ``engine="numpy"`` runs the sweeps as vectorized array scans
    (:mod:`repro.perf.npkernel`), falling back here when numpy is absent.
    """
    kernel = numpy_kernel(engine)
    if kernel is not None:
        return kernel.query_engine(qa).evaluate(word)
    return _QUERY_ENGINES.get(qa).evaluate(word)


def fast_transduce(
    gsqa: GeneralizedStringQA,
    word: Sequence[Symbol],
    engine: str | None = None,
) -> tuple[Hashable, ...]:
    """``M(w)`` per Definition 3.5; ≡ :meth:`GeneralizedStringQA.transduce`.

    ``engine="numpy"`` selects the vectorized kernel, when available.
    """
    kernel = numpy_kernel(engine)
    if kernel is not None:
        return kernel.transducer_engine(gsqa).transduce(word)
    return _TRANSDUCERS.get(gsqa).transduce(word)
