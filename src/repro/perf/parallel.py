"""Parallel sharded query execution across worker processes.

Query automata are embarrassingly parallel across documents: the
behavior-function machinery (Theorem 3.9, Theorem 5.17) is per-tree, so
a corpus can be sharded across ``multiprocessing`` workers with no
coordination beyond result collection.  :class:`ParallelExecutor` does
exactly that:

* the compiled query ships **once per worker** via the pool initializer,
  which warms the worker-local engine registries of
  :mod:`repro.perf.registry` — every chunk the worker later receives
  reuses the same behavior tables and subtree-type caches;
* inputs are chunked adaptively by estimated node count
  (:mod:`repro.perf.shard`), submitted with a bounded in-flight window
  (streaming corpora are never fully materialized), and merged back
  **in submission order** regardless of completion order — ``jobs=N``
  output is byte-identical to ``jobs=1``;
* each worker evaluates its chunk under a recording
  :class:`repro.obs.Stats` and ships the snapshot home; the parent
  merges every snapshot into the installed sink (counters summed,
  high-water gauges maxed, spans concatenated) plus the executor's own
  counters — ``parallel.chunks``, ``parallel.workers``,
  ``parallel.items``, ``parallel.merge_wait_ns`` — and per-worker
  high-water gauges ``parallel.worker_items_max`` /
  ``parallel.worker_cost_max`` / ``parallel.worker_init_ns`` (initializer
  time: what each transport actually costs per worker);
* a failure inside a worker surfaces as a structured
  :class:`~repro.perf.shard.ShardError` carrying the failing input's
  submission index and the worker's counter snapshot (including the
  counters attached to a ``BudgetExceededError``), never as a bare
  pickled traceback;
* ``jobs=1`` bypasses the pool entirely — same call path as
  :func:`repro.perf.batch.batch_evaluate`, zero process overhead.

The executor is spawn-safe (it always uses the ``spawn`` start method,
so it behaves identically on Linux, macOS, and Windows) and reusable:
keep one per (query, jobs) pair and ``map`` as many corpora through it
as you like; the pool and the workers' warmed engines persist across
calls.  Use it as a context manager, or call :func:`parallel_map` for
one-shot convenience.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from collections.abc import Iterable, Sequence

from .. import obs
from .shard import ShardError, chunk_cost_target, iter_chunks

#: Chunks allowed in flight per worker; bounds parent-side memory when
#: streaming a corpus through the pool.
_INFLIGHT_PER_WORKER = 2

#: Seconds to wait for the post-spawn worker ping before declaring the
#: pool broken (workers that die during bootstrap are respawned forever
#: by ``multiprocessing.Pool``, so without this cap a broken pool hangs).
_SPAWN_PING_TIMEOUT = float(os.environ.get("REPRO_PARALLEL_SPAWN_TIMEOUT", "120"))


#: Transport selection: how the compiled query reaches the workers.
#: ``pickle`` ships pickled bytes through the pool initializer (every
#: worker re-derives its engines); ``shared_memory`` maps one
#: :class:`multiprocessing.shared_memory.SharedMemory` segment that all
#: workers attach — carrying either a fully-closed dense numpy program
#: (:func:`repro.perf.npkernel.export_program`, attach is O(1)) or, for
#: queries the dense exporter cannot freeze, the pickled spec itself.
_TRANSPORTS = ("pickle", "shared_memory")


def default_transport() -> str:
    """The transport selected by ``REPRO_PARALLEL_TRANSPORT`` (or pickle)."""
    choice = os.environ.get("REPRO_PARALLEL_TRANSPORT", "pickle")
    return "shared_memory" if choice == "shm" else choice


def default_jobs() -> int:
    """The default worker count: the CPUs *this process may run on*.

    Respects CPU affinity (cgroup/cpuset limits, ``taskset``) via
    ``os.sched_getaffinity`` where available, then
    ``os.process_cpu_count()`` (Python 3.13+), then ``os.cpu_count()``;
    at least 1.  Raw ``cpu_count()`` oversubscribes affinity-restricted
    containers with workers that time-share a fraction of the machine.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        pass
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        return process_cpu_count() or 1
    return os.cpu_count() or 1


def _check_spawn_main() -> None:
    """Refuse to spawn when ``__main__`` cannot be re-imported.

    The ``spawn`` start method re-runs the parent's ``__main__`` in every
    worker.  A parent fed through stdin (``python < script.py``, a shell
    heredoc) has ``__file__ == "<stdin>"`` — workers would die on import
    and the pool would respawn them forever, hanging ``map`` with an
    endless traceback stream.  Fail fast with the fix instead.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return  # python -m …: workers re-import by module name
    main_file = getattr(main, "__file__", None)
    if main_file is None:
        return  # interactive interpreter: nothing is re-run
    if not os.path.exists(main_file):
        raise RuntimeError(
            f"cannot spawn workers: the __main__ module ({main_file!r}) is "
            "not importable from a worker process. Run your script from a "
            "real file (python script.py), use python -m, or use jobs=1."
        )


def _resolve_call(spec):
    """The per-input evaluation callable for a shipped (kind, payload, engine) spec."""
    kind, payload, engine = spec
    if kind == "call":
        return payload
    from .batch import _engine_call

    return _engine_call(payload, engine=engine)


def _prepare_spec(query, engine: str | None = None) -> tuple:
    """Classify ``query`` into a shippable (kind, payload, engine) spec.

    Known query-automaton types go through the engine dispatch of
    :mod:`repro.perf.batch` (``MSOQuery`` is compiled *now*, so workers
    receive the finished automaton rather than recompiling the formula);
    any other callable is treated as a custom selection function.  The
    ``engine`` choice rides along so workers build the same engine kind.
    """
    from ..core.query import MSOQuery

    if isinstance(query, MSOQuery):
        query.compiled()
        return ("query", query, engine)
    try:
        from .batch import _engine_call

        _engine_call(query, engine=engine)
        return ("query", query, engine)
    except TypeError:
        if callable(query):
            return ("call", query, engine)
        raise TypeError(
            f"cannot evaluate {type(query).__name__} objects in parallel: "
            "expected a query automaton, a core Query, or a callable"
        ) from None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Worker-local evaluation callable, set once by the pool initializer.
_WORKER_CALL = None

#: Worker-local shared-memory segment; kept referenced for the process
#: lifetime so attached array views stay valid.
_WORKER_SHM = None

#: Nanoseconds this worker spent in its initializer — receiving the
#: query and building (or attaching) its engine.  Shipped home with
#: every chunk record and surfaced as the ``parallel.worker_init_ns``
#: gauge, so transports can be compared on per-worker setup cost
#: without process-spawn noise.
_WORKER_INIT_NS = 0


def _attach_shared_memory(name: str):
    """Attach the parent's segment in a worker.

    Attaching re-registers the name with the resource tracker (3.11/3.12
    lack ``track=False``), but spawn children share the parent's tracker
    process and its cache is a set, so the parent's create-time
    registration and every worker's attach-time one collapse into a
    single entry — which the parent's ``unlink`` at close retires.
    Workers must NOT unregister themselves: extra unregisters would race
    each other emptying that single entry.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _initialize_worker(mode: str, *args) -> None:
    """Pool initializer: receive the query and warm the local engines.

    Runs once per worker process.  ``mode`` selects the transport:

    * ``"spec"`` — pickled (kind, payload, engine) bytes in ``args``;
    * ``"spec_shm"`` — the same bytes, but read out of a shared-memory
      segment the parent filled once (``args`` is its name and length);
    * ``"program"`` — a dense numpy program exported by
      :func:`repro.perf.npkernel.export_program`: ``args`` is the pickled
      header plus the segment name; the worker builds an
      :class:`~repro.perf.npkernel.AttachedStringEngine` whose arrays are
      views straight into the mapped segment — nothing is unpickled or
      re-derived per worker;
    * ``"tree_program"`` — the tree counterpart
      (:func:`repro.perf.nptrees.export_tree_program`): the worker builds
      an :class:`~repro.perf.nptrees.AttachedTreeEngine` whose dense
      per-label classifier tables are views into the mapped segment.

    Resolving the evaluation callable builds the engine through the
    worker-local :class:`~repro.perf.registry.EngineRegistry`, so the
    behavior tables and subtree-type caches exist before the first chunk
    arrives and are shared by every chunk this worker ever processes.
    """
    global _WORKER_CALL, _WORKER_SHM, _WORKER_INIT_NS
    started = time.perf_counter_ns()
    if mode == "spec":
        (spec_bytes,) = args
        _WORKER_CALL = _resolve_call(pickle.loads(spec_bytes))
    elif mode == "spec_shm":
        name, length = args
        _WORKER_SHM = _attach_shared_memory(name)
        spec_bytes = bytes(_WORKER_SHM.buf[:length])
        _WORKER_CALL = _resolve_call(pickle.loads(spec_bytes))
    elif mode == "program":
        header, name, length = args
        from .npkernel import AttachedStringEngine

        _WORKER_SHM = _attach_shared_memory(name)
        _WORKER_CALL = AttachedStringEngine(
            header, _WORKER_SHM.buf[:length]
        )
    elif mode == "tree_program":
        header, name, length = args
        from .nptrees import AttachedTreeEngine

        _WORKER_SHM = _attach_shared_memory(name)
        _WORKER_CALL = AttachedTreeEngine(
            header, _WORKER_SHM.buf[:length]
        )
    else:  # pragma: no cover - parent/worker version skew only
        raise RuntimeError(f"unknown worker transport mode {mode!r}")
    _WORKER_INIT_NS = time.perf_counter_ns() - started


def _worker_ping() -> int:
    """Round-trip probe proving a worker finished bootstrap + initializer."""
    return os.getpid()


def _run_chunk(task: tuple) -> dict:
    """Evaluate one chunk in a worker; never raises.

    Returns a plain, picklable record: the chunk ordinal, the worker's
    pid, the results (or ``None`` on failure), the worker's ``obs``
    snapshot for the chunk, and — on failure — a structured error entry
    naming the failing input's submission index.
    """
    ordinal, start, items, cost = task
    stats = obs.Stats()
    results: list | None = []
    error: dict | None = None
    with obs.collecting(stats):
        for offset, item in enumerate(items):
            try:
                results.append(_WORKER_CALL(item))
            except Exception as exc:  # noqa: BLE001 - shipped, not swallowed
                error = {
                    "index": start + offset,
                    "kind": type(exc).__name__,
                    "detail": str(exc),
                    "exc_counters": dict(getattr(exc, "counters", None) or {}),
                    "budget": getattr(exc, "budget", None),
                    "traceback": traceback.format_exc(),
                }
                results = None
                break
    return {
        "ordinal": ordinal,
        "worker": os.getpid(),
        "items": len(items),
        "cost": cost,
        "init_ns": _WORKER_INIT_NS,
        "results": results,
        "stats": stats.snapshot(),
        "error": error,
    }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ParallelExecutor:
    """Shard corpora across worker processes for one query.

    Parameters
    ----------
    query:
        A query automaton / core ``Query`` (evaluated through the cached
        engines) or any picklable callable ``item -> result``.
    jobs:
        Worker count; defaults to :func:`default_jobs` (affinity-aware).
        ``jobs=1`` is the serial fast path: no pool, no pickling,
        identical results.
    transport:
        ``"pickle"`` (the oracle path: pickled spec through the pool
        initializer) or ``"shared_memory"`` (one shared segment all
        workers attach; dense numpy programs where exportable, the
        pickled spec otherwise).  Defaults to the
        ``REPRO_PARALLEL_TRANSPORT`` environment variable, then pickle.
    engine:
        Per-item engine choice shipped to the workers (e.g. ``"numpy"``
        for the vectorized string kernel); ``None`` keeps each query
        type's default engine.

    Picklability of the query is checked here, at submit time, so a
    closure that cannot cross a process boundary fails with a clear
    message instead of a mid-pool crash.
    """

    def __init__(
        self,
        query,
        jobs: int | None = None,
        transport: str | None = None,
        engine: str | None = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else jobs
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.transport = default_transport() if transport is None else (
            "shared_memory" if transport == "shm" else transport
        )
        if self.transport not in _TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; expected one of "
                f"{_TRANSPORTS}"
            )
        self.engine = engine
        self._spec = _prepare_spec(query, engine)
        self._pool = None
        self._shm = None
        self._closed = False
        if self.jobs > 1:
            try:
                self._payload = pickle.dumps(self._spec)
            except Exception as exc:
                raise TypeError(
                    f"jobs={self.jobs} requires a picklable query/selection "
                    f"function, but pickling {query!r} failed: {exc}. "
                    "Use a module-level function or a query automaton, or "
                    "run with jobs=1."
                ) from exc

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down and release the shared segment (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None

    def _worker_initargs(self) -> tuple:
        """Build the (mode, *args) tuple for the pool initializer.

        Shared-memory transport fills one segment here, in the parent,
        once: with the dense exported program of a string query when the
        numpy kernel can freeze it, otherwise with the pickled spec.  The
        pickle transport — the differential oracle — ships bytes through
        the initializer arguments as before.
        """
        sink = obs.SINK
        if self.transport == "pickle":
            sink.incr("parallel.transport_pickle")
            return ("spec", self._payload)
        from multiprocessing import shared_memory

        kind, payload, engine = self._spec
        program = None
        mode = "program"
        if kind == "query" and engine == "numpy":
            from .npkernel import export_program

            program = export_program(payload)
            if program is None:
                from .nptrees import export_tree_program

                program = export_tree_program(payload)
                mode = "tree_program"
        sink.incr("parallel.transport_shm")
        if program is not None:
            header, body = program
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(body))
            )
            self._shm.buf[: len(body)] = body
            sink.incr("parallel.shm_programs")
            sink.gauge_max("parallel.shm_bytes", len(body))
            return (mode, header, self._shm.name, len(body))
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(self._payload))
        )
        self._shm.buf[: len(self._payload)] = self._payload
        sink.gauge_max("parallel.shm_bytes", len(self._payload))
        return ("spec_shm", self._shm.name, len(self._payload))

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            if multiprocessing.current_process().daemon:
                raise RuntimeError(
                    "ParallelExecutor cannot spawn a pool from inside a "
                    "worker process. If this surfaced while importing your "
                    "script, guard its entry point with "
                    "if __name__ == '__main__':"
                )
            _check_spawn_main()
            context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(
                processes=self.jobs,
                initializer=_initialize_worker,
                initargs=self._worker_initargs(),
            )
            # Workers that die during bootstrap (unguarded __main__,
            # initializer failure) are respawned forever by Pool; a
            # bounded ping turns that hang into a diagnosable error.
            try:
                self._pool.apply_async(_worker_ping).get(_SPAWN_PING_TIMEOUT)
            except multiprocessing.TimeoutError:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
                raise RuntimeError(
                    f"worker pool failed to initialize within "
                    f"{_SPAWN_PING_TIMEOUT:.0f}s — workers are dying during "
                    "bootstrap. Most likely your script's entry point is "
                    "not guarded with if __name__ == '__main__': (required "
                    "by the spawn start method), or the worker cannot "
                    "import the query's module. Run with jobs=1 to stay "
                    "in-process."
                ) from None
        return self._pool

    # -- mapping ---------------------------------------------------------

    def map(self, items: Iterable) -> list:
        """Evaluate every item; results in submission order.

        ``items`` may be any iterable — a streaming corpus is consumed
        one chunk at a time with at most ``2 * jobs`` chunks in flight,
        so arbitrarily large corpora never materialize in the parent.
        """
        if self.jobs == 1:
            return self._map_serial(items)
        return self._map_parallel(items)

    def _map_serial(self, items: Iterable) -> list:
        """The pool-free path: same engines ``batch_evaluate`` uses."""
        call = _resolve_call(self._spec)
        return [call(item) for item in items]

    def _map_parallel(self, items: Iterable) -> list:
        pool = self._ensure_pool()
        target = chunk_cost_target(
            items if isinstance(items, Sequence) else None, self.jobs
        )
        chunks = enumerate(iter_chunks(items, target))
        window = max(2, self.jobs * _INFLIGHT_PER_WORKER)

        pending: dict[int, object] = {}
        records: dict[int, dict] = {}
        failure: dict | None = None
        exhausted = False
        next_to_merge = 0
        merge_wait_ns = 0
        worker_items: dict[int, int] = {}
        worker_cost: dict[int, int] = {}
        worker_init: dict[int, int] = {}
        chunk_count = 0
        item_count = 0

        def submit_more() -> None:
            nonlocal exhausted
            while not exhausted and failure is None and len(pending) < window:
                try:
                    ordinal, chunk = next(chunks)
                except StopIteration:
                    exhausted = True
                    return
                pending[ordinal] = pool.apply_async(_run_chunk, (
                    (ordinal,) + chunk,
                ))

        submit_more()
        while pending:
            waited = time.perf_counter_ns()
            record = pending.pop(next_to_merge).get()
            merge_wait_ns += time.perf_counter_ns() - waited
            records[record["ordinal"]] = record
            chunk_count += 1
            item_count += record["items"]
            worker = record["worker"]
            worker_items[worker] = worker_items.get(worker, 0) + record["items"]
            worker_cost[worker] = worker_cost.get(worker, 0) + record["cost"]
            worker_init[worker] = record.get("init_ns", 0)
            if record["error"] is not None and (
                failure is None or record["error"]["index"] < failure["index"]
            ):
                failure = dict(record["error"], worker=worker,
                               counters=record["stats"]["counters"])
            next_to_merge += 1
            submit_more()

        sink = obs.SINK
        if sink.enabled and chunk_count:
            for ordinal in sorted(records):
                self._merge_stats(sink, records[ordinal]["stats"])
            sink.incr("parallel.chunks", chunk_count)
            sink.incr("parallel.items", item_count)
            sink.incr("parallel.workers", len(worker_items))
            sink.incr("parallel.merge_wait_ns", merge_wait_ns)
            if worker_items:
                sink.gauge_max(
                    "parallel.worker_items_max", max(worker_items.values())
                )
                sink.gauge_max(
                    "parallel.worker_cost_max", max(worker_cost.values())
                )
                sink.gauge_max(
                    "parallel.worker_init_ns", max(worker_init.values())
                )

        if failure is not None:
            raise ShardError(
                failure["index"],
                failure["kind"],
                failure["detail"],
                worker=failure["worker"],
                counters=failure["counters"],
                exc_counters=failure["exc_counters"],
                budget=failure["budget"],
                worker_traceback=failure["traceback"],
            )

        results: list = []
        for ordinal in sorted(records):
            results.extend(records[ordinal]["results"])
        return results

    @staticmethod
    def _merge_stats(sink: obs.StatsSink, snapshot: dict) -> None:
        """Fold one worker snapshot into the installed sink.

        Uses only the :class:`~repro.obs.StatsSink` protocol (counters
        summed, gauges maxed, samples concatenated), so any sink works —
        the semantics match :meth:`repro.obs.Stats.merge`.
        """
        for name, amount in snapshot.get("counters", {}).items():
            sink.incr(name, amount)
        for name, value in snapshot.get("gauges", {}).items():
            sink.gauge_max(name, value)
        for name, values in snapshot.get("samples", {}).items():
            for value in values:
                sink.observe(name, value)


def parallel_map(
    query,
    items: Iterable,
    jobs: int | None = None,
    transport: str | None = None,
    engine: str | None = None,
) -> list:
    """One-shot :class:`ParallelExecutor` convenience.

    Spawns a pool, maps, and tears the pool down.  For repeated corpora
    against the same query, keep a :class:`ParallelExecutor` instead —
    its workers' warmed engines survive across ``map`` calls.
    """
    with ParallelExecutor(
        query, jobs=jobs, transport=transport, engine=engine
    ) as executor:
        return executor.map(items)
