"""Parallel sharded query execution across worker processes.

Query automata are embarrassingly parallel across documents: the
behavior-function machinery (Theorem 3.9, Theorem 5.17) is per-tree, so
a corpus can be sharded across ``multiprocessing`` workers with no
coordination beyond result collection.  :class:`ParallelExecutor` does
exactly that:

* the compiled query ships **once per worker** via the pool initializer,
  which warms the worker-local engine registries of
  :mod:`repro.perf.registry` — every chunk the worker later receives
  reuses the same behavior tables and subtree-type caches;
* inputs are chunked adaptively by estimated node count
  (:mod:`repro.perf.shard`), submitted with a bounded in-flight window
  (streaming corpora are never fully materialized), and merged back
  **in submission order** regardless of completion order — ``jobs=N``
  output is byte-identical to ``jobs=1``;
* each worker evaluates its chunk under a recording
  :class:`repro.obs.Stats` and ships the snapshot home; the parent
  merges every snapshot into the installed sink (counters summed,
  high-water gauges maxed, spans concatenated) plus the executor's own
  counters — ``parallel.chunks``, ``parallel.workers``,
  ``parallel.items``, ``parallel.merge_wait_ns`` — and per-worker
  high-water gauges ``parallel.worker_items_max`` /
  ``parallel.worker_cost_max``;
* a failure inside a worker surfaces as a structured
  :class:`~repro.perf.shard.ShardError` carrying the failing input's
  submission index and the worker's counter snapshot (including the
  counters attached to a ``BudgetExceededError``), never as a bare
  pickled traceback;
* ``jobs=1`` bypasses the pool entirely — same call path as
  :func:`repro.perf.batch.batch_evaluate`, zero process overhead.

The executor is spawn-safe (it always uses the ``spawn`` start method,
so it behaves identically on Linux, macOS, and Windows) and reusable:
keep one per (query, jobs) pair and ``map`` as many corpora through it
as you like; the pool and the workers' warmed engines persist across
calls.  Use it as a context manager, or call :func:`parallel_map` for
one-shot convenience.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from collections.abc import Iterable, Sequence

from .. import obs
from .shard import ShardError, chunk_cost_target, iter_chunks

#: Chunks allowed in flight per worker; bounds parent-side memory when
#: streaming a corpus through the pool.
_INFLIGHT_PER_WORKER = 2

#: Seconds to wait for the post-spawn worker ping before declaring the
#: pool broken (workers that die during bootstrap are respawned forever
#: by ``multiprocessing.Pool``, so without this cap a broken pool hangs).
_SPAWN_PING_TIMEOUT = float(os.environ.get("REPRO_PARALLEL_SPAWN_TIMEOUT", "120"))


def default_jobs() -> int:
    """The default worker count: ``os.cpu_count()`` (at least 1)."""
    return os.cpu_count() or 1


def _check_spawn_main() -> None:
    """Refuse to spawn when ``__main__`` cannot be re-imported.

    The ``spawn`` start method re-runs the parent's ``__main__`` in every
    worker.  A parent fed through stdin (``python < script.py``, a shell
    heredoc) has ``__file__ == "<stdin>"`` — workers would die on import
    and the pool would respawn them forever, hanging ``map`` with an
    endless traceback stream.  Fail fast with the fix instead.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return  # python -m …: workers re-import by module name
    main_file = getattr(main, "__file__", None)
    if main_file is None:
        return  # interactive interpreter: nothing is re-run
    if not os.path.exists(main_file):
        raise RuntimeError(
            f"cannot spawn workers: the __main__ module ({main_file!r}) is "
            "not importable from a worker process. Run your script from a "
            "real file (python script.py), use python -m, or use jobs=1."
        )


def _resolve_call(spec):
    """The per-input evaluation callable for a shipped (kind, payload) spec."""
    kind, payload = spec
    if kind == "call":
        return payload
    from .batch import _engine_call

    return _engine_call(payload)


def _prepare_spec(query) -> tuple:
    """Classify ``query`` into a shippable (kind, payload) spec.

    Known query-automaton types go through the engine dispatch of
    :mod:`repro.perf.batch` (``MSOQuery`` is compiled *now*, so workers
    receive the finished automaton rather than recompiling the formula);
    any other callable is treated as a custom selection function.
    """
    from ..core.query import MSOQuery

    if isinstance(query, MSOQuery):
        query.compiled()
        return ("query", query)
    try:
        from .batch import _engine_call

        _engine_call(query)
        return ("query", query)
    except TypeError:
        if callable(query):
            return ("call", query)
        raise TypeError(
            f"cannot evaluate {type(query).__name__} objects in parallel: "
            "expected a query automaton, a core Query, or a callable"
        ) from None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Worker-local evaluation callable, set once by the pool initializer.
_WORKER_CALL = None


def _initialize_worker(spec_bytes: bytes) -> None:
    """Pool initializer: unpickle the query and warm the local engines.

    Runs once per worker process.  Resolving the evaluation callable
    builds the engine through the worker-local
    :class:`~repro.perf.registry.EngineRegistry`, so the behavior tables
    and subtree-type caches exist before the first chunk arrives and are
    shared by every chunk this worker ever processes.
    """
    global _WORKER_CALL
    _WORKER_CALL = _resolve_call(pickle.loads(spec_bytes))


def _worker_ping() -> int:
    """Round-trip probe proving a worker finished bootstrap + initializer."""
    return os.getpid()


def _run_chunk(task: tuple) -> dict:
    """Evaluate one chunk in a worker; never raises.

    Returns a plain, picklable record: the chunk ordinal, the worker's
    pid, the results (or ``None`` on failure), the worker's ``obs``
    snapshot for the chunk, and — on failure — a structured error entry
    naming the failing input's submission index.
    """
    ordinal, start, items, cost = task
    stats = obs.Stats()
    results: list | None = []
    error: dict | None = None
    with obs.collecting(stats):
        for offset, item in enumerate(items):
            try:
                results.append(_WORKER_CALL(item))
            except Exception as exc:  # noqa: BLE001 - shipped, not swallowed
                error = {
                    "index": start + offset,
                    "kind": type(exc).__name__,
                    "detail": str(exc),
                    "exc_counters": dict(getattr(exc, "counters", None) or {}),
                    "budget": getattr(exc, "budget", None),
                    "traceback": traceback.format_exc(),
                }
                results = None
                break
    return {
        "ordinal": ordinal,
        "worker": os.getpid(),
        "items": len(items),
        "cost": cost,
        "results": results,
        "stats": stats.snapshot(),
        "error": error,
    }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ParallelExecutor:
    """Shard corpora across worker processes for one query.

    Parameters
    ----------
    query:
        A query automaton / core ``Query`` (evaluated through the cached
        engines) or any picklable callable ``item -> result``.
    jobs:
        Worker count; defaults to ``os.cpu_count()``.  ``jobs=1`` is the
        serial fast path: no pool, no pickling, identical results.

    Picklability of the query is checked here, at submit time, so a
    closure that cannot cross a process boundary fails with a clear
    message instead of a mid-pool crash.
    """

    def __init__(self, query, jobs: int | None = None) -> None:
        self.jobs = default_jobs() if jobs is None else jobs
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self._spec = _prepare_spec(query)
        self._pool = None
        self._closed = False
        if self.jobs > 1:
            try:
                self._payload = pickle.dumps(self._spec)
            except Exception as exc:
                raise TypeError(
                    f"jobs={self.jobs} requires a picklable query/selection "
                    f"function, but pickling {query!r} failed: {exc}. "
                    "Use a module-level function or a query automaton, or "
                    "run with jobs=1."
                ) from exc

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            if multiprocessing.current_process().daemon:
                raise RuntimeError(
                    "ParallelExecutor cannot spawn a pool from inside a "
                    "worker process. If this surfaced while importing your "
                    "script, guard its entry point with "
                    "if __name__ == '__main__':"
                )
            _check_spawn_main()
            context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(
                processes=self.jobs,
                initializer=_initialize_worker,
                initargs=(self._payload,),
            )
            # Workers that die during bootstrap (unguarded __main__,
            # initializer failure) are respawned forever by Pool; a
            # bounded ping turns that hang into a diagnosable error.
            try:
                self._pool.apply_async(_worker_ping).get(_SPAWN_PING_TIMEOUT)
            except multiprocessing.TimeoutError:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
                raise RuntimeError(
                    f"worker pool failed to initialize within "
                    f"{_SPAWN_PING_TIMEOUT:.0f}s — workers are dying during "
                    "bootstrap. Most likely your script's entry point is "
                    "not guarded with if __name__ == '__main__': (required "
                    "by the spawn start method), or the worker cannot "
                    "import the query's module. Run with jobs=1 to stay "
                    "in-process."
                ) from None
        return self._pool

    # -- mapping ---------------------------------------------------------

    def map(self, items: Iterable) -> list:
        """Evaluate every item; results in submission order.

        ``items`` may be any iterable — a streaming corpus is consumed
        one chunk at a time with at most ``2 * jobs`` chunks in flight,
        so arbitrarily large corpora never materialize in the parent.
        """
        if self.jobs == 1:
            return self._map_serial(items)
        return self._map_parallel(items)

    def _map_serial(self, items: Iterable) -> list:
        """The pool-free path: same engines ``batch_evaluate`` uses."""
        call = _resolve_call(self._spec)
        return [call(item) for item in items]

    def _map_parallel(self, items: Iterable) -> list:
        pool = self._ensure_pool()
        target = chunk_cost_target(
            items if isinstance(items, Sequence) else None, self.jobs
        )
        chunks = enumerate(iter_chunks(items, target))
        window = max(2, self.jobs * _INFLIGHT_PER_WORKER)

        pending: dict[int, object] = {}
        records: dict[int, dict] = {}
        failure: dict | None = None
        exhausted = False
        next_to_merge = 0
        merge_wait_ns = 0
        worker_items: dict[int, int] = {}
        worker_cost: dict[int, int] = {}
        chunk_count = 0
        item_count = 0

        def submit_more() -> None:
            nonlocal exhausted
            while not exhausted and failure is None and len(pending) < window:
                try:
                    ordinal, chunk = next(chunks)
                except StopIteration:
                    exhausted = True
                    return
                pending[ordinal] = pool.apply_async(_run_chunk, (
                    (ordinal,) + chunk,
                ))

        submit_more()
        while pending:
            waited = time.perf_counter_ns()
            record = pending.pop(next_to_merge).get()
            merge_wait_ns += time.perf_counter_ns() - waited
            records[record["ordinal"]] = record
            chunk_count += 1
            item_count += record["items"]
            worker = record["worker"]
            worker_items[worker] = worker_items.get(worker, 0) + record["items"]
            worker_cost[worker] = worker_cost.get(worker, 0) + record["cost"]
            if record["error"] is not None and (
                failure is None or record["error"]["index"] < failure["index"]
            ):
                failure = dict(record["error"], worker=worker,
                               counters=record["stats"]["counters"])
            next_to_merge += 1
            submit_more()

        sink = obs.SINK
        if sink.enabled and chunk_count:
            for ordinal in sorted(records):
                self._merge_stats(sink, records[ordinal]["stats"])
            sink.incr("parallel.chunks", chunk_count)
            sink.incr("parallel.items", item_count)
            sink.incr("parallel.workers", len(worker_items))
            sink.incr("parallel.merge_wait_ns", merge_wait_ns)
            if worker_items:
                sink.gauge_max(
                    "parallel.worker_items_max", max(worker_items.values())
                )
                sink.gauge_max(
                    "parallel.worker_cost_max", max(worker_cost.values())
                )

        if failure is not None:
            raise ShardError(
                failure["index"],
                failure["kind"],
                failure["detail"],
                worker=failure["worker"],
                counters=failure["counters"],
                exc_counters=failure["exc_counters"],
                budget=failure["budget"],
                worker_traceback=failure["traceback"],
            )

        results: list = []
        for ordinal in sorted(records):
            results.extend(records[ordinal]["results"])
        return results

    @staticmethod
    def _merge_stats(sink: obs.StatsSink, snapshot: dict) -> None:
        """Fold one worker snapshot into the installed sink.

        Uses only the :class:`~repro.obs.StatsSink` protocol (counters
        summed, gauges maxed, samples concatenated), so any sink works —
        the semantics match :meth:`repro.obs.Stats.merge`.
        """
        for name, amount in snapshot.get("counters", {}).items():
            sink.incr(name, amount)
        for name, value in snapshot.get("gauges", {}).items():
            sink.gauge_max(name, value)
        for name, values in snapshot.get("samples", {}).items():
            for value in values:
                sink.observe(name, value)


def parallel_map(query, items: Iterable, jobs: int | None = None) -> list:
    """One-shot :class:`ParallelExecutor` convenience.

    Spawns a pool, maps, and tears the pool down.  For repeated corpora
    against the same query, keep a :class:`ParallelExecutor` instead —
    its workers' warmed engines survive across ``map`` calls.
    """
    with ParallelExecutor(query, jobs=jobs) as executor:
        return executor.map(items)
