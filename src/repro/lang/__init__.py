"""Query-string frontend: XPath and MSO surface syntaxes.

This package turns strings into the compiled unary MSO queries the rest
of the library evaluates, in four stages shared by both syntaxes::

    tokenize ─→ parse ─→ lower ─→ compile
    (tokens)   (xpath/mso)  (logic.syntax)  (compile_trees / mso_to_sqa)

Three surface syntaxes are dispatched by prefix in
:func:`compile_query_string` (which backs the string overloads of
``Document.select`` / ``Corpus.select``):

* ``"xpath:..."`` — the XPath fragment of :mod:`repro.lang.xpath`
  (axes, ``//``, predicates with ``and``/``or``/``not()``).
* ``"mso:..."`` — the MSO formula syntax of :mod:`repro.lang.mso`
  (quantifiers, set variables, ``lab_a(x)``, ``child``/``desc``).
* anything else — the legacy path-pattern language of
  :mod:`repro.core.patterns`, unchanged.

All three meet at the same :class:`~repro.core.query.MSOQuery`, so the
compile cache, minimization, and every evaluation engine apply
identically.  Errors anywhere in the frontend raise
:class:`QuerySyntaxError` with the character offset of the problem
(relative to the query body, after any ``xpath:`` / ``mso:`` prefix).

The grammar reference is ``docs/QUERY_LANGUAGE.md``; the ``lang.*``
observability counters are listed in ``DESIGN.md``.
"""

from __future__ import annotations

from collections.abc import Sequence

from .errors import QuerySyntaxError
from .mso import mso_query, parse_mso, parse_mso_query
from .xpath import lower_xpath, parse_xpath, xpath_query

__all__ = [
    "QuerySyntaxError",
    "compile_query_sqa",
    "compile_query_string",
    "lower_xpath",
    "mso_query",
    "parse_mso",
    "parse_mso_query",
    "parse_xpath",
    "xpath_query",
]

#: Prefixes routing a query string to the new frontend.
PREFIXES = ("xpath:", "mso:")


def split_prefix(pattern: str) -> tuple[str | None, str]:
    """``("xpath"|"mso"|None, body)`` — which frontend a string targets."""
    for prefix in PREFIXES:
        if pattern.startswith(prefix):
            return prefix[:-1], pattern[len(prefix) :]
    return None, pattern


def compile_query_string(pattern: str, alphabet: Sequence[str], engine: str = "automaton"):
    """Compile any supported query string into an :class:`~repro.core.query.MSOQuery`.

    Dispatches on prefix: ``"xpath:"`` → :func:`xpath_query`, ``"mso:"``
    → :func:`mso_query`, no prefix → the legacy
    :func:`repro.core.patterns.compile_pattern` language.  ``engine``
    selects the query representation exactly as for
    ``compile_pattern`` (``"automaton"`` or ``"sqa"``).
    """
    kind, body = split_prefix(pattern)
    if kind == "xpath":
        return xpath_query(body, alphabet, engine=engine)
    if kind == "mso":
        return mso_query(body, alphabet, engine=engine)
    from ..core.patterns import compile_pattern

    return compile_pattern(pattern, alphabet, engine=engine)


def compile_query_sqa(pattern: str, alphabet: Sequence[str], engine: str = "optimized"):
    """Compile a query string straight to a strong query automaton (§5).

    The same prefix dispatch as :func:`compile_query_string`, but routed
    through :func:`repro.unranked.mso_to_sqa.build_query_sqa` (Theorem
    5.17) instead of the marked-alphabet evaluator, returning the SQA^u.
    """
    from ..unranked.mso_to_sqa import build_query_sqa

    kind, body = split_prefix(pattern)
    if kind == "xpath":
        formula, var = lower_xpath(parse_xpath(body), alphabet)
    elif kind == "mso":
        formula, var = parse_mso_query(body)
    else:
        from ..core.patterns import compile_pattern

        query = compile_pattern(pattern, alphabet)
        formula, var = query.formula, query.var
    return build_query_sqa(formula, var, tuple(alphabet), engine=engine)
